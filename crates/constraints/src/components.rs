//! Connected components of the candidate conflict graph.
//!
//! Two candidates are *coupled* when they appear in a common potential
//! violation — a one-to-one pair conflict or a cycle triple. The integrity
//! constraints of the paper (§II-B) never couple candidates across
//! components, so the set of matching instances factorizes exactly: `I` is
//! a matching instance of the network iff its restriction to every
//! component is a matching instance of that component. [`Components`]
//! extracts this partition once per network (union-find over the dense
//! pair-conflict masks plus the triple table) and provides the
//! global ↔ shard-local candidate remapping the sharded probabilistic
//! model in `smn-core` is built on.

use crate::bitset::BitSet;
use crate::index::ConflictIndex;
use smn_schema::CandidateId;

/// The partition of a candidate set into conflict-connected components,
/// with per-component (shard-local) candidate renumbering.
///
/// Components are numbered by their smallest member id, and the members of
/// each component are listed in ascending global id order — so the
/// partition, the shard order and the local ids are all deterministic
/// functions of the [`ConflictIndex`]. The partition can be maintained
/// online — [`add_candidate`](Components::add_candidate) merges the
/// components a new arrival couples, and
/// [`retire_candidate`](Components::retire_candidate) splits the one a
/// departure may disconnect — and the maintained state is always `==` to a
/// fresh [`of_index`](Components::of_index) over the patched index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component_of[c]` = component id of candidate `c`.
    component_of: Vec<u32>,
    /// `local_of[c]` = index of `c` inside `members[component_of[c]]`.
    local_of: Vec<u32>,
    /// Per-component member lists, ascending global ids.
    members: Vec<Vec<CandidateId>>,
}

impl Components {
    /// Extracts the conflict components of `index`: union-find over every
    /// pair-conflict mask and every cycle triple (both members of a
    /// violation always land in one component).
    pub fn of_index(index: &ConflictIndex) -> Self {
        let n = index.candidate_count();
        let mut uf = UnionFind::new(n);
        for i in 0..n {
            let c = CandidateId::from_index(i);
            for other in index.pair_mask(c).iter() {
                uf.union(i, other.index());
            }
            for &[a, b] in index.other_pairs(c) {
                uf.union(i, a.index());
                uf.union(i, b.index());
            }
        }
        // number components by smallest member (= first occurrence in
        // ascending id order) and assign local ids in the same order
        let mut component_of = vec![u32::MAX; n];
        let mut local_of = vec![0u32; n];
        let mut members: Vec<Vec<CandidateId>> = Vec::new();
        let mut id_of_root: Vec<u32> = vec![u32::MAX; n];
        for i in 0..n {
            let root = uf.find(i);
            if id_of_root[root] == u32::MAX {
                id_of_root[root] = u32::try_from(members.len()).expect("component id fits u32");
                members.push(Vec::new());
            }
            let k = id_of_root[root];
            component_of[i] = k;
            let list = &mut members[k as usize];
            local_of[i] = u32::try_from(list.len()).expect("local id fits u32");
            list.push(CandidateId::from_index(i));
        }
        Self { component_of, local_of, members }
    }

    /// Reassembles a partition from its canonical member lists (ascending
    /// global ids within each component, components ordered by smallest
    /// member) — the form a snapshot serializes. The inverse maps
    /// (`component_of`, `local_of`) are re-derived, so the round trip
    /// through [`members`](Self::members) is lossless.
    ///
    /// # Panics
    /// Panics if the lists are not a partition of `0..candidate_count` —
    /// callers deserializing untrusted bytes must validate coverage first
    /// (the storage crate does).
    pub fn from_members(candidate_count: usize, members: Vec<Vec<CandidateId>>) -> Self {
        let mut component_of = vec![u32::MAX; candidate_count];
        let mut local_of = vec![0u32; candidate_count];
        for (k, list) in members.iter().enumerate() {
            let k32 = u32::try_from(k).expect("component id fits u32");
            for (j, &c) in list.iter().enumerate() {
                assert!(c.index() < candidate_count, "member id out of range");
                assert_eq!(component_of[c.index()], u32::MAX, "candidate in two components");
                component_of[c.index()] = k32;
                local_of[c.index()] = u32::try_from(j).expect("local id fits u32");
            }
        }
        assert!(component_of.iter().all(|&k| k != u32::MAX), "partition must cover all candidates");
        Self { component_of, local_of, members }
    }

    /// Number of components (shards).
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Number of candidates across all components.
    pub fn candidate_count(&self) -> usize {
        self.component_of.len()
    }

    /// Component id of a candidate.
    #[inline]
    pub fn component_of(&self, c: CandidateId) -> usize {
        self.component_of[c.index()] as usize
    }

    /// Shard-local index of a candidate within its component.
    #[inline]
    pub fn local_index(&self, c: CandidateId) -> usize {
        self.local_of[c.index()] as usize
    }

    /// Members of component `k`, ascending global ids (the local→global
    /// map: local id `j` is `members(k)[j]`).
    #[inline]
    pub fn members(&self, k: usize) -> &[CandidateId] {
        &self.members[k]
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Restricts a global candidate set to component `k`, remapped to
    /// local ids.
    pub fn localize(&self, k: usize, global: &BitSet) -> BitSet {
        BitSet::from_ids(
            self.members[k].len(),
            self.members[k]
                .iter()
                .enumerate()
                .filter(|&(_, &c)| global.contains(c))
                .map(|(j, _)| CandidateId::from_index(j)),
        )
    }

    /// Rebuilds the flattened arrays from a list of `(old component index,
    /// member list)` entries — `None` marks a component with no surviving
    /// old counterpart (the merged component of an arrival, the split
    /// parts of a retirement). Entries are renumbered by smallest member;
    /// the returned [`ComponentEvolution`] records the old → new index
    /// remap and which new indices were freshly formed.
    fn rebuild(
        &mut self,
        mut entries: Vec<(Option<usize>, Vec<CandidateId>)>,
        old_count: usize,
        candidate_count: usize,
    ) -> ComponentEvolution {
        entries.sort_by_key(|(_, members)| members[0]);
        let mut remap = vec![None; old_count];
        let mut rebuilt = Vec::new();
        self.component_of = vec![u32::MAX; candidate_count];
        self.local_of = vec![0; candidate_count];
        self.members = Vec::with_capacity(entries.len());
        for (new_k, (old_k, members)) in entries.into_iter().enumerate() {
            match old_k {
                Some(old) => remap[old] = Some(new_k),
                None => rebuilt.push(new_k),
            }
            let k32 = u32::try_from(new_k).expect("component id fits u32");
            for (j, &c) in members.iter().enumerate() {
                self.component_of[c.index()] = k32;
                self.local_of[c.index()] = u32::try_from(j).expect("local id fits u32");
            }
            self.members.push(members);
        }
        debug_assert!(self.component_of.iter().all(|&k| k != u32::MAX));
        ComponentEvolution { remap, rebuilt, dissolved: Vec::new() }
    }

    /// Maintains the partition for the candidate just appended to `index`
    /// (`index.candidate_count()` must be exactly one more than this
    /// partition covers): the components of the arrival's conflict
    /// partners merge — a union-find merge along the new conflict edges —
    /// and everything untouched keeps its member list. An arrival without
    /// conflicts forms a fresh singleton component.
    pub fn add_candidate(&mut self, index: &ConflictIndex) -> ComponentEvolution {
        let n = index.candidate_count();
        assert_eq!(n, self.component_of.len() + 1, "index must hold exactly one new candidate");
        let c = CandidateId::from_index(n - 1);
        // the components the arrival couples (sorted, deduplicated)
        let mut coupled: Vec<usize> = index
            .pair_mask(c)
            .iter()
            .map(|p| self.component_of(p))
            .chain(index.other_pairs(c).iter().flatten().map(|&p| self.component_of(p)))
            .collect();
        coupled.sort_unstable();
        coupled.dedup();
        let old_count = self.members.len();
        // move the member lists rather than cloning them: untouched
        // components keep theirs verbatim, merge sources hand theirs to
        // the caller via `dissolved` (the sharded stores remap their
        // feedback and samples through exactly those lists)
        let old_members = std::mem::take(&mut self.members);
        let mut entries: Vec<(Option<usize>, Vec<CandidateId>)> = Vec::with_capacity(old_count + 1);
        let mut merged: Vec<CandidateId> = Vec::new();
        let mut dissolved: Vec<(usize, Vec<CandidateId>)> = Vec::new();
        for (k, members) in old_members.into_iter().enumerate() {
            if coupled.binary_search(&k).is_ok() {
                merged.extend_from_slice(&members);
                dissolved.push((k, members));
            } else {
                entries.push((Some(k), members));
            }
        }
        // member lists of different components interleave by id, so the
        // concatenation must be re-sorted; `c` is the largest id
        merged.sort_unstable();
        merged.push(c);
        entries.push((None, merged));
        let mut evo = self.rebuild(entries, old_count, n);
        evo.dissolved = dissolved;
        evo
    }

    /// Maintains the partition after candidate `retired` was removed from
    /// `index` (already patched and id-compacted): only the retired
    /// candidate's component can disconnect, so its remaining members are
    /// re-grouped by a union-find over their surviving conflicts while
    /// every other component just renumbers. The split parts are reported
    /// as `rebuilt`; a retired singleton dissolves without parts.
    pub fn retire_candidate(
        &mut self,
        index: &ConflictIndex,
        retired: CandidateId,
    ) -> ComponentEvolution {
        let n = index.candidate_count();
        assert_eq!(n + 1, self.component_of.len(), "index must have dropped exactly one candidate");
        let k_old = self.component_of(retired);
        let shift = |x: CandidateId| if x > retired { CandidateId(x.0 - 1) } else { x };
        // regroup the retired component's remaining members (new ids) by
        // their surviving conflicts; everything stays inside the old
        // component because retirement only removes conflict edges
        let survivors: Vec<CandidateId> =
            self.members[k_old].iter().filter(|&&m| m != retired).map(|&m| shift(m)).collect();
        let mut uf = UnionFind::new(n);
        for &m in &survivors {
            for p in index.pair_mask(m).iter() {
                uf.union(m.index(), p.index());
            }
            for &[a, b] in index.other_pairs(m) {
                uf.union(m.index(), a.index());
                uf.union(m.index(), b.index());
            }
        }
        let mut parts: Vec<Vec<CandidateId>> = Vec::new();
        let mut part_of_root: Vec<usize> = vec![usize::MAX; n];
        for &m in &survivors {
            let root = uf.find(m.index());
            if part_of_root[root] == usize::MAX {
                part_of_root[root] = parts.len();
                parts.push(Vec::new());
            }
            parts[part_of_root[root]].push(m);
        }
        let old_count = self.members.len();
        // move the member lists: untouched components shift theirs in
        // place, the dissolving one hands its (pre-retirement, old-id)
        // list to the caller for feedback/sample remapping
        let old_members = std::mem::take(&mut self.members);
        let mut entries: Vec<(Option<usize>, Vec<CandidateId>)> = Vec::with_capacity(old_count);
        let mut dissolved: Vec<(usize, Vec<CandidateId>)> = Vec::new();
        for (k, mut members) in old_members.into_iter().enumerate() {
            if k == k_old {
                dissolved.push((k, members));
            } else {
                for m in members.iter_mut() {
                    *m = shift(*m);
                }
                entries.push((Some(k), members));
            }
        }
        entries.extend(parts.into_iter().map(|p| (None, p)));
        let mut evo = self.rebuild(entries, old_count, n);
        evo.dissolved = dissolved;
        evo
    }
}

/// How one evolution step reshaped the component partition — the
/// bookkeeping [`crate::ConflictIndex`]-sharded sample stores need to know
/// which shards survive verbatim and which must be re-extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentEvolution {
    /// `remap[old_k]` = index of old component `old_k` in the new
    /// partition; `None` when it was absorbed by a merge or dissolved by a
    /// split.
    pub remap: Vec<Option<usize>>,
    /// New component indices with no surviving old counterpart, ascending:
    /// the merged component of an arrival (exactly one), the split parts
    /// of a retirement (zero or more).
    pub rebuilt: Vec<usize>,
    /// The `remap == None` components, ascending by old index, *moved out*
    /// with their pre-event member lists (old global ids; a retirement's
    /// list still contains the retiree) — exactly what a per-component
    /// store needs to remap its local feedback and samples into the
    /// rebuilt components, without re-deriving or cloning the partition.
    pub dissolved: Vec<(usize, Vec<CandidateId>)>,
}

/// Path-halving union-find over candidate indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).map(|i| u32::try_from(i).expect("candidate id fits u32")).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // attach the larger root id under the smaller so component
            // representatives stay the smallest member
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = u32::try_from(lo).expect("candidate id fits u32");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ConstraintConfig;
    use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};

    /// Two disjoint Fig.-1-style conflict clusters plus one isolated
    /// candidate.
    fn disjoint_network() -> (ConflictIndex, usize) {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a0", "a1"]).unwrap();
        b.add_schema_with_attributes("B", ["b0", "b1"]).unwrap();
        b.add_schema_with_attributes("C", ["c0"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(3);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        // chained cluster: c0 = a0–b0 and c1 = a0–b1 conflict on a0,
        // c1 and c2 = a1–b1 conflict on b1 → {c0, c1, c2} is one component
        cs.add(&cat, Some(&g), a(0), a(2), 0.9).unwrap(); // c0
        cs.add(&cat, Some(&g), a(0), a(3), 0.8).unwrap(); // c1
        cs.add(&cat, Some(&g), a(1), a(3), 0.8).unwrap(); // c2
                                                          // c3 = b0–c0 shares b0 with c0, but the other endpoints (a0 in A,
                                                          // c0 in C) sit in different schemas: no 1-1 conflict, and with no
                                                          // A–C candidate there is no cycle triple → c3 is a singleton
        cs.add(&cat, Some(&g), a(2), a(4), 0.7).unwrap(); // c3
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        (idx, cs.len())
    }

    #[test]
    fn partition_covers_all_candidates_exactly_once() {
        let (idx, n) = disjoint_network();
        let comps = Components::of_index(&idx);
        assert_eq!(comps.candidate_count(), n);
        let mut seen = vec![false; n];
        for k in 0..comps.count() {
            for (j, &c) in comps.members(k).iter().enumerate() {
                assert!(!seen[c.index()], "candidate in two components");
                seen[c.index()] = true;
                assert_eq!(comps.component_of(c), k);
                assert_eq!(comps.local_index(c), j);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn conflicting_candidates_share_a_component() {
        let (idx, n) = disjoint_network();
        let comps = Components::of_index(&idx);
        for i in 0..n {
            let c = CandidateId::from_index(i);
            for other in idx.pair_mask(c).iter() {
                assert_eq!(comps.component_of(c), comps.component_of(other));
            }
            for &[a, b] in idx.other_pairs(c) {
                assert_eq!(comps.component_of(c), comps.component_of(a));
                assert_eq!(comps.component_of(c), comps.component_of(b));
            }
        }
    }

    #[test]
    fn members_are_ascending_and_components_ordered_by_smallest() {
        let (idx, _) = disjoint_network();
        let comps = Components::of_index(&idx);
        let mut prev_smallest = None;
        for k in 0..comps.count() {
            let m = comps.members(k);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members not ascending");
            if let Some(p) = prev_smallest {
                assert!(m[0] > p, "components not ordered by smallest member");
            }
            prev_smallest = Some(m[0]);
        }
    }

    #[test]
    fn localize_remaps_global_sets() {
        let (idx, n) = disjoint_network();
        let comps = Components::of_index(&idx);
        let global = BitSet::full(n);
        for k in 0..comps.count() {
            let local = comps.localize(k, &global);
            assert_eq!(local.count(), comps.members(k).len());
        }
        let empty = BitSet::new(n);
        for k in 0..comps.count() {
            assert!(comps.localize(k, &empty).is_empty());
        }
    }

    #[test]
    fn conflict_free_network_is_all_singletons() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a0", "a1"]).unwrap();
        b.add_schema_with_attributes("B", ["b0", "b1"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(2);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(2), 0.9).unwrap();
        cs.add(&cat, Some(&g), a(1), a(3), 0.9).unwrap();
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let comps = Components::of_index(&idx);
        assert_eq!(comps.count(), 2);
        assert_eq!(comps.largest(), 1);
    }

    #[test]
    fn empty_index_has_no_components() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a0"]).unwrap();
        b.add_schema_with_attributes("B", ["b0"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(2);
        let cs = CandidateSet::new(&cat);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let comps = Components::of_index(&idx);
        assert_eq!(comps.count(), 0);
        assert_eq!(comps.largest(), 0);
    }
}
