//! The pre-computed conflict index.
//!
//! [`ConflictIndex::build`] enumerates, once per network, every *potential*
//! violation among the candidate set `C`:
//!
//! * pair conflicts (one-to-one): stored as adjacency lists, and
//! * triple conflicts (cycle, per interaction-graph triangle): stored as a
//!   flat table of `[CandidateId; 3]` with a per-candidate posting list.
//!
//! Whether an actual violation exists in a concrete instance `I ⊆ C` is then
//! a matter of checking which pre-computed conflicts are fully contained in
//! `I`. All hot queries of the sampler (`can_add`), the repair routine
//! (`conflicts_of_in`) and the instantiation search run in time proportional
//! to the local conflict degree of the touched candidate rather than `|C|`.

use crate::bitset::BitSet;
use crate::violation::{Violation, ViolationCounts, ViolationKind};
use serde::{Deserialize, Serialize};
use smn_schema::{CandidateId, CandidateSet, Catalog, InteractionGraph};
use std::sync::Arc;

/// Which constraints the index enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintConfig {
    /// Enforce the one-to-one constraint.
    pub one_to_one: bool,
    /// Enforce the cycle constraint along interaction-graph triangles.
    pub cycle: bool,
}

impl Default for ConstraintConfig {
    /// Both constraints on — the configuration used throughout the paper's
    /// evaluation (§VI-A "we consider two well-known constraints").
    fn default() -> Self {
        Self { one_to_one: true, cycle: true }
    }
}

impl ConstraintConfig {
    /// Only the one-to-one constraint (the setting of Theorem 1).
    pub fn one_to_one_only() -> Self {
        Self { one_to_one: true, cycle: false }
    }
}

/// Pre-computed conflict structure of one candidate set.
///
/// Conflicts are stored twice: as sparse posting lists (the enumeration
/// form) and as dense per-candidate [`BitSet`] masks plus a flattened
/// other-two table (the query form). The masks turn `can_add`,
/// `violations_introduced` and `conflicts_of_in` into a handful of
/// AND+popcount word operations instead of per-element `contains` probes —
/// the difference that keeps Algorithm 3's walk interactive at `|C|` in
/// the thousands.
///
/// The index is *canonical*: posting lists ascend, and the triple table is
/// kept in lexicographic order regardless of how the triples were
/// discovered. Two indices over the same candidate set therefore compare
/// equal with `==` whether they were
/// built in one shot ([`build`](Self::build)) or grown online
/// ([`add_candidate`](Self::add_candidate) /
/// [`retire_candidate`](Self::retire_candidate)) — the structural half of
/// the evolving-network differential harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictIndex {
    config: ConstraintConfig,
    candidate_count: usize,
    /// `pair_conflicts[c]` = candidates forming a one-to-one violation with `c`.
    pair_conflicts: Vec<Vec<CandidateId>>,
    /// All potential cycle violations, each a sorted triple.
    triples: Vec<[CandidateId; 3]>,
    /// `triples_of[c]` = indices into `triples` that involve `c`.
    triples_of: Vec<Vec<u32>>,
    /// `pair_masks[c]` = `pair_conflicts[c]` as a dense bitset.
    pair_masks: Vec<BitSet>,
    /// Flattened other-two table: for the `i`-th triple posting of `c`
    /// (aligned with `triples_of[c]`), the two members besides `c`.
    triple_other: Vec<[CandidateId; 2]>,
    /// `triple_other[triple_other_start[c] .. triple_other_start[c + 1]]`
    /// are the other-two pairs of candidate `c`.
    triple_other_start: Vec<u32>,
}

impl ConflictIndex {
    /// Builds the index for `candidates` over `catalog` and `graph`.
    pub fn build(
        catalog: &Catalog,
        graph: &InteractionGraph,
        candidates: &CandidateSet,
        config: ConstraintConfig,
    ) -> Self {
        let n = candidates.len();
        let mut index = Self {
            config,
            candidate_count: n,
            pair_conflicts: vec![Vec::new(); n],
            triples: Vec::new(),
            triples_of: vec![Vec::new(); n],
            pair_masks: Vec::new(),
            triple_other: Vec::new(),
            triple_other_start: Vec::new(),
        };
        if config.one_to_one {
            index.build_pairs(catalog, candidates);
        }
        if config.cycle {
            index.build_triples(catalog, graph, candidates);
        }
        index.build_dense();
        index
    }

    /// Derives the dense query structures (conflict masks, per-candidate
    /// triple postings, flattened other-two table) from the primary data:
    /// the pair posting lists and the triple table.
    ///
    /// The triple table is canonicalized (sorted lexicographically) first,
    /// so the derived structures — and the index as a whole — are a pure
    /// function of the conflict *sets*, independent of discovery order.
    /// This is what lets the incremental `add_candidate`/`retire_candidate`
    /// patches compare `==` against a from-scratch [`build`](Self::build).
    fn build_dense(&mut self) {
        let n = self.candidate_count;
        self.triples.sort_unstable();
        self.triples_of = vec![Vec::new(); n];
        for (i, t) in self.triples.iter().enumerate() {
            let idx = u32::try_from(i).expect("triple index overflow");
            for &m in t {
                self.triples_of[m.index()].push(idx);
            }
        }
        self.pair_masks =
            self.pair_conflicts.iter().map(|l| BitSet::from_ids(n, l.iter().copied())).collect();
        self.rebuild_other_table();
    }

    /// Re-derives the flattened other-two table from `triples` and
    /// `triples_of`, reusing the existing buffers — the only full pass the
    /// incremental patches keep (it is `O(n + T)` sequential writes with
    /// no per-candidate allocation).
    fn rebuild_other_table(&mut self) {
        let n = self.candidate_count;
        self.triple_other.clear();
        self.triple_other_start.clear();
        for c in 0..n {
            self.triple_other_start
                .push(u32::try_from(self.triple_other.len()).expect("table overflow"));
            for &t in &self.triples_of[c] {
                let [x, y, z] = self.triples[t as usize];
                self.triple_other.push(other_two(x, y, z, CandidateId::from_index(c)));
            }
        }
        self.triple_other_start
            .push(u32::try_from(self.triple_other.len()).expect("table overflow"));
    }

    /// The other-two members of every triple posting of `c` (aligned with
    /// `triples_of[c]`, each pair sorted ascending) — the flattened table
    /// behind the triple checks of `can_add` and the incremental frontier.
    #[inline]
    pub fn other_pairs(&self, c: CandidateId) -> &[[CandidateId; 2]] {
        let lo = self.triple_other_start[c.index()] as usize;
        let hi = self.triple_other_start[c.index() + 1] as usize;
        &self.triple_other[lo..hi]
    }

    /// One-to-one: for every attribute, any two incident candidates whose
    /// *other* endpoints are in the same schema conflict.
    fn build_pairs(&mut self, catalog: &Catalog, candidates: &CandidateSet) {
        for attr in catalog.attributes() {
            let incident = candidates.incident(attr.id);
            for (i, &x) in incident.iter().enumerate() {
                let ox = candidates.corr(x).other(attr.id).expect("incident candidate");
                for &y in &incident[i + 1..] {
                    let oy = candidates.corr(y).other(attr.id).expect("incident candidate");
                    if catalog.schema_of(ox) == catalog.schema_of(oy) {
                        self.pair_conflicts[x.index()].push(y);
                        self.pair_conflicts[y.index()].push(x);
                    }
                }
            }
        }
        // deduplicate: two candidates can share at most one attribute, so no
        // duplicates arise, but keep the lists sorted for determinism.
        for list in &mut self.pair_conflicts {
            list.sort_unstable();
            list.dedup();
        }
    }

    /// Cycle: for every interaction-graph triangle `(A, B, C)` and every
    /// triple with one candidate per triangle edge, the triple conflicts iff
    /// it closes at exactly two of the three junctions (an open 3-path).
    ///
    /// The enumeration below visits each family (mismatch at `A`, `B` or `C`)
    /// once, so each violating triple is generated exactly once.
    fn build_triples(
        &mut self,
        catalog: &Catalog,
        graph: &InteractionGraph,
        candidates: &CandidateSet,
    ) {
        for (sa, sb, sc) in graph.triangles() {
            let ab = candidates.for_edge(sa, sb);
            let bc = candidates.for_edge(sb, sc);
            let ac = candidates.for_edge(sa, sc);
            if ab.is_empty() && bc.is_empty() && ac.is_empty() {
                continue;
            }
            // endpoint of candidate `c` lying in schema `s`
            let end = |c: CandidateId, s| {
                let corr = candidates.corr(c);
                let [x, y] = corr.endpoints();
                if catalog.schema_of(x) == s {
                    x
                } else {
                    debug_assert_eq!(catalog.schema_of(y), s);
                    y
                }
            };
            // family 1: junctions at B and C match, mismatch at A
            for &e2 in bc {
                let (b, c) = (end(e2, sb), end(e2, sc));
                for &e1 in candidates.incident(b) {
                    if !ab.contains(&e1) {
                        continue;
                    }
                    let a1 = end(e1, sa);
                    for &e3 in candidates.incident(c) {
                        if !ac.contains(&e3) {
                            continue;
                        }
                        if end(e3, sa) != a1 {
                            self.push_triple(e1, e2, e3);
                        }
                    }
                }
            }
            // family 2: junctions at A and C match, mismatch at B
            for &e3 in ac {
                let (a, c) = (end(e3, sa), end(e3, sc));
                for &e1 in candidates.incident(a) {
                    if !ab.contains(&e1) {
                        continue;
                    }
                    let b1 = end(e1, sb);
                    for &e2 in candidates.incident(c) {
                        if !bc.contains(&e2) {
                            continue;
                        }
                        if end(e2, sb) != b1 {
                            self.push_triple(e1, e2, e3);
                        }
                    }
                }
            }
            // family 3: junctions at A and B match, mismatch at C
            for &e1 in ab {
                let (a, b) = (end(e1, sa), end(e1, sb));
                for &e2 in candidates.incident(b) {
                    if !bc.contains(&e2) {
                        continue;
                    }
                    let c1 = end(e2, sc);
                    for &e3 in candidates.incident(a) {
                        if !ac.contains(&e3) {
                            continue;
                        }
                        if end(e3, sc) != c1 {
                            self.push_triple(e1, e2, e3);
                        }
                    }
                }
            }
        }
    }

    /// Records one potential cycle triple (members sorted). The posting
    /// lists (`triples_of`) are derived later by
    /// [`build_dense`](Self::build_dense), which also canonicalizes the
    /// table order.
    fn push_triple(&mut self, x: CandidateId, y: CandidateId, z: CandidateId) {
        let mut t = [x, y, z];
        t.sort_unstable();
        self.triples.push(t);
    }

    /// The constraint configuration this index was built with.
    pub fn config(&self) -> ConstraintConfig {
        self.config
    }

    /// Number of candidates the index covers.
    pub fn candidate_count(&self) -> usize {
        self.candidate_count
    }

    /// Candidates that pairwise conflict with `c`.
    #[inline]
    pub fn pair_conflicts(&self, c: CandidateId) -> &[CandidateId] {
        &self.pair_conflicts[c.index()]
    }

    /// Potential cycle triples involving `c` (as index triples).
    pub fn triples_involving(&self, c: CandidateId) -> impl Iterator<Item = [CandidateId; 3]> + '_ {
        self.triples_of[c.index()].iter().map(move |&i| self.triples[i as usize])
    }

    /// The full canonical (lexicographically sorted) triple table — the
    /// primary cycle-conflict data a snapshot serializes. Together with
    /// [`pair_conflicts`](Self::pair_conflicts) per candidate, the
    /// [`config`](Self::config) and the candidate count, it determines the
    /// whole index (see [`from_parts`](Self::from_parts)).
    #[inline]
    pub fn triples(&self) -> &[[CandidateId; 3]] {
        &self.triples
    }

    /// Reassembles an index from its primary data — the pair posting lists
    /// and the triple table — re-deriving every dense query structure
    /// (masks, postings, other-two table) exactly as
    /// [`build`](Self::build) would. Because the dense rebuild
    /// canonicalizes, the result is `==`
    /// to the index the parts were read from: the round trip is lossless.
    ///
    /// # Panics
    /// Panics if `pair_conflicts.len() != candidate_count` or any stored id
    /// is out of range — callers deserializing untrusted bytes must
    /// validate both before reassembling (the storage crate does).
    pub fn from_parts(
        config: ConstraintConfig,
        candidate_count: usize,
        pair_conflicts: Vec<Vec<CandidateId>>,
        triples: Vec<[CandidateId; 3]>,
    ) -> Self {
        assert_eq!(pair_conflicts.len(), candidate_count, "posting list per candidate");
        assert!(
            pair_conflicts.iter().flatten().all(|&x| x.index() < candidate_count)
                && triples.iter().flatten().all(|&x| x.index() < candidate_count),
            "conflict member id out of range"
        );
        let mut index = Self {
            config,
            candidate_count,
            pair_conflicts,
            triples,
            triples_of: Vec::new(),
            pair_masks: Vec::new(),
            triple_other: Vec::new(),
            triple_other_start: Vec::new(),
        };
        for list in &mut index.pair_conflicts {
            list.sort_unstable();
            list.dedup();
        }
        index.build_dense();
        index
    }

    /// Total number of potential pair conflicts (each counted once).
    pub fn potential_pair_count(&self) -> usize {
        self.pair_conflicts.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total number of potential cycle triples.
    pub fn potential_triple_count(&self) -> usize {
        self.triples.len()
    }

    /// The dense one-to-one conflict mask of `c`.
    #[inline]
    pub fn pair_mask(&self, c: CandidateId) -> &BitSet {
        &self.pair_masks[c.index()]
    }

    /// Whether adding `c` to the consistent instance `set` introduces no
    /// violation — one AND-intersection over the pair mask plus two probes
    /// per triple posting.
    #[inline]
    pub fn can_add(&self, set: &BitSet, c: CandidateId) -> bool {
        if self.pair_masks[c.index()].intersects(set) {
            return false;
        }
        // a triple fires only if the other two members are present
        self.other_pairs(c).iter().all(|&[a, b]| !(set.contains(a) && set.contains(b)))
    }

    /// Number of violations that adding `c` to `set` would introduce
    /// (`c ∉ set` expected; members of `set` only).
    pub fn violations_introduced(&self, set: &BitSet, c: CandidateId) -> usize {
        let pairs = self.pair_masks[c.index()].intersection_count(set);
        let triples = self
            .other_pairs(c)
            .iter()
            .filter(|&&[a, b]| set.contains(a) && set.contains(b))
            .count();
        pairs + triples
    }

    /// Number of violations *within* `set` that `c ∈ set` participates in —
    /// the `I.getConflict(c_i, Γ)` primitive of Algorithm 4.
    pub fn conflicts_of_in(&self, set: &BitSet, c: CandidateId) -> usize {
        debug_assert!(set.contains(c));
        let pairs = self.pair_masks[c.index()].intersection_count(set);
        let triples = self
            .other_pairs(c)
            .iter()
            .filter(|&&[a, b]| set.contains(a) && set.contains(b))
            .count();
        pairs + triples
    }

    /// Scalar (posting-list) reference implementation of
    /// [`can_add`](ConflictIndex::can_add), retained as the oracle for the
    /// differential property tests.
    #[cfg(test)]
    pub fn scalar_can_add(&self, set: &BitSet, c: CandidateId) -> bool {
        if self.pair_conflicts[c.index()].iter().any(|&x| set.contains(x)) {
            return false;
        }
        self.triples_of[c.index()].iter().all(|&t| {
            let [x, y, z] = self.triples[t as usize];
            !(other_two(x, y, z, c).into_iter().all(|m| set.contains(m)))
        })
    }

    /// Scalar reference implementation of
    /// [`violations_introduced`](ConflictIndex::violations_introduced).
    #[cfg(test)]
    pub fn scalar_violations_introduced(&self, set: &BitSet, c: CandidateId) -> usize {
        let pairs = self.pair_conflicts[c.index()].iter().filter(|&&x| set.contains(x)).count();
        let triples = self.triples_of[c.index()]
            .iter()
            .filter(|&&t| {
                let [x, y, z] = self.triples[t as usize];
                other_two(x, y, z, c).into_iter().all(|m| set.contains(m))
            })
            .count();
        pairs + triples
    }

    /// Scalar reference implementation of
    /// [`is_maximal`](ConflictIndex::is_maximal): re-checks `can_add` for
    /// every candidate outside `set ∪ forbidden`.
    #[cfg(test)]
    pub fn scalar_is_maximal(&self, set: &BitSet, forbidden: &BitSet) -> bool {
        (0..self.candidate_count)
            .map(CandidateId::from_index)
            .all(|c| set.contains(c) || forbidden.contains(c) || !self.scalar_can_add(set, c))
    }

    /// Whether `set` satisfies all configured constraints (`I |= Γ`).
    pub fn is_consistent(&self, set: &BitSet) -> bool {
        for c in set.iter() {
            if self.pair_conflicts[c.index()].iter().any(|&x| x > c && set.contains(x)) {
                return false;
            }
        }
        self.triples.iter().all(|t| !t.iter().all(|&m| set.contains(m)))
    }

    /// Enumerates the concrete violations inside `set`.
    pub fn violations_in(&self, set: &BitSet) -> Vec<Violation> {
        let mut out = Vec::new();
        for c in set.iter() {
            for &x in &self.pair_conflicts[c.index()] {
                if x > c && set.contains(x) {
                    out.push(Violation::one_to_one(c, x));
                }
            }
        }
        for t in &self.triples {
            if t.iter().all(|&m| set.contains(m)) {
                out.push(Violation::cycle(t[0], t[1], t[2]));
            }
        }
        out
    }

    /// Violations inside `set` that involve `c`. After adding `c` to a
    /// previously consistent instance, *all* violations involve `c`, so this
    /// is the work list of the repair routine.
    pub fn violations_involving(&self, set: &BitSet, c: CandidateId) -> Vec<Violation> {
        let mut out = Vec::new();
        self.violations_involving_into(set, c, &mut out);
        out
    }

    /// Allocation-free form of
    /// [`violations_involving`](ConflictIndex::violations_involving):
    /// appends into a caller-owned (scratch) buffer.
    pub fn violations_involving_into(
        &self,
        set: &BitSet,
        c: CandidateId,
        out: &mut Vec<Violation>,
    ) {
        for x in self.pair_masks[c.index()].iter_and(set) {
            out.push(Violation::one_to_one(c, x));
        }
        for (&t, &[a, b]) in self.triples_of[c.index()].iter().zip(self.other_pairs(c)) {
            if set.contains(a) && set.contains(b) {
                let tr = self.triples[t as usize];
                out.push(Violation::cycle(tr[0], tr[1], tr[2]));
            }
        }
    }

    /// Calls `f` with the member slice of every violation inside `set`
    /// involving `c`, without materializing [`Violation`] records — the
    /// work-list enumeration of the Algorithm 4 repair hot path.
    pub fn for_each_violation_involving(
        &self,
        set: &BitSet,
        c: CandidateId,
        mut f: impl FnMut(&[CandidateId]),
    ) {
        for x in self.pair_masks[c.index()].iter_and(set) {
            f(&[c, x]);
        }
        for (&t, &[a, b]) in self.triples_of[c.index()].iter().zip(self.other_pairs(c)) {
            if set.contains(a) && set.contains(b) {
                f(&self.triples[t as usize]);
            }
        }
    }

    /// Per-constraint violation totals inside `set` (Table III numbers when
    /// `set` is the full candidate set).
    pub fn count_violations(&self, set: &BitSet) -> ViolationCounts {
        let mut counts = ViolationCounts::default();
        for v in self.violations_in(set) {
            match v.kind {
                ViolationKind::OneToOne => counts.one_to_one += 1,
                ViolationKind::Cycle => counts.cycle += 1,
            }
        }
        counts
    }

    /// Writes into `blocked` the set of candidates that cannot join `set`
    /// without a violation: the union of the pair masks of `set`'s members
    /// plus every third member of a triple whose other two lie in `set`.
    ///
    /// For a consistent `set` this is exactly `{c ∉ set | ¬can_add(set, c)}`
    /// (members of `set` may also appear; callers exclude them anyway), so
    /// the *addable frontier* is the complement of
    /// `set ∪ forbidden ∪ blocked`.
    pub fn blocked_into(&self, set: &BitSet, blocked: &mut BitSet) {
        debug_assert_eq!(blocked.capacity(), self.candidate_count);
        blocked.clear();
        for c in set.iter() {
            blocked.union_with(&self.pair_masks[c.index()]);
            for &[a, b] in self.other_pairs(c) {
                if set.contains(a) {
                    blocked.insert(b);
                }
                if set.contains(b) {
                    blocked.insert(a);
                }
            }
        }
    }

    /// Whether `set` is *maximal*: no candidate outside `set ∪ forbidden`
    /// can be added without violating a constraint (Definition 1).
    ///
    /// Word-parallel: derives the blocked set once and checks emptiness of
    /// `addable \ (set ∪ forbidden)` in one OR+complement pass instead of
    /// probing `can_add` for all of `0..n`.
    pub fn is_maximal(&self, set: &BitSet, forbidden: &BitSet) -> bool {
        let mut blocked = BitSet::new(self.candidate_count);
        self.is_maximal_in(set, forbidden, &mut blocked)
    }

    /// Scratch-buffer form of [`is_maximal`](ConflictIndex::is_maximal);
    /// `blocked` is overwritten.
    pub fn is_maximal_in(&self, set: &BitSet, forbidden: &BitSet, blocked: &mut BitSet) -> bool {
        self.blocked_into(set, blocked);
        blocked.union_with(set);
        blocked.union_with(forbidden);
        blocked.iter_unset().next().is_none()
    }

    /// Splits the index along a conflict-component partition: one
    /// sub-index per component, candidates renumbered to shard-local ids
    /// (`components.local_index`). Conflicts never span components by
    /// construction of [`crate::components::Components`], so every pair and
    /// triple of `self`
    /// lands — remapped — in exactly one sub-index, in one pass over the
    /// posting lists and the triple table.
    ///
    /// Sub-indices are returned behind [`Arc`] because they are immutable
    /// once built: the copy-on-write shard snapshots of `smn-core` share
    /// them by pointer across forks and overlay clones, so a sub-index is
    /// built exactly once per (re)extraction and never deep-cloned.
    pub fn shard(&self, components: &crate::components::Components) -> Vec<Arc<ConflictIndex>> {
        debug_assert_eq!(components.candidate_count(), self.candidate_count);
        let mut shards: Vec<ConflictIndex> = (0..components.count())
            .map(|k| {
                let m = components.members(k).len();
                ConflictIndex {
                    config: self.config,
                    candidate_count: m,
                    pair_conflicts: vec![Vec::new(); m],
                    triples: Vec::new(),
                    triples_of: vec![Vec::new(); m],
                    pair_masks: Vec::new(),
                    triple_other: Vec::new(),
                    triple_other_start: Vec::new(),
                }
            })
            .collect();
        let local = |c: CandidateId| CandidateId::from_index(components.local_index(c));
        for (i, list) in self.pair_conflicts.iter().enumerate() {
            let c = CandidateId::from_index(i);
            let shard = &mut shards[components.component_of(c)];
            shard.pair_conflicts[local(c).index()].extend(list.iter().map(|&x| local(x)));
        }
        for &[x, y, z] in &self.triples {
            let shard = &mut shards[components.component_of(x)];
            // global members are ascending and the local remap preserves
            // order within a component, so the triple stays sorted
            shard.push_triple(local(x), local(y), local(z));
        }
        for shard in &mut shards {
            shard.build_dense();
        }
        shards.into_iter().map(Arc::new).collect()
    }

    /// Extracts the sub-index of a *single* component (the same remapping
    /// as [`shard`](ConflictIndex::shard), restricted to component `k`) in
    /// one pass over that component's posting lists — the building block of
    /// incremental shard maintenance, where only the merged or split
    /// component must be re-extracted. Like [`shard`](ConflictIndex::shard)
    /// the result is [`Arc`]-shared, never deep-cloned downstream.
    pub fn shard_component(
        &self,
        components: &crate::components::Components,
        k: usize,
    ) -> Arc<ConflictIndex> {
        debug_assert_eq!(components.candidate_count(), self.candidate_count);
        let members = components.members(k);
        let m = members.len();
        let mut sub = ConflictIndex {
            config: self.config,
            candidate_count: m,
            pair_conflicts: vec![Vec::new(); m],
            triples: Vec::new(),
            triples_of: Vec::new(),
            pair_masks: Vec::new(),
            triple_other: Vec::new(),
            triple_other_start: Vec::new(),
        };
        let local = |c: CandidateId| CandidateId::from_index(components.local_index(c));
        for (j, &g) in members.iter().enumerate() {
            sub.pair_conflicts[j] =
                self.pair_conflicts[g.index()].iter().map(|&x| local(x)).collect();
            for &t in &self.triples_of[g.index()] {
                let tr = self.triples[t as usize];
                // emit each triple once: when visiting its smallest member
                if tr[0] == g {
                    sub.triples.push([local(tr[0]), local(tr[1]), local(tr[2])]);
                }
            }
        }
        sub.build_dense();
        Arc::new(sub)
    }

    /// Incrementally extends the index for the candidate just appended to
    /// `candidates` (`candidates.len()` must be exactly one more than the
    /// indexed count): computes the new candidate's pair conflicts and
    /// cycle triples from its local neighbourhood — attribute-incident
    /// candidates and the interaction-graph triangles through its schema
    /// edge — and patches the posting lists and dense query structures.
    /// New conflicts always involve the new candidate, so nothing else is
    /// re-enumerated; the result is `==` to a from-scratch
    /// [`build`](ConflictIndex::build) over the grown candidate set.
    ///
    /// Returns the new candidate's id.
    pub fn add_candidate(
        &mut self,
        catalog: &Catalog,
        graph: &InteractionGraph,
        candidates: &CandidateSet,
    ) -> CandidateId {
        let n = self.candidate_count;
        assert_eq!(candidates.len(), n + 1, "add_candidate expects exactly one appended candidate");
        let c = CandidateId::from_index(n);
        self.candidate_count = n + 1;
        self.pair_conflicts.push(Vec::new());
        let corr = candidates.corr(c);
        if self.config.one_to_one {
            // one-to-one: share an endpoint attribute with `c` while the
            // other endpoints lie in the same schema
            for attr in corr.endpoints() {
                let oc = corr.other(attr).expect("endpoint of its own correspondence");
                for &y in candidates.incident(attr) {
                    if y == c {
                        continue;
                    }
                    let oy = candidates.corr(y).other(attr).expect("incident candidate");
                    if catalog.schema_of(oc) == catalog.schema_of(oy) {
                        self.pair_conflicts[c.index()].push(y);
                        // `c` is the largest id, so pushing keeps the
                        // partner's list sorted
                        self.pair_conflicts[y.index()].push(c);
                    }
                }
            }
            self.pair_conflicts[c.index()].sort_unstable();
        }
        let mut added: Vec<[CandidateId; 3]> = Vec::new();
        if self.config.cycle {
            // cycle: for every triangle through c's schema edge, a triple
            // (c, e2, e3) with one candidate per remaining edge conflicts
            // iff it closes at exactly two of the three junctions — the
            // same open-3-path rule `build_triples` enumerates family-wise
            let [pa, pb] = corr.endpoints();
            let (sa, sb) = (catalog.schema_of(pa), catalog.schema_of(pb));
            for &sc in graph.neighbors(sa) {
                if sc == sb || !graph.has_edge(sb, sc) {
                    continue;
                }
                let bc = candidates.for_edge(sb, sc);
                let ac = candidates.for_edge(sa, sc);
                for &e2 in bc {
                    let (b2, c2) =
                        (end_of(catalog, candidates, e2, sb), end_of(catalog, candidates, e2, sc));
                    for &e3 in ac {
                        let (a3, c3) = (
                            end_of(catalog, candidates, e3, sa),
                            end_of(catalog, candidates, e3, sc),
                        );
                        let closes =
                            usize::from(pb == b2) + usize::from(c2 == c3) + usize::from(a3 == pa);
                        if closes == 2 {
                            let mut t = [c, e2, e3];
                            t.sort_unstable();
                            added.push(t);
                        }
                    }
                }
            }
        }
        self.patch_dense_add(c, added);
        c
    }

    /// Dense patch for an arrival: grow every pair mask by one slot and
    /// set the partner bits; merge the (few) new triples into the
    /// canonical table, remapping the existing postings in place; then
    /// re-derive the flattened other-two table. `O(n + P + T)` sequential
    /// work with no per-candidate allocation — versus
    /// [`build`](ConflictIndex::build)'s full conflict enumeration over
    /// the catalog plus `n` fresh mask and posting vectors.
    fn patch_dense_add(&mut self, c: CandidateId, mut added: Vec<[CandidateId; 3]>) {
        let n = self.candidate_count;
        for mask in &mut self.pair_masks {
            mask.grow(n);
        }
        for &y in &self.pair_conflicts[c.index()] {
            self.pair_masks[y.index()].insert(c);
        }
        self.pair_masks.push(BitSet::from_ids(n, self.pair_conflicts[c.index()].iter().copied()));
        self.triples_of.push(Vec::new());
        if !added.is_empty() {
            // one merge pass keeps the table canonical (new triples contain
            // `c` but need not sort after the old ones) and yields the
            // old → new position remap for the existing postings
            added.sort_unstable();
            let old = std::mem::take(&mut self.triples);
            let mut merged = Vec::with_capacity(old.len() + added.len());
            let mut old_pos = Vec::with_capacity(old.len());
            let mut added_pos = Vec::with_capacity(added.len());
            let (mut ai, mut oi) = (0usize, 0usize);
            while oi < old.len() || ai < added.len() {
                let take_added = ai < added.len() && (oi >= old.len() || added[ai] < old[oi]);
                let pos = u32::try_from(merged.len()).expect("triple index overflow");
                if take_added {
                    added_pos.push(pos);
                    merged.push(added[ai]);
                    ai += 1;
                } else {
                    old_pos.push(pos);
                    merged.push(old[oi]);
                    oi += 1;
                }
            }
            self.triples = merged;
            for list in &mut self.triples_of {
                for t in list.iter_mut() {
                    *t = old_pos[*t as usize];
                }
            }
            for (&p, t) in added_pos.iter().zip(&added) {
                for &m in t {
                    let list = &mut self.triples_of[m.index()];
                    let at = list.partition_point(|&x| x < p);
                    list.insert(at, p);
                }
            }
        }
        self.rebuild_other_table();
    }

    /// Incrementally removes candidate `c` from the index, compacting the
    /// id space: every candidate above `c` shifts down by one (the same
    /// order-preserving renumbering [`CandidateSet::remove`] applies).
    /// Conflicts not involving `c` are untouched apart from the renumber,
    /// so the result is `==` to a from-scratch
    /// [`build`](ConflictIndex::build) over the shrunken candidate set.
    pub fn retire_candidate(&mut self, c: CandidateId) {
        assert!(c.index() < self.candidate_count, "retire of unknown candidate {c}");
        let shift = |x: CandidateId| if x > c { CandidateId(x.0 - 1) } else { x };
        self.pair_conflicts.remove(c.index());
        for list in &mut self.pair_conflicts {
            list.retain(|&x| x != c);
            for x in list.iter_mut() {
                *x = shift(*x);
            }
        }
        // dense pair patch: drop c's mask, collapse its bit position in
        // every other (the monotone renumbering keeps the words exact)
        self.pair_masks.remove(c.index());
        for mask in &mut self.pair_masks {
            mask.collapse(c);
        }
        // compact the triple table in place (the retiree's triples die),
        // tracking the old → new position remap for the postings; the
        // order-preserving compaction plus the monotone id shift keep the
        // table canonical without a re-sort
        let mut alive_pos = vec![u32::MAX; self.triples.len()];
        let mut write = 0usize;
        for read in 0..self.triples.len() {
            if !self.triples[read].contains(&c) {
                alive_pos[read] = u32::try_from(write).expect("triple index overflow");
                self.triples[write] = self.triples[read];
                write += 1;
            }
        }
        self.triples.truncate(write);
        for t in &mut self.triples {
            for m in t.iter_mut() {
                *m = shift(*m);
            }
        }
        self.triples_of.remove(c.index());
        for list in &mut self.triples_of {
            list.retain_mut(|t| {
                let p = alive_pos[*t as usize];
                *t = p;
                p != u32::MAX
            });
        }
        self.candidate_count -= 1;
        self.rebuild_other_table();
    }
}

/// Endpoint of candidate `c` lying in schema `s`.
#[inline]
fn end_of(
    catalog: &Catalog,
    candidates: &CandidateSet,
    c: CandidateId,
    s: smn_schema::SchemaId,
) -> smn_schema::AttributeId {
    let [x, y] = candidates.corr(c).endpoints();
    if catalog.schema_of(x) == s {
        x
    } else {
        debug_assert_eq!(catalog.schema_of(y), s);
        y
    }
}

#[inline]
fn other_two(x: CandidateId, y: CandidateId, z: CandidateId, c: CandidateId) -> [CandidateId; 2] {
    if x == c {
        [y, z]
    } else if y == c {
        [x, z]
    } else {
        debug_assert_eq!(z, c);
        [x, y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::{AttributeId, CatalogBuilder};

    /// The motivating example of §II-A / Fig. 1: three video providers.
    ///
    /// Attributes: a0 = productionDate (EoverI), a1 = date (BBC),
    /// a2 = releaseDate (DVDizzy), a3 = screenDate (DVDizzy).
    /// Candidates: c0 = a0–a1, c1 = a1–a2, c2 = a0–a2, c3 = a1–a3, c4 = a0–a3.
    ///
    /// With one-to-one + cycle constraints the only two maximal instances
    /// are {c0, c1, c2} and {c0, c3, c4} (Example 1 of the paper, relabeled).
    fn fig1() -> (Catalog, InteractionGraph, CandidateSet, ConflictIndex) {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("EoverI", ["productionDate"]).unwrap();
        b.add_schema_with_attributes("BBC", ["date"]).unwrap();
        b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(3);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(1), 0.9).unwrap(); // c0
        cs.add(&cat, Some(&g), a(1), a(2), 0.8).unwrap(); // c1
        cs.add(&cat, Some(&g), a(0), a(2), 0.8).unwrap(); // c2
        cs.add(&cat, Some(&g), a(1), a(3), 0.7).unwrap(); // c3
        cs.add(&cat, Some(&g), a(0), a(3), 0.7).unwrap(); // c4
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        (cat, g, cs, idx)
    }

    fn set(n: usize, ids: &[u32]) -> BitSet {
        BitSet::from_ids(n, ids.iter().map(|&i| CandidateId(i)))
    }

    #[test]
    fn fig1_pair_conflicts() {
        let (_, _, _, idx) = fig1();
        // c1 (a1–a2) vs c3 (a1–a3): share a1, others in DVDizzy → 1-1 conflict
        assert_eq!(idx.pair_conflicts(CandidateId(1)), &[CandidateId(3)]);
        // c2 (a0–a2) vs c4 (a0–a3): share a0, others in DVDizzy → 1-1 conflict
        assert_eq!(idx.pair_conflicts(CandidateId(2)), &[CandidateId(4)]);
        // c0 conflicts with nobody pairwise
        assert!(idx.pair_conflicts(CandidateId(0)).is_empty());
    }

    #[test]
    fn fig1_cycle_triples() {
        let (_, _, _, idx) = fig1();
        let mut triples: Vec<_> = idx.triples.clone();
        triples.sort();
        // open 3-paths: {c0,c1,c4} (closes at a1 and ... ) and {c0,c2,c3}
        assert_eq!(
            triples,
            vec![
                [CandidateId(0), CandidateId(1), CandidateId(4)],
                [CandidateId(0), CandidateId(2), CandidateId(3)],
            ]
        );
    }

    #[test]
    fn fig1_consistency_of_known_instances() {
        let (_, _, cs, idx) = fig1();
        let n = cs.len();
        let i1 = set(n, &[0, 1, 2]);
        let i2 = set(n, &[0, 3, 4]);
        assert!(idx.is_consistent(&i1));
        assert!(idx.is_consistent(&i2));
        // the full candidate set is inconsistent
        assert!(!idx.is_consistent(&BitSet::full(n)));
        // mixed picks are inconsistent
        assert!(!idx.is_consistent(&set(n, &[0, 1, 3]))); // 1-1 on a1
        assert!(!idx.is_consistent(&set(n, &[0, 1, 4]))); // open cycle
        assert!(!idx.is_consistent(&set(n, &[0, 2, 3]))); // open cycle
    }

    #[test]
    fn fig1_maximality() {
        let (_, _, cs, idx) = fig1();
        let n = cs.len();
        let none = BitSet::new(n);
        assert!(idx.is_maximal(&set(n, &[0, 1, 2]), &none));
        assert!(idx.is_maximal(&set(n, &[0, 3, 4]), &none));
        // {c0} alone is not maximal — c1 can still be added
        assert!(!idx.is_maximal(&set(n, &[0]), &none));
        // but becomes maximal if everything else is forbidden
        assert!(idx.is_maximal(&set(n, &[0]), &set(n, &[1, 2, 3, 4])));
    }

    #[test]
    fn fig1_can_add_and_introduced() {
        let (_, _, cs, idx) = fig1();
        let n = cs.len();
        let i = set(n, &[0, 1]);
        assert!(idx.can_add(&i, CandidateId(2)));
        assert!(!idx.can_add(&i, CandidateId(3))); // 1-1 with c1
        assert!(!idx.can_add(&i, CandidateId(4))); // open cycle with c0, c1
        assert_eq!(idx.violations_introduced(&i, CandidateId(3)), 1);
        assert_eq!(idx.violations_introduced(&i, CandidateId(4)), 1);
        assert_eq!(idx.violations_introduced(&i, CandidateId(2)), 0);
    }

    #[test]
    fn fig1_violation_enumeration_and_counts() {
        let (_, _, cs, idx) = fig1();
        let full = BitSet::full(cs.len());
        let viols = idx.violations_in(&full);
        let counts = idx.count_violations(&full);
        assert_eq!(counts.one_to_one, 2);
        assert_eq!(counts.cycle, 2);
        assert_eq!(counts.total(), viols.len());
        // every violation involving c0 is a cycle violation
        let involving0 = idx.violations_involving(&full, CandidateId(0));
        assert_eq!(involving0.len(), 2);
        assert!(involving0.iter().all(|v| v.kind == ViolationKind::Cycle));
    }

    #[test]
    fn conflicts_of_in_counts_local_violations() {
        let (_, _, cs, idx) = fig1();
        let full = BitSet::full(cs.len());
        // c0 participates in both cycle triples
        assert_eq!(idx.conflicts_of_in(&full, CandidateId(0)), 2);
        // c1: 1-1 with c3, cycle {c0,c1,c4}
        assert_eq!(idx.conflicts_of_in(&full, CandidateId(1)), 2);
    }

    #[test]
    fn one_to_one_only_config_ignores_cycles() {
        let (cat, g, cs, _) = fig1();
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::one_to_one_only());
        assert_eq!(idx.potential_triple_count(), 0);
        assert_eq!(idx.potential_pair_count(), 2);
        // the open 3-path is now allowed
        assert!(idx.is_consistent(&set(cs.len(), &[0, 1, 4])));
    }

    #[test]
    fn empty_set_is_consistent_but_not_maximal() {
        let (_, _, cs, idx) = fig1();
        let n = cs.len();
        let empty = BitSet::new(n);
        assert!(idx.is_consistent(&empty));
        assert!(!idx.is_maximal(&empty, &BitSet::new(n)));
    }

    /// Builds a 3-schema catalog with `sizes` attributes per schema and a
    /// random candidate subset of all cross-schema pairs selected by `mask`
    /// bits (mirrors the generator of `tests/properties.rs`).
    fn random_network(sizes: [usize; 3], mask: u64) -> (Catalog, InteractionGraph, CandidateSet) {
        let mut b = CatalogBuilder::new();
        for (i, &n) in sizes.iter().enumerate() {
            let attrs: Vec<String> = (0..n).map(|j| format!("a{i}_{j}")).collect();
            b.add_schema_with_attributes(format!("s{i}"), attrs).unwrap();
        }
        let cat = b.build();
        let g = InteractionGraph::complete(3);
        let mut cs = CandidateSet::new(&cat);
        let mut bit = 0u32;
        for x in 0..cat.attribute_count() {
            for y in (x + 1)..cat.attribute_count() {
                let (ax, ay) = (AttributeId::from_index(x), AttributeId::from_index(y));
                if cat.schema_of(ax) == cat.schema_of(ay) {
                    continue;
                }
                if mask & (1 << (bit % 64)) != 0 {
                    cs.add(&cat, Some(&g), ax, ay, 0.5).unwrap();
                }
                bit += 1;
            }
        }
        (cat, g, cs)
    }

    fn mask_subset(n: usize, mask: u64) -> BitSet {
        BitSet::from_ids(
            n,
            (0..n).filter(|i| mask & (1 << (i % 64)) != 0).map(CandidateId::from_index),
        )
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The mask-based `can_add` / `violations_introduced` /
            /// `conflicts_of_in` agree with the scalar posting-list oracles
            /// on arbitrary (not necessarily consistent) subsets.
            #[test]
            fn masked_primitives_match_scalar_oracles(
                cand_mask in any::<u64>(),
                inst_mask in any::<u64>(),
                sizes in prop::array::uniform3(1usize..4),
            ) {
                let (cat, g, cs) = random_network(sizes, cand_mask);
                let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
                let set = mask_subset(cs.len(), inst_mask);
                for i in 0..cs.len() {
                    let c = CandidateId::from_index(i);
                    prop_assert_eq!(idx.can_add(&set, c), idx.scalar_can_add(&set, c));
                    prop_assert_eq!(
                        idx.violations_introduced(&set, c),
                        idx.scalar_violations_introduced(&set, c)
                    );
                }
            }

            /// Word-parallel maximality agrees with the scalar all-candidates
            /// scan, on both greedily-completed and raw random sets, with and
            /// without a random forbidden set.
            #[test]
            fn masked_maximality_matches_scalar_oracle(
                cand_mask in any::<u64>(),
                inst_mask in any::<u64>(),
                forb_mask in any::<u64>(),
                sizes in prop::array::uniform3(1usize..4),
            ) {
                let (cat, g, cs) = random_network(sizes, cand_mask);
                let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
                let forbidden = mask_subset(cs.len(), forb_mask);
                // greedy consistent completion of the mask
                let mut inst = BitSet::new(cs.len());
                for i in 0..cs.len() {
                    let c = CandidateId::from_index(i);
                    if inst_mask & (1 << (i % 64)) != 0 && idx.can_add(&inst, c) {
                        inst.insert(c);
                    }
                }
                prop_assert_eq!(
                    idx.is_maximal(&inst, &forbidden),
                    idx.scalar_is_maximal(&inst, &forbidden)
                );
                prop_assert_eq!(
                    idx.is_maximal(&inst, &BitSet::new(cs.len())),
                    idx.scalar_is_maximal(&inst, &BitSet::new(cs.len()))
                );
            }

            /// `blocked_into` is exactly the complement characterization of
            /// `can_add` outside the instance: for consistent sets,
            /// `c ∉ set` is blocked iff `¬can_add(set, c)`.
            #[test]
            fn blocked_set_characterizes_can_add(
                cand_mask in any::<u64>(),
                inst_mask in any::<u64>(),
                sizes in prop::array::uniform3(1usize..4),
            ) {
                let (cat, g, cs) = random_network(sizes, cand_mask);
                let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
                let mut inst = BitSet::new(cs.len());
                for i in 0..cs.len() {
                    let c = CandidateId::from_index(i);
                    if inst_mask & (1 << (i % 64)) != 0 && idx.can_add(&inst, c) {
                        inst.insert(c);
                    }
                }
                let mut blocked = BitSet::new(cs.len());
                idx.blocked_into(&inst, &mut blocked);
                for i in 0..cs.len() {
                    let c = CandidateId::from_index(i);
                    if inst.contains(c) {
                        continue;
                    }
                    prop_assert_eq!(blocked.contains(c), !idx.can_add(&inst, c));
                }
            }
        }
    }

    #[test]
    fn no_triangle_graph_has_no_triples() {
        // A—B—C path: no triangle, so no cycle conflicts even with the
        // cycle constraint enabled.
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a"]).unwrap();
        b.add_schema_with_attributes("B", ["b"]).unwrap();
        b.add_schema_with_attributes("C", ["c"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::path(3);
        let mut cs = CandidateSet::new(&cat);
        cs.add(&cat, Some(&g), AttributeId(0), AttributeId(1), 0.5).unwrap();
        cs.add(&cat, Some(&g), AttributeId(1), AttributeId(2), 0.5).unwrap();
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        assert_eq!(idx.potential_triple_count(), 0);
        assert!(idx.is_consistent(&BitSet::full(2)));
    }
}
