//! # smn-constraints
//!
//! Network-level integrity constraints for schema matching networks and the
//! machinery to detect, count and index their violations (§II-A/§II-B of
//! "Pay-as-you-go Reconciliation in Schema Matching Networks", ICDE 2014).
//!
//! Two constraints from the paper are implemented:
//!
//! * **One-to-one**: each attribute of one schema is matched to at most one
//!   attribute of any other schema. Violations are *pairs* of candidates
//!   sharing an endpoint whose other endpoints lie in the same schema.
//! * **Cycle**: if schemas are matched along a cycle, the matched attributes
//!   must form a closed cycle. Following the companion work (ER'13, ref. 34)
//!   this is enforced along interaction-graph *triangles*: a violation is a
//!   *triple* of candidates, one per triangle edge, that forms an open
//!   3-path (it closes at exactly two of the three junctions). The
//!   [`closure`] module offers a strictly stronger union-find check
//!   (transitive closure must not put two attributes of one schema in the
//!   same component) that covers cycles of arbitrary length and is used for
//!   cross-validation.
//!
//! The central type is [`ConflictIndex`]: it pre-computes every potential
//! pair and triple violation of a candidate set once, then answers the
//! incremental questions the sampler, the repair routine and the
//! instantiation search ask (`can_add`, `violations_introduced`,
//! `conflicts_of_in`) in time proportional to the local conflict degree.
//! Matching instances themselves are plain [`BitSet`]s over candidate ids.
//!
//! Because constraints only couple candidates that share a conflict, the
//! conflict graph decomposes sparse networks into independent connected
//! components; [`Components`] extracts that partition and
//! [`ConflictIndex::shard`] splits the index along it — the foundation of
//! the component-sharded probabilistic model in `smn-core`.

pub mod bitset;
pub mod closure;
pub mod components;
pub mod index;
pub mod kernels;
pub mod placement;
pub mod violation;

pub use bitset::BitSet;
pub use closure::ClosureChecker;
pub use components::Components;
pub use index::{ConflictIndex, ConstraintConfig};
pub use placement::Placement;
pub use violation::{Violation, ViolationCounts, ViolationKind};
