//! Violation records and per-constraint counts.

use serde::{Deserialize, Serialize};
use smn_schema::CandidateId;
use std::fmt;

/// Which constraint a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two candidates map one attribute to two attributes of the same schema.
    OneToOne,
    /// Three candidates form an open 3-path around an interaction-graph
    /// triangle (the composed matching does not close).
    Cycle,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::OneToOne => write!(f, "one-to-one"),
            ViolationKind::Cycle => write!(f, "cycle"),
        }
    }
}

/// A concrete violation: the kind plus the participating candidates
/// (two for one-to-one, three for cycle).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Violation {
    /// The violated constraint.
    pub kind: ViolationKind,
    /// Participating candidate ids, sorted ascending.
    pub members: Vec<CandidateId>,
}

impl Violation {
    /// A one-to-one violation between `x` and `y`.
    pub fn one_to_one(x: CandidateId, y: CandidateId) -> Self {
        let mut members = vec![x, y];
        members.sort_unstable();
        Self { kind: ViolationKind::OneToOne, members }
    }

    /// A cycle violation between `x`, `y`, `z`.
    pub fn cycle(x: CandidateId, y: CandidateId, z: CandidateId) -> Self {
        let mut members = vec![x, y, z];
        members.sort_unstable();
        Self { kind: ViolationKind::Cycle, members }
    }

    /// Whether `c` participates in the violation.
    pub fn involves(&self, c: CandidateId) -> bool {
        self.members.contains(&c)
    }
}

/// Violation totals per constraint, as reported in Table III of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCounts {
    /// Number of violating candidate pairs.
    pub one_to_one: usize,
    /// Number of violating candidate triples.
    pub cycle: usize,
}

impl ViolationCounts {
    /// Combined count (`# Violations` column of Table III).
    pub fn total(&self) -> usize {
        self.one_to_one + self.cycle
    }
}

impl fmt::Display for ViolationCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (1-1: {}, cycle: {})", self.total(), self.one_to_one, self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_sorted() {
        let v = Violation::one_to_one(CandidateId(9), CandidateId(2));
        assert_eq!(v.members, vec![CandidateId(2), CandidateId(9)]);
        let v = Violation::cycle(CandidateId(5), CandidateId(1), CandidateId(3));
        assert_eq!(v.members, vec![CandidateId(1), CandidateId(3), CandidateId(5)]);
    }

    #[test]
    fn involvement() {
        let v = Violation::cycle(CandidateId(5), CandidateId(1), CandidateId(3));
        assert!(v.involves(CandidateId(3)));
        assert!(!v.involves(CandidateId(4)));
    }

    #[test]
    fn counts_total() {
        let c = ViolationCounts { one_to_one: 3, cycle: 4 };
        assert_eq!(c.total(), 7);
        assert_eq!(c.to_string(), "7 (1-1: 3, cycle: 4)");
    }

    #[test]
    fn violations_compare_structurally() {
        assert_eq!(
            Violation::one_to_one(CandidateId(1), CandidateId(2)),
            Violation::one_to_one(CandidateId(2), CandidateId(1))
        );
        assert_ne!(
            Violation::one_to_one(CandidateId(1), CandidateId(2)),
            Violation::one_to_one(CandidateId(1), CandidateId(3))
        );
    }
}
