//! Component placement for the multi-process reconciliation mode.
//!
//! The conflict graph's components are statistically independent, so
//! they can live on different shard servers; the only question is *which
//! component goes where*. [`Placement`] answers it with consistent
//! hashing over component ids on a fixed ring of virtual nodes:
//!
//! * **Deterministic** — placement is a pure function of
//!   `(server_count, component id)`; every process (coordinator, shard
//!   servers, a replay months later) computes the same map with no
//!   negotiation, which is what keeps distributed runs byte-identical
//!   to single-process runs.
//! * **Stable under evolution** — components are renumbered when the
//!   network evolves (merge on extend, split on retire), but consistent
//!   hashing keeps unrelated components where they were: only ids whose
//!   ring position falls to a different server move, and changing the
//!   server count relocates roughly `1/n` of the components instead of
//!   reshuffling everything (the classic consistent-hashing bound,
//!   pinned by the tests below).
//!
//! The hash is SplitMix64 — the same mixer the sampler family uses for
//! seed derivation — applied to the component id for ring lookups and to
//! `(server, replica)` for ring points. No cryptographic strength is
//! needed: servers are trusted, the hash only needs uniform dispersion.

/// Virtual ring points per server. 64 keeps the expected per-server load
/// within a few percent of uniform at the component counts the
/// federation presets produce (hundreds), while the ring stays small
/// enough to rebuild on every epoch without showing up in profiles.
pub const VNODES_PER_SERVER: usize = 64;

/// SplitMix64: the finalizing mixer of Steele et al.'s splittable RNG —
/// a bijection on `u64` with full avalanche, cheap enough to apply per
/// lookup.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash placement of component ids onto `servers` shard
/// servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    servers: usize,
    /// Ring points sorted by position: `(hash, server)`.
    ring: Vec<(u64, usize)>,
}

impl Placement {
    /// Builds the ring for `servers` shard servers (min 1). The ring is
    /// a pure function of the server count — no seeds, no state — so
    /// every participant derives an identical placement independently.
    pub fn new(servers: usize) -> Self {
        let servers = servers.max(1);
        let mut ring = Vec::with_capacity(servers * VNODES_PER_SERVER);
        for server in 0..servers {
            for replica in 0..VNODES_PER_SERVER {
                // disambiguate (server, replica) injectively before mixing
                let point = splitmix64(((server as u64) << 32) | replica as u64);
                ring.push((point, server));
            }
        }
        // ties (astronomically unlikely) break toward the lower server id
        ring.sort_unstable();
        Self { servers, ring }
    }

    /// Shard servers this placement spreads over.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The server owning component `component`: the first ring point at
    /// or clockwise-after the component's hashed position (wrapping).
    pub fn server_of(&self, component: usize) -> usize {
        // the key hash must live in a different stream than the ring
        // points: `splitmix64(component)` would land component `c < 64`
        // exactly ON server 0's replica-`c` ring point (both hash the
        // same small integers), collapsing every small network onto one
        // server — hence the domain tag
        let h = splitmix64((component as u64) ^ 0xA076_1D64_78BD_642F);
        let idx = self.ring.partition_point(|&(point, _)| point < h);
        self.ring[idx % self.ring.len()].1
    }

    /// The full component → server map for `components` components.
    pub fn assign(&self, components: usize) -> Vec<usize> {
        (0..components).map(|c| self.server_of(c)).collect()
    }

    /// Components of `0..components` owned by `server`, ascending.
    pub fn owned_by(&self, server: usize, components: usize) -> Vec<usize> {
        (0..components).filter(|&c| self.server_of(c) == server).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = Placement::new(4);
        let b = Placement::new(4);
        assert_eq!(a, b, "the ring is a pure function of the server count");
        for c in 0..1000 {
            let s = a.server_of(c);
            assert!(s < 4);
            assert_eq!(s, b.server_of(c));
        }
    }

    #[test]
    fn one_server_owns_everything_and_zero_clamps() {
        let one = Placement::new(1);
        let zero = Placement::new(0);
        for c in 0..100 {
            assert_eq!(one.server_of(c), 0);
            assert_eq!(zero.server_of(c), 0, "a zero-server placement clamps to one");
        }
    }

    #[test]
    fn small_component_ids_spread_over_small_clusters() {
        // regression: the key hash used to share splitmix64's input
        // domain with server 0's replica ring points, so every
        // component id below VNODES_PER_SERVER mapped to server 0 —
        // i.e. every small fixture "cluster" was secretly one server
        let assign = Placement::new(2).assign(12);
        assert!(
            assign.iter().any(|&s| s != assign[0]),
            "12 components all landed on server {}: {assign:?}",
            assign[0]
        );
    }

    #[test]
    fn load_spreads_roughly_uniformly() {
        let p = Placement::new(4);
        let n = 4096;
        let assign = p.assign(n);
        let mut counts = [0usize; 4];
        for &s in &assign {
            counts[s] += 1;
        }
        for (server, &count) in counts.iter().enumerate() {
            // within 2× of the uniform share — loose, but catches a
            // degenerate hash or a broken ring lookup immediately
            assert!(
                count > n / 8 && count < n / 2,
                "server {server} owns {count} of {n} components"
            );
        }
        // owned_by partitions exactly
        let mut total = 0;
        for server in 0..4 {
            let owned = p.owned_by(server, n);
            assert!(owned.iter().all(|&c| assign[c] == server));
            total += owned.len();
        }
        assert_eq!(total, n);
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction() {
        let n = 4096;
        let before = Placement::new(3).assign(n);
        let after = Placement::new(4).assign(n);
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        // consistent hashing: adding the 4th server should move ≈ 1/4 of
        // the keys; assert well under a full reshuffle (which would be
        // ≈ 3/4 under independent uniform re-assignment)
        assert!(
            moved < n / 2,
            "adding one server moved {moved} of {n} components — not consistent"
        );
        // and every component that moved landed on the new server
        for (c, (&a, &b)) in before.iter().zip(&after).enumerate() {
            if a != b {
                assert_eq!(b, 3, "component {c} moved to an old server");
            }
        }
    }
}
