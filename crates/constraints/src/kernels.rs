//! Wide word-level kernels shared by every bit-parallel hot path.
//!
//! The Eq. 4/5 machinery spends its time in a handful of primitive loops
//! over `&[u64]` slices: AND/AND-NOT/XOR + popcount, intersection tests,
//! subset tests and bulk copies. On stable Rust (no `std::simd`, no
//! target-feature dispatch) the way to reach the hardware ceiling is
//! manual unrolling: each kernel walks the slices in blocks of
//! [`LANES`] = 4 words (256 bits) with four independent accumulators, so
//! the four popcounts per block form separate dependency chains the CPU
//! can retire in parallel — and the shape is exactly what LLVM's
//! auto-vectorizer turns into AVX2 `vpand`/`vpshufb`-popcount sequences
//! when they are profitable. The tail (`len % LANES` words) is handled by
//! an explicit scalar epilogue; no kernel ever reads past the slices.
//!
//! Callers guarantee the usual [`BitSet`](crate::BitSet) invariant: bits
//! beyond the logical length are zero in every word, so popcounts need no
//! masking here. The scalar reference implementations live in the
//! `scalar` submodule (compiled only for tests) and every kernel is
//! differential-tested against them, including lengths that are not
//! multiples of 64 or of the 256-bit lane width.

/// Words per unrolled block (4 × u64 = 256 bits).
pub const LANES: usize = 4;

/// Slice length (in words) below which [`and_count`] — the innermost
/// loop of the Eq. 4/5 gain split, called once per (candidate, row)
/// pair — takes a fused scalar loop instead of the unrolled block walk.
/// Under two full blocks the 4-accumulator prologue/epilogue costs more
/// than it saves (the 400-sample stores of the standard benchmarks have
/// 7-word rows, which is exactly where `BENCH_speed.json` showed the
/// wide path 2–12% *behind* the PR-2 scalar baseline at |C| ≤ 352); at
/// or above two blocks the independent dependency chains win. Both
/// paths compute the identical integer, so the cutover can never change
/// a value.
pub const AND_COUNT_SCALAR_BELOW: usize = 2 * LANES;

/// Popcount of `a` — `Σ count_ones(a[i])`.
#[inline]
pub fn count(a: &[u64]) -> usize {
    let mut chunks = a.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for w in chunks.by_ref() {
        c0 += w[0].count_ones() as usize;
        c1 += w[1].count_ones() as usize;
        c2 += w[2].count_ones() as usize;
        c3 += w[3].count_ones() as usize;
    }
    let tail: usize = chunks.remainder().iter().map(|w| w.count_ones() as usize).sum();
    c0 + c1 + c2 + c3 + tail
}

/// Popcount of `a & b`. Short slices (see [`AND_COUNT_SCALAR_BELOW`])
/// take a fused scalar loop; the result is the same integer either way.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < AND_COUNT_SCALAR_BELOW {
        return a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum();
    }
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        c0 += (x[0] & y[0]).count_ones() as usize;
        c1 += (x[1] & y[1]).count_ones() as usize;
        c2 += (x[2] & y[2]).count_ones() as usize;
        c3 += (x[3] & y[3]).count_ones() as usize;
    }
    let tail: usize =
        ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| (x & y).count_ones() as usize).sum();
    c0 + c1 + c2 + c3 + tail
}

/// Popcount of `a & !b` (`|A \ B|` without materializing the difference).
#[inline]
pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        c0 += (x[0] & !y[0]).count_ones() as usize;
        c1 += (x[1] & !y[1]).count_ones() as usize;
        c2 += (x[2] & !y[2]).count_ones() as usize;
        c3 += (x[3] & !y[3]).count_ones() as usize;
    }
    let tail: usize = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// Popcount of `a ^ b` (the symmetric-difference distance `Δ(A, B)`).
#[inline]
pub fn xor_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        c0 += (x[0] ^ y[0]).count_ones() as usize;
        c1 += (x[1] ^ y[1]).count_ones() as usize;
        c2 += (x[2] ^ y[2]).count_ones() as usize;
        c3 += (x[3] ^ y[3]).count_ones() as usize;
    }
    let tail: usize =
        ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| (x ^ y).count_ones() as usize).sum();
    c0 + c1 + c2 + c3 + tail
}

/// Whether `a & b` has any set bit. One OR-combined block per iteration
/// keeps a single branch per 256 bits while still exiting early.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        if (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]) != 0 {
            return true;
        }
    }
    ca.remainder().iter().zip(cb.remainder()).any(|(x, y)| x & y != 0)
}

/// Whether every set bit of `a` is set in `b` (`a ⊆ b`).
#[inline]
pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        if (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]) != 0 {
            return false;
        }
    }
    ca.remainder().iter().zip(cb.remainder()).all(|(x, y)| x & !y == 0)
}

/// Whether no bit of `a` is set.
#[inline]
pub fn is_zero(a: &[u64]) -> bool {
    let mut chunks = a.chunks_exact(LANES);
    for w in chunks.by_ref() {
        if w[0] | w[1] | w[2] | w[3] != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&w| w == 0)
}

/// Copies `src` into `dst` (equal lengths) in unrolled blocks — the
/// scratch-buffer alternative to reallocating in per-step walk state.
#[inline]
pub fn copy(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut cd = dst.chunks_exact_mut(LANES);
    let mut cs = src.chunks_exact(LANES);
    for (d, s) in cd.by_ref().zip(cs.by_ref()) {
        d[0] = s[0];
        d[1] = s[1];
        d[2] = s[2];
        d[3] = s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d = *s;
    }
}

/// In-place union: `dst |= src`.
#[inline]
pub fn or_inplace(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut cd = dst.chunks_exact_mut(LANES);
    let mut cs = src.chunks_exact(LANES);
    for (d, s) in cd.by_ref().zip(cs.by_ref()) {
        d[0] |= s[0];
        d[1] |= s[1];
        d[2] |= s[2];
        d[3] |= s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d |= *s;
    }
}

/// In-place difference: `dst &= !src`.
#[inline]
pub fn and_not_inplace(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut cd = dst.chunks_exact_mut(LANES);
    let mut cs = src.chunks_exact(LANES);
    for (d, s) in cd.by_ref().zip(cs.by_ref()) {
        d[0] &= !s[0];
        d[1] &= !s[1];
        d[2] &= !s[2];
        d[3] &= !s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d &= !*s;
    }
}

/// Writes the complement of the first `len_bits` bits of `src` into `dst`
/// (equal word lengths); bits at and above `len_bits` come out zero. The
/// mask-building kernel of view maintenance under a disapproval.
#[inline]
pub fn not_into(dst: &mut [u64], src: &[u64], len_bits: usize) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(len_bits <= dst.len() * 64);
    let mut cd = dst.chunks_exact_mut(LANES);
    let mut cs = src.chunks_exact(LANES);
    for (d, s) in cd.by_ref().zip(cs.by_ref()) {
        d[0] = !s[0];
        d[1] = !s[1];
        d[2] = !s[2];
        d[3] = !s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d = !*s;
    }
    let extra = dst.len() * 64 - len_bits;
    if extra > 0 {
        if let Some(last) = dst.last_mut() {
            *last &= u64::MAX >> extra;
        }
    }
}

/// In-place 64×64 bit-matrix transpose (the recursive block-swap of
/// Hacker's Delight §7-3, restated for LSB-0 bit order). Bit `j` of output
/// row `i` is bit `i` of input row `j`. Used to turn batches of sample
/// rows into per-candidate membership columns without per-bit scatter.
#[inline]
pub fn transpose64(a: &mut [u64; 64]) {
    // at each scale j, swap the high-j-bit half of row k with the
    // low-j-bit half of row k+j (the off-diagonal quadrants of each
    // 2j×2j block); m masks the low half at the current scale
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Scalar reference implementations of every kernel, kept as differential
/// oracles for the unrolled versions. Compiled for tests only.
#[cfg(test)]
pub mod scalar {
    pub fn count(a: &[u64]) -> usize {
        a.iter().map(|w| w.count_ones() as usize).sum()
    }
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum()
    }
    pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (x & !y).count_ones() as usize).sum()
    }
    pub fn xor_count(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
    }
    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }
    pub fn is_subset(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x & !y == 0)
    }
    pub fn is_zero(a: &[u64]) -> bool {
        a.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Word lengths that exercise every tail shape: empty, sub-block,
    /// exact blocks, and blocks-plus-tail.
    fn word_vecs() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
        (0usize..=13).prop_flat_map(|n| {
            (
                prop::collection::vec(any::<u64>(), n..n + 1),
                prop::collection::vec(any::<u64>(), n..n + 1),
            )
        })
    }

    proptest! {
        #[test]
        fn wide_kernels_match_scalar_oracles(ab in word_vecs()) {
            let (a, b) = ab;
            prop_assert_eq!(count(&a), scalar::count(&a));
            prop_assert_eq!(and_count(&a, &b), scalar::and_count(&a, &b));
            prop_assert_eq!(and_not_count(&a, &b), scalar::and_not_count(&a, &b));
            prop_assert_eq!(xor_count(&a, &b), scalar::xor_count(&a, &b));
            prop_assert_eq!(intersects(&a, &b), scalar::intersects(&a, &b));
            prop_assert_eq!(is_subset(&a, &b), scalar::is_subset(&a, &b));
            prop_assert_eq!(is_zero(&a), scalar::is_zero(&a));
        }

        #[test]
        fn wide_mutators_match_word_loops(ab in word_vecs()) {
            let (a, b) = ab;
            let mut wide = a.clone();
            copy(&mut wide, &b);
            prop_assert_eq!(&wide, &b);

            let mut wide = a.clone();
            or_inplace(&mut wide, &b);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
            prop_assert_eq!(&wide, &expect);

            let mut wide = a.clone();
            and_not_inplace(&mut wide, &b);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();
            prop_assert_eq!(&wide, &expect);
        }

        #[test]
        fn transpose64_matches_bit_loop(rows in prop::collection::vec(any::<u64>(), 64..65)) {
            let mut block = [0u64; 64];
            block.copy_from_slice(&rows);
            transpose64(&mut block);
            for i in 0..64 {
                for j in 0..64 {
                    prop_assert_eq!(block[i] >> j & 1, rows[j] >> i & 1, "bit ({},{})", i, j);
                }
            }
            // a second transpose is the identity
            transpose64(&mut block);
            prop_assert_eq!(&block[..], &rows[..]);
        }

        #[test]
        fn not_into_masks_the_tail(ab in word_vecs(), bits_off in 0usize..64) {
            let (a, _) = ab;
            let total = a.len() * 64;
            let len_bits = total.saturating_sub(bits_off);
            let mut dst = vec![0u64; a.len()];
            not_into(&mut dst, &a, len_bits);
            for i in 0..total {
                let got = dst[i / 64] >> (i % 64) & 1;
                let src = a[i / 64] >> (i % 64) & 1;
                if i < len_bits {
                    prop_assert_eq!(got, src ^ 1, "bit {} below len must flip", i);
                } else {
                    prop_assert_eq!(got, 0, "bit {} past len must be zero", i);
                }
            }
        }
    }

    #[test]
    fn block_boundaries_are_exact() {
        // 4-word blocks: lengths 3, 4, 5 straddle the unroll boundary.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12] {
            let a: Vec<u64> =
                (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| !i).collect();
            assert_eq!(and_count(&a, &b), scalar::and_count(&a, &b), "n={n}");
            assert_eq!(count(&a), scalar::count(&a), "n={n}");
        }
    }
}
