//! Transitive-closure consistency via union-find.
//!
//! A strictly stronger alternative to the triangle-based cycle check: the
//! correspondences of an instance are interpreted as "these attributes
//! denote the same concept". Taking the transitive closure, a consistent
//! instance must never place two *different* attributes of the same schema
//! in one equivalence class — that would simultaneously generalize the
//! one-to-one constraint (two partners in one schema collapse into one
//! class) and the cycle constraint over cycles of *any* length, not just
//! triangles.
//!
//! The checker is used for cross-validation of the [`ConflictIndex`]
//! (property tests assert that triangle+one-to-one consistency coincides
//! with closure consistency on three-schema networks) and as an optional
//! strict post-check for instantiated matchings.
//!
//! [`ConflictIndex`]: crate::index::ConflictIndex

use crate::bitset::BitSet;
use smn_schema::{AttributeId, CandidateSet, Catalog, SchemaId};
use std::collections::HashMap;

/// Union-find over attribute ids with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Checks closure consistency of instances over one candidate set.
#[derive(Debug, Clone)]
pub struct ClosureChecker {
    /// `schema_of[attr]` for every attribute id.
    schema_of: Vec<SchemaId>,
    /// endpoint pairs per candidate id.
    endpoints: Vec<[AttributeId; 2]>,
}

impl ClosureChecker {
    /// Builds a checker for `candidates` over `catalog`.
    pub fn new(catalog: &Catalog, candidates: &CandidateSet) -> Self {
        Self {
            schema_of: catalog.attributes().iter().map(|a| a.schema).collect(),
            endpoints: candidates.candidates().iter().map(|c| c.corr.endpoints()).collect(),
        }
    }

    /// Whether the instance is closure-consistent: the transitive closure of
    /// its correspondences places at most one attribute of each schema in
    /// every equivalence class.
    pub fn is_consistent(&self, instance: &BitSet) -> bool {
        let mut uf = UnionFind::new(self.schema_of.len());
        for c in instance.iter() {
            let [a, b] = self.endpoints[c.index()];
            uf.union(a.0, b.0);
        }
        // count (root, schema) collisions among attributes that participate
        let mut seen: HashMap<(u32, SchemaId), AttributeId> = HashMap::new();
        for c in instance.iter() {
            for attr in self.endpoints[c.index()] {
                let root = uf.find(attr.0);
                let schema = self.schema_of[attr.index()];
                if let Some(&prev) = seen.get(&(root, schema)) {
                    if prev != attr {
                        return false;
                    }
                } else {
                    seen.insert((root, schema), attr);
                }
            }
        }
        true
    }

    /// Size of the largest equivalence class induced by the instance
    /// (diagnostic; a class spanning `k` schemas witnesses `k`-way agreement).
    pub fn largest_class(&self, instance: &BitSet) -> usize {
        let mut uf = UnionFind::new(self.schema_of.len());
        for c in instance.iter() {
            let [a, b] = self.endpoints[c.index()];
            uf.union(a.0, b.0);
        }
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut touched: Vec<u32> = Vec::new();
        for c in instance.iter() {
            for attr in self.endpoints[c.index()] {
                touched.push(attr.0);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for attr in touched {
            *counts.entry(uf.find(attr)).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::{CandidateId, CatalogBuilder, InteractionGraph};

    /// Four schemas in a 4-cycle; a chain of correspondences that returns to
    /// a *different* attribute of schema A is caught by closure but not by
    /// triangle-based checking (no triangle exists in the graph).
    #[test]
    fn closure_catches_long_cycles() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a", "a2"]).unwrap(); // 0, 1
        b.add_schema_with_attributes("B", ["b"]).unwrap(); // 2
        b.add_schema_with_attributes("C", ["c"]).unwrap(); // 3
        b.add_schema_with_attributes("D", ["d"]).unwrap(); // 4
        let cat = b.build();
        let g = InteractionGraph::cycle(4);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(2), 0.5).unwrap(); // a–b
        cs.add(&cat, Some(&g), a(2), a(3), 0.5).unwrap(); // b–c
        cs.add(&cat, Some(&g), a(3), a(4), 0.5).unwrap(); // c–d
        cs.add(&cat, Some(&g), a(4), a(1), 0.5).unwrap(); // d–a2  (!)
        let checker = ClosureChecker::new(&cat, &cs);
        let full = BitSet::full(cs.len());
        assert!(!checker.is_consistent(&full), "a and a2 end up in one class");
        // dropping the offending link restores consistency
        let mut ok = full.clone();
        ok.remove(CandidateId(3));
        assert!(checker.is_consistent(&ok));
        assert_eq!(checker.largest_class(&ok), 4);
    }

    #[test]
    fn closure_subsumes_one_to_one() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a"]).unwrap(); // 0
        b.add_schema_with_attributes("B", ["b1", "b2"]).unwrap(); // 1, 2
        let cat = b.build();
        let g = InteractionGraph::complete(2);
        let mut cs = CandidateSet::new(&cat);
        cs.add(&cat, Some(&g), AttributeId(0), AttributeId(1), 0.5).unwrap();
        cs.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        let checker = ClosureChecker::new(&cat, &cs);
        assert!(!checker.is_consistent(&BitSet::full(2)));
        assert!(checker.is_consistent(&BitSet::from_ids(2, [CandidateId(0)])));
    }

    #[test]
    fn empty_instance_is_consistent() {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a"]).unwrap();
        b.add_schema_with_attributes("B", ["b"]).unwrap();
        let cat = b.build();
        let cs = CandidateSet::new(&cat);
        let checker = ClosureChecker::new(&cat, &cs);
        assert!(checker.is_consistent(&BitSet::new(0)));
        assert_eq!(checker.largest_class(&BitSet::new(0)), 0);
    }
}
