//! A dense fixed-capacity bitset over candidate ids.
//!
//! Matching instances `I ⊆ C` are represented as bitsets so that the
//! sampler's clone-heavy random walk, the co-occurrence counting behind
//! information gain, and consistency checks are all word-parallel. The type
//! is deliberately minimal — exactly the operations the stack needs — and
//! lives here so every crate above `smn-constraints` shares one
//! representation.
//!
//! All counting/testing/copying loops delegate to the manually unrolled
//! wide kernels in [`crate::kernels`]; the masked iterators skip all-zero
//! 256-bit blocks in a single comparison. Bits beyond `len` are kept zero
//! as an invariant (`trim`), which is what lets the kernels popcount raw
//! words without tail masking.

use crate::kernels;
use serde::{Deserialize, Serialize};
use smn_schema::CandidateId;

const WORD_BITS: usize = 64;

/// Iterates the set bits of the virtual word sequence
/// `word_at(0) .. word_at(n_words - 1)` in ascending order, skipping
/// all-zero [`kernels::LANES`]-word blocks with one OR + compare — the
/// wide form of masked iteration shared by `iter`, `iter_and`, `iter_xor`
/// and `iter_unset`.
fn iter_words(n_words: usize, word_at: impl Fn(usize) -> u64) -> impl Iterator<Item = CandidateId> {
    let mut wi = 0usize;
    let mut cur = 0u64;
    let mut base = 0usize;
    std::iter::from_fn(move || loop {
        if cur != 0 {
            let b = cur.trailing_zeros() as usize;
            cur &= cur - 1;
            return Some(CandidateId::from_index(base + b));
        }
        if wi >= n_words {
            return None;
        }
        // probe only at block boundaries: dense sets then pay one 4-word
        // OR per block instead of one per word
        if wi % kernels::LANES == 0
            && wi + kernels::LANES <= n_words
            && word_at(wi) | word_at(wi + 1) | word_at(wi + 2) | word_at(wi + 3) == 0
        {
            wi += kernels::LANES;
            continue;
        }
        cur = word_at(wi);
        base = wi * WORD_BITS;
        wi += 1;
    })
}

/// Fixed-capacity bitset indexed by [`CandidateId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for `len` candidates.
    pub fn new(len: usize) -> Self {
        Self { len, words: vec![0; len.div_ceil(WORD_BITS)] }
    }

    /// Creates a set with every bit in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Builds a set from an iterator of ids.
    pub fn from_ids(len: usize, ids: impl IntoIterator<Item = CandidateId>) -> Self {
        let mut s = Self::new(len);
        for id in ids {
            s.insert(id);
        }
        s
    }

    #[inline]
    fn trim(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Capacity (the universe size `|C|`, not the number of set bits).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts an id. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: CandidateId) -> bool {
        let i = id.index();
        debug_assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes an id. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, id: CandidateId) -> bool {
        let i = id.index();
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: CandidateId) -> bool {
        let i = id.index();
        if i >= self.len {
            return false;
        }
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Number of set bits (`|I|`).
    #[inline]
    pub fn count(&self) -> usize {
        kernels::count(&self.words)
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        kernels::is_zero(&self.words)
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Size of the intersection with `other`.
    ///
    /// Used for the symmetric-difference distance `Δ` of Algorithm 3 and for
    /// co-occurrence counting in information gain.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        kernels::and_count(&self.words, &other.words)
    }

    /// Whether the two sets share at least one element — an early-exit
    /// [`intersection_count`](BitSet::intersection_count)` > 0`, the
    /// word-parallel kernel behind the conflict-mask `can_add`.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        kernels::intersects(&self.words, &other.words)
    }

    /// `|self \ other|` without materializing the difference — one
    /// AND-NOT + popcount pass.
    #[inline]
    pub fn and_not_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        kernels::and_not_count(&self.words, &other.words)
    }

    /// Copies `other` into `self` without reallocating (capacities must
    /// match) — the scratch-buffer alternative to `clone()` in the
    /// sampler's per-step walk state.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        kernels::copy(&mut self.words, &other.words);
    }

    /// Iterates over the ids in `self ∩ mask` without materializing the
    /// intersection (masked word iteration).
    pub fn iter_and<'a>(&'a self, mask: &'a BitSet) -> impl Iterator<Item = CandidateId> + 'a {
        debug_assert_eq!(self.len, mask.len);
        iter_words(self.words.len(), move |wi| self.words[wi] & mask.words[wi])
    }

    /// Iterates over the ids in `self Δ other` (symmetric difference) —
    /// the changed candidates between two instance snapshots.
    pub fn iter_xor<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = CandidateId> + 'a {
        debug_assert_eq!(self.len, other.len);
        iter_words(self.words.len(), move |wi| self.words[wi] ^ other.words[wi])
    }

    /// Iterates over the ids in `0..capacity` that are *not* set — the
    /// addable frontier when `self` is the union of instance, forbidden
    /// and blocked candidates.
    pub fn iter_unset(&self) -> impl Iterator<Item = CandidateId> + '_ {
        let len = self.len;
        iter_words(self.words.len(), move |wi| {
            let mut w = !self.words[wi];
            if (wi + 1) * WORD_BITS > len {
                w &= u64::MAX >> ((wi + 1) * WORD_BITS - len);
            }
            w
        })
    }

    /// Size of the symmetric difference `|A \ B| + |B \ A|` (the paper's
    /// repair-distance metric `Δ(A, B)` between instances).
    #[inline]
    pub fn symmetric_difference_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        kernels::xor_count(&self.words, &other.words)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        kernels::is_subset(&self.words, &other.words)
    }

    /// Whether the two sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        !self.intersects(other)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        kernels::or_inplace(&mut self.words, &other.words);
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        kernels::and_not_inplace(&mut self.words, &other.words);
    }

    /// Iterates over set bits in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = CandidateId> + '_ {
        iter_words(self.words.len(), move |wi| self.words[wi])
    }

    /// Collects the set bits into a vector.
    pub fn to_vec(&self) -> Vec<CandidateId> {
        self.iter().collect()
    }

    /// Raw word access for word-parallel algorithms (e.g. co-occurrence
    /// counting in `smn-core`). Bits beyond `capacity()` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Grows the capacity to `new_len` (no-op when already that large);
    /// new bits start unset. The online-arrival counterpart of
    /// [`collapse`](BitSet::collapse).
    pub fn grow(&mut self, new_len: usize) {
        if new_len > self.len {
            self.len = new_len;
            self.words.resize(new_len.div_ceil(WORD_BITS), 0);
        }
    }

    /// Removes the *position* `id` from the universe: bit `id` is dropped
    /// and every higher bit shifts down by one, mirroring the dense-id
    /// compaction of candidate retirement. Returns whether the dropped bit
    /// was set.
    pub fn collapse(&mut self, id: CandidateId) -> bool {
        let i = id.index();
        assert!(i < self.len, "collapse of bit {i} out of capacity {}", self.len);
        let was = self.contains(id);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let low = self.words[w] & ((1u64 << b) - 1);
        let high = if b == WORD_BITS - 1 { 0 } else { (self.words[w] >> (b + 1)) << b };
        self.words[w] = low | high;
        for j in (w + 1)..self.words.len() {
            self.words[j - 1] |= (self.words[j] & 1) << (WORD_BITS - 1);
            self.words[j] >>= 1;
        }
        self.len -= 1;
        self.words.truncate(self.len.div_ceil(WORD_BITS));
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<CandidateId> {
        v.iter().map(|&i| CandidateId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(CandidateId(0)));
        assert!(s.insert(CandidateId(64)));
        assert!(s.insert(CandidateId(129)));
        assert!(!s.insert(CandidateId(129)), "second insert is a no-op");
        assert!(s.contains(CandidateId(64)));
        assert!(!s.contains(CandidateId(63)));
        assert_eq!(s.count(), 3);
        assert!(s.remove(CandidateId(64)));
        assert!(!s.remove(CandidateId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(CandidateId(1000)));
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert_eq!(s.iter().count(), 70);
        let s = BitSet::full(64);
        assert_eq!(s.count(), 64);
        let s = BitSet::full(0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = BitSet::from_ids(200, ids(&[5, 199, 64, 63, 0]));
        assert_eq!(s.to_vec(), ids(&[0, 5, 63, 64, 199]));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_ids(100, ids(&[1, 2, 3, 70]));
        let b = BitSet::from_ids(100, ids(&[2, 3, 4]));
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.symmetric_difference_count(&b), 3);
        assert!(!a.is_subset(&b));
        assert!(BitSet::from_ids(100, ids(&[2, 3])).is_subset(&b));
        assert!(BitSet::new(100).is_subset(&b));
        assert!(a.is_disjoint(&BitSet::from_ids(100, ids(&[9]))));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), ids(&[1, 2, 3, 4, 70]));

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), ids(&[1, 70]));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::from_ids(100, ids(&[1, 2]));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn symmetric_difference_is_metric_like() {
        let a = BitSet::from_ids(50, ids(&[1, 2]));
        let b = BitSet::from_ids(50, ids(&[3, 4]));
        assert_eq!(a.symmetric_difference_count(&a), 0);
        assert_eq!(a.symmetric_difference_count(&b), 4);
        assert_eq!(b.symmetric_difference_count(&a), 4);
    }

    #[test]
    fn intersects_and_and_not_count() {
        let a = BitSet::from_ids(100, ids(&[1, 2, 3, 70]));
        let b = BitSet::from_ids(100, ids(&[2, 3, 4]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&BitSet::from_ids(100, ids(&[4, 99]))));
        assert_eq!(a.and_not_count(&b), 2); // {1, 70}
        assert_eq!(b.and_not_count(&a), 1); // {4}
        assert_eq!(a.and_not_count(&a), 0);
    }

    #[test]
    fn copy_from_reuses_capacity() {
        let a = BitSet::from_ids(100, ids(&[1, 2, 70]));
        let mut b = BitSet::from_ids(100, ids(&[5]));
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn iter_and_is_masked_iteration() {
        let a = BitSet::from_ids(200, ids(&[0, 5, 64, 70, 199]));
        let m = BitSet::from_ids(200, ids(&[5, 64, 128, 199]));
        assert_eq!(a.iter_and(&m).collect::<Vec<_>>(), ids(&[5, 64, 199]));
    }

    #[test]
    fn iter_xor_yields_symmetric_difference() {
        let a = BitSet::from_ids(200, ids(&[0, 5, 64, 199]));
        let b = BitSet::from_ids(200, ids(&[5, 64, 70]));
        assert_eq!(a.iter_xor(&b).collect::<Vec<_>>(), ids(&[0, 70, 199]));
        assert_eq!(a.iter_xor(&a).count(), 0);
    }

    #[test]
    fn iter_unset_respects_capacity() {
        let s = BitSet::from_ids(67, ids(&[0, 64, 66]));
        let unset: Vec<_> = s.iter_unset().collect();
        assert_eq!(unset.len(), 64);
        assert!(!unset.contains(&CandidateId(0)));
        assert!(!unset.contains(&CandidateId(66)));
        assert!(unset.contains(&CandidateId(65)));
        assert!(unset.iter().all(|c| c.index() < 67));
        // empty set: every id below capacity is unset
        assert_eq!(BitSet::new(70).iter_unset().count(), 70);
        // full set: nothing is unset
        assert_eq!(BitSet::full(70).iter_unset().count(), 0);
    }

    #[test]
    fn grow_extends_capacity_with_unset_bits() {
        let mut s = BitSet::from_ids(63, ids(&[0, 62]));
        s.grow(130);
        assert_eq!(s.capacity(), 130);
        assert_eq!(s.to_vec(), ids(&[0, 62]));
        s.insert(CandidateId(129));
        assert!(s.contains(CandidateId(129)));
        // shrinking via grow is a no-op
        s.grow(10);
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn collapse_shifts_higher_bits_down() {
        // ids straddling word boundaries, collapsing from the middle
        let mut s = BitSet::from_ids(200, ids(&[0, 5, 63, 64, 70, 128, 199]));
        assert!(!s.collapse(CandidateId(4)));
        assert_eq!(s.capacity(), 199);
        assert_eq!(s.to_vec(), ids(&[0, 4, 62, 63, 69, 127, 198]));
        assert!(s.collapse(CandidateId(62)));
        assert_eq!(s.to_vec(), ids(&[0, 4, 62, 68, 126, 197]));
        // collapse of the last position
        assert!(s.collapse(CandidateId(197)));
        assert_eq!(s.to_vec(), ids(&[0, 4, 62, 68, 126]));
    }

    #[test]
    fn collapse_matches_rebuild_reference() {
        // differential against an id-remapped rebuild, across word sizes
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 63, 64, 65, 130] {
            let members: Vec<u32> = (0..n as u32).filter(|_| next() % 3 == 0).collect();
            for victim in [0u32, (n as u32) / 2, n as u32 - 1] {
                let mut s = BitSet::from_ids(n, ids(&members));
                let was = s.collapse(CandidateId(victim));
                assert_eq!(was, members.contains(&victim));
                let expect: Vec<u32> = members
                    .iter()
                    .filter(|&&m| m != victim)
                    .map(|&m| if m > victim { m - 1 } else { m })
                    .collect();
                assert_eq!(s.to_vec(), ids(&expect));
                assert_eq!(s.capacity(), n - 1);
            }
        }
    }

    #[test]
    fn words_expose_raw_bits() {
        let s = BitSet::from_ids(65, ids(&[0, 64]));
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[0], 1);
        assert_eq!(s.words()[1], 1);
    }
}
