//! Property-based tests for the constraint engine.

use proptest::prelude::*;
use smn_constraints::{BitSet, ClosureChecker, ConflictIndex, ConstraintConfig};
use smn_schema::{
    AttributeId, CandidateId, CandidateSet, Catalog, CatalogBuilder, InteractionGraph,
};

/// Builds a 3-schema catalog with `sizes` attributes per schema and a random
/// candidate subset of all cross-schema pairs, selected by `mask` bits.
fn three_schema_network(sizes: [usize; 3], mask: u64) -> (Catalog, InteractionGraph, CandidateSet) {
    let mut b = CatalogBuilder::new();
    for (i, &n) in sizes.iter().enumerate() {
        let attrs: Vec<String> = (0..n).map(|j| format!("a{i}_{j}")).collect();
        b.add_schema_with_attributes(format!("s{i}"), attrs).unwrap();
    }
    let cat = b.build();
    let g = InteractionGraph::complete(3);
    let mut cs = CandidateSet::new(&cat);
    let mut bit = 0u32;
    for x in 0..cat.attribute_count() {
        for y in (x + 1)..cat.attribute_count() {
            let (ax, ay) = (AttributeId::from_index(x), AttributeId::from_index(y));
            if cat.schema_of(ax) == cat.schema_of(ay) {
                continue;
            }
            if mask & (1 << (bit % 64)) != 0 {
                cs.add(&cat, Some(&g), ax, ay, 0.5).unwrap();
            }
            bit += 1;
        }
    }
    (cat, g, cs)
}

fn subset_from_mask(n: usize, mask: u64) -> BitSet {
    BitSet::from_ids(n, (0..n).filter(|i| mask & (1 << (i % 64)) != 0).map(CandidateId::from_index))
}

proptest! {
    /// On three-schema complete networks, triangle-based cycle checking plus
    /// one-to-one is exactly closure consistency (see DESIGN.md: longer
    /// violating walks always contain a 1-1 violation or a triangle).
    #[test]
    fn triangle_plus_one_to_one_equals_closure_on_three_schemas(
        cand_mask in any::<u64>(),
        inst_mask in any::<u64>(),
        sizes in prop::array::uniform3(1usize..4),
    ) {
        let (cat, g, cs) = three_schema_network(sizes, cand_mask);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let closure = ClosureChecker::new(&cat, &cs);
        let inst = subset_from_mask(cs.len(), inst_mask);
        prop_assert_eq!(idx.is_consistent(&inst), closure.is_consistent(&inst));
    }

    /// `can_add` agrees with `violations_introduced == 0`, and adding an
    /// allowed candidate preserves consistency.
    #[test]
    fn can_add_is_violations_introduced_zero(
        cand_mask in any::<u64>(),
        inst_mask in any::<u64>(),
        sizes in prop::array::uniform3(1usize..4),
    ) {
        let (cat, g, cs) = three_schema_network(sizes, cand_mask);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        // build a consistent instance greedily from the mask
        let mut inst = BitSet::new(cs.len());
        for i in 0..cs.len() {
            let c = CandidateId::from_index(i);
            if inst_mask & (1 << (i % 64)) != 0 && idx.can_add(&inst, c) {
                inst.insert(c);
            }
        }
        prop_assert!(idx.is_consistent(&inst));
        for i in 0..cs.len() {
            let c = CandidateId::from_index(i);
            if inst.contains(c) { continue; }
            let can = idx.can_add(&inst, c);
            prop_assert_eq!(can, idx.violations_introduced(&inst, c) == 0);
            if can {
                let mut bigger = inst.clone();
                bigger.insert(c);
                prop_assert!(idx.is_consistent(&bigger));
            }
        }
    }

    /// Violation counts computed by enumeration match the per-kind totals,
    /// and each enumerated violation really is inconsistent on its own.
    #[test]
    fn enumerated_violations_are_minimal_witnesses(
        cand_mask in any::<u64>(),
        sizes in prop::array::uniform3(1usize..4),
    ) {
        let (cat, g, cs) = three_schema_network(sizes, cand_mask);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let full = BitSet::full(cs.len());
        let viols = idx.violations_in(&full);
        let counts = idx.count_violations(&full);
        prop_assert_eq!(viols.len(), counts.total());
        for v in &viols {
            let witness = BitSet::from_ids(cs.len(), v.members.iter().copied());
            prop_assert!(!idx.is_consistent(&witness), "violation members alone must violate");
            // removing any one member restores consistency (minimality)
            for &m in &v.members {
                let mut sub = witness.clone();
                sub.remove(m);
                prop_assert!(idx.is_consistent(&sub));
            }
        }
    }

    /// Greedy completion always yields maximal consistent instances.
    #[test]
    fn greedy_completion_is_maximal(
        cand_mask in any::<u64>(),
        sizes in prop::array::uniform3(1usize..4),
    ) {
        let (cat, g, cs) = three_schema_network(sizes, cand_mask);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let mut inst = BitSet::new(cs.len());
        for i in 0..cs.len() {
            let c = CandidateId::from_index(i);
            if idx.can_add(&inst, c) {
                inst.insert(c);
            }
        }
        prop_assert!(idx.is_consistent(&inst));
        prop_assert!(idx.is_maximal(&inst, &BitSet::new(cs.len())));
    }

    /// The conflict-component partition is sound and the sharded
    /// sub-indices agree with the global index: `can_add`, consistency and
    /// maximality of a global set equal the conjunction/evaluation of the
    /// localized checks on every shard.
    #[test]
    fn sharded_indices_agree_with_global(
        cand_mask in any::<u64>(),
        inst_mask in any::<u64>(),
        forb_mask in any::<u64>(),
        sizes in prop::array::uniform3(1usize..4),
    ) {
        use smn_constraints::Components;
        let (cat, g, cs) = three_schema_network(sizes, cand_mask);
        let idx = ConflictIndex::build(&cat, &g, &cs, ConstraintConfig::default());
        let comps = Components::of_index(&idx);
        let shards = idx.shard(&comps);
        prop_assert_eq!(shards.len(), comps.count());
        // consistency of an arbitrary set factorizes over shards
        let raw = subset_from_mask(cs.len(), inst_mask);
        let all_consistent = (0..comps.count())
            .all(|k| shards[k].is_consistent(&comps.localize(k, &raw)));
        prop_assert_eq!(idx.is_consistent(&raw), all_consistent);
        // greedy-complete the mask so can_add/maximality are well-defined
        let mut inst = BitSet::new(cs.len());
        for i in 0..cs.len() {
            let c = CandidateId::from_index(i);
            if inst_mask & (1 << (i % 64)) != 0 && idx.can_add(&inst, c) {
                inst.insert(c);
            }
        }
        for i in 0..cs.len() {
            let c = CandidateId::from_index(i);
            if inst.contains(c) { continue; }
            let k = comps.component_of(c);
            let local_set = comps.localize(k, &inst);
            let lc = CandidateId::from_index(comps.local_index(c));
            prop_assert_eq!(idx.can_add(&inst, c), shards[k].can_add(&local_set, lc));
            prop_assert_eq!(
                idx.violations_introduced(&inst, c),
                shards[k].violations_introduced(&local_set, lc)
            );
        }
        // maximality relative to a forbidden set factorizes over shards
        let forbidden = subset_from_mask(cs.len(), forb_mask);
        let all_maximal = (0..comps.count()).all(|k| {
            shards[k].is_maximal(&comps.localize(k, &inst), &comps.localize(k, &forbidden))
        });
        prop_assert_eq!(idx.is_maximal(&inst, &forbidden), all_maximal);
    }

    /// BitSet algebra: symmetric difference is |A|+|B|−2|A∩B|; subset and
    /// union/difference behave like the std set operations.
    #[test]
    fn bitset_algebra(a_mask in any::<u64>(), b_mask in any::<u64>(), n in 1usize..100) {
        let a = subset_from_mask(n, a_mask);
        let b = subset_from_mask(n, b_mask);
        let inter = a.intersection_count(&b);
        prop_assert_eq!(
            a.symmetric_difference_count(&b),
            a.count() + b.count() - 2 * inter
        );
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.count(), a.count() + b.count() - inter);
        prop_assert!(a.is_subset(&u) && b.is_subset(&u));
        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(d.count(), a.count() - inter);
        prop_assert!(d.is_disjoint(&b));
    }
}

/// Capacities straddling every kernel boundary: word edges (63/64/65),
/// wide-lane edges (255/256/257 bits = 4-word blocks) and their
/// neighbourhoods, so the tail paths of the unrolled kernels and the
/// block-skipping iterators are all exercised.
fn edge_lengths() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=5,
        61usize..=67,
        125usize..=131,
        189usize..=195,
        253usize..=259,
        317usize..=323,
        509usize..=515,
    ]
}

/// A random subset of `0..n` drawn bit by bit (unlike `subset_from_mask`,
/// which aliases ids mod 64 and so cannot distinguish tail-word bugs).
fn dense_subset(n: usize) -> impl Strategy<Value = BitSet> {
    prop::collection::vec(any::<bool>(), n..n + 1).prop_map(move |bits| {
        BitSet::from_ids(
            n,
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| CandidateId::from_index(i)),
        )
    })
}

proptest! {
    /// No kernel ever counts or yields a bit at or past `len`, across
    /// capacities that are not multiples of 64 or of the 256-bit lane.
    #[test]
    fn tail_bits_never_leak(sets in edge_lengths().prop_flat_map(|n| (dense_subset(n), dense_subset(n)))) {
        let (a, b) = sets;
        let n = a.capacity();
        let members: Vec<usize> = a.iter().map(|c| c.index()).collect();
        let others: Vec<usize> = b.iter().map(|c| c.index()).collect();
        prop_assert!(members.iter().all(|&i| i < n));
        prop_assert_eq!(a.count(), members.len());
        prop_assert_eq!(BitSet::full(n).count(), n);

        // and_not_count against a per-bit reference
        let expect = members.iter().filter(|i| !others.contains(i)).count();
        prop_assert_eq!(a.and_not_count(&b), expect);
        prop_assert_eq!(a.intersection_count(&b), members.iter().filter(|i| others.contains(i)).count());
        prop_assert_eq!(a.intersects(&b), members.iter().any(|i| others.contains(i)));

        // iter_unset is exactly the complement within 0..n
        let unset: Vec<usize> = a.iter_unset().map(|c| c.index()).collect();
        prop_assert!(unset.iter().all(|&i| i < n));
        prop_assert_eq!(unset.len(), n - members.len());
        prop_assert!(unset.iter().all(|i| !members.contains(i)));
    }

    /// `grow` keeps membership, starts new bits unset, and the grown tail
    /// participates correctly in counting kernels.
    #[test]
    fn grow_preserves_members_and_clears_new_tail(
        a in edge_lengths().prop_flat_map(dense_subset),
        extra in 1usize..70,
    ) {
        let n = a.capacity();
        let before: Vec<_> = a.to_vec();
        let mut g = a.clone();
        g.grow(n + extra);
        prop_assert_eq!(g.capacity(), n + extra);
        prop_assert_eq!(g.to_vec(), before.clone());
        prop_assert_eq!(g.count(), before.len());
        prop_assert_eq!(g.iter_unset().count(), n + extra - before.len());
        let top = CandidateId::from_index(n + extra - 1);
        prop_assert!(!g.contains(top));
        g.insert(top);
        prop_assert_eq!(g.count(), before.len() + 1);
    }

    /// `collapse` at any position equals the id-remapped rebuild, at
    /// capacities that straddle word and lane boundaries.
    #[test]
    fn collapse_matches_rebuild_at_edge_lengths(
        case in edge_lengths().prop_flat_map(|n| (dense_subset(n), 0..n)),
    ) {
        let (a, victim) = case;
        let n = a.capacity();
        let members: Vec<usize> = a.iter().map(|c| c.index()).collect();
        let mut s = a.clone();
        let was = s.collapse(CandidateId::from_index(victim));
        prop_assert_eq!(was, members.contains(&victim));
        prop_assert_eq!(s.capacity(), n - 1);
        let expect: Vec<CandidateId> = members
            .iter()
            .filter(|&&m| m != victim)
            .map(|&m| CandidateId::from_index(if m > victim { m - 1 } else { m }))
            .collect();
        prop_assert_eq!(s.to_vec(), expect);
        // the shrunk set still counts cleanly (no stale tail bits)
        prop_assert_eq!(s.count() + s.iter_unset().count(), n - 1);
    }
}
