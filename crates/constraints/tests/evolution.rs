//! Differential certification of the evolving conflict structures: after
//! any random interleaving of candidate arrivals and retirements, the
//! incrementally patched [`ConflictIndex`] and [`Components`] must equal —
//! structurally, with `==` — a from-scratch rebuild over the surviving
//! candidate set. Posting lists, pair masks, the (canonicalized) triple
//! table and the component partition are all covered, as is the
//! [`ComponentEvolution`] contract the sharded sample stores rely on: a
//! remapped component carries exactly its old members (shifted on
//! retirement), and rebuilt components are exactly the rest.

use proptest::prelude::*;
use proptest::TestCaseError;
use smn_constraints::{Components, ConflictIndex, ConstraintConfig};
use smn_schema::{
    AttributeId, CandidateId, CandidateSet, Catalog, CatalogBuilder, InteractionGraph,
};

/// A 3-schema catalog with `sizes` attributes per schema on the complete
/// interaction graph (triangles present, so both constraint kinds fire).
fn three_schema_catalog(sizes: [usize; 3]) -> (Catalog, InteractionGraph) {
    let mut b = CatalogBuilder::new();
    for (i, &n) in sizes.iter().enumerate() {
        let attrs: Vec<String> = (0..n).map(|j| format!("a{i}_{j}")).collect();
        b.add_schema_with_attributes(format!("s{i}"), attrs).unwrap();
    }
    (b.build(), InteractionGraph::complete(3))
}

/// Every cross-schema attribute pair of the catalog — the arrival pool.
fn pair_pool(cat: &Catalog) -> Vec<(AttributeId, AttributeId)> {
    let mut pool = Vec::new();
    for x in 0..cat.attribute_count() {
        for y in (x + 1)..cat.attribute_count() {
            let (ax, ay) = (AttributeId::from_index(x), AttributeId::from_index(y));
            if cat.schema_of(ax) != cat.schema_of(ay) {
                pool.push((ax, ay));
            }
        }
    }
    pool
}

/// The evolving triple (candidate set, index, partition), advanced one
/// event at a time through the incremental APIs.
struct Evolving<'a> {
    cat: &'a Catalog,
    graph: &'a InteractionGraph,
    pool: &'a [(AttributeId, AttributeId)],
    cs: CandidateSet,
    idx: ConflictIndex,
    comps: Components,
}

impl<'a> Evolving<'a> {
    fn new(
        cat: &'a Catalog,
        graph: &'a InteractionGraph,
        pool: &'a [(AttributeId, AttributeId)],
        config: ConstraintConfig,
    ) -> Self {
        let cs = CandidateSet::new(cat);
        let idx = ConflictIndex::build(cat, graph, &cs, config);
        let comps = Components::of_index(&idx);
        Self { cat, graph, pool, cs, idx, comps }
    }

    /// Decodes and applies one event: even ops arrive the `pick`-th free
    /// pool pair, odd ops retire the `pick`-th live candidate. No-ops when
    /// the respective side is empty. Also checks the
    /// [`ComponentEvolution`] member contract against a pre-op snapshot.
    fn step(&mut self, op: u32) -> Result<(), TestCaseError> {
        let retire = op & 1 == 1;
        let pick = (op >> 1) as usize;
        let old_members: Vec<Vec<CandidateId>> =
            (0..self.comps.count()).map(|k| self.comps.members(k).to_vec()).collect();
        if retire {
            if self.cs.is_empty() {
                return Ok(());
            }
            let c = CandidateId::from_index(pick % self.cs.len());
            self.cs.remove(self.cat, c).unwrap();
            self.idx.retire_candidate(c);
            let evo = self.comps.retire_candidate(&self.idx, c);
            let shift = |x: CandidateId| if x > c { CandidateId(x.0 - 1) } else { x };
            for (old_k, members) in old_members.iter().enumerate() {
                if let Some(new_k) = evo.remap[old_k] {
                    let shifted: Vec<CandidateId> = members.iter().map(|&m| shift(m)).collect();
                    prop_assert_eq!(
                        self.comps.members(new_k),
                        &shifted[..],
                        "surviving component must carry its (shifted) members"
                    );
                }
            }
        } else {
            let free: Vec<(AttributeId, AttributeId)> =
                self.pool.iter().filter(|(x, y)| self.cs.find(*x, *y).is_none()).copied().collect();
            if free.is_empty() {
                return Ok(());
            }
            let (x, y) = free[pick % free.len()];
            self.cs.add(self.cat, Some(self.graph), x, y, 0.5).unwrap();
            self.idx.add_candidate(self.cat, self.graph, &self.cs);
            let evo = self.comps.add_candidate(&self.idx);
            prop_assert_eq!(evo.rebuilt.len(), 1, "an arrival forms exactly one new component");
            for (old_k, members) in old_members.iter().enumerate() {
                if let Some(new_k) = evo.remap[old_k] {
                    prop_assert_eq!(
                        self.comps.members(new_k),
                        &members[..],
                        "untouched component must carry its members verbatim"
                    );
                }
            }
        }
        Ok(())
    }

    /// Full differential: candidate set, index and partition all equal a
    /// from-scratch rebuild over the current survivors.
    fn assert_equals_rebuild(&self, config: ConstraintConfig) -> Result<(), TestCaseError> {
        let mut rebuilt_cs = CandidateSet::new(self.cat);
        for cand in self.cs.candidates() {
            rebuilt_cs
                .add(self.cat, Some(self.graph), cand.corr.a(), cand.corr.b(), cand.confidence)
                .unwrap();
        }
        prop_assert_eq!(&rebuilt_cs, &self.cs, "candidate set must look freshly built");
        let rebuilt_idx = ConflictIndex::build(self.cat, self.graph, &rebuilt_cs, config);
        prop_assert_eq!(&rebuilt_idx, &self.idx, "incremental index must equal a rebuild");
        let rebuilt_comps = Components::of_index(&self.idx);
        prop_assert_eq!(&rebuilt_comps, &self.comps, "partition must equal a rebuild");
        Ok(())
    }
}

proptest! {
    /// The headline differential: any interleaving of arrivals and
    /// retirements leaves the incremental structures exactly equal to a
    /// from-scratch rebuild — after *every* event, not just at the end.
    #[test]
    fn interleaved_arrivals_and_retirements_match_rebuild(
        sizes in prop::array::uniform3(1usize..4),
        seed_mask in any::<u64>(),
        ops in prop::collection::vec(any::<u32>(), 1..16),
    ) {
        let (cat, graph) = three_schema_catalog(sizes);
        let pool = pair_pool(&cat);
        let config = ConstraintConfig::default();
        let mut state = Evolving::new(&cat, &graph, &pool, config);
        // initial population arrives through the same incremental path
        for i in 0..pool.len() {
            if seed_mask & (1 << (i % 64)) != 0 {
                state.step((i as u32) << 1)?;
            }
        }
        state.assert_equals_rebuild(config)?;
        for &op in &ops {
            state.step(op)?;
            state.assert_equals_rebuild(config)?;
        }
    }

    /// The same differential under the one-to-one-only configuration
    /// (no triple table at all — the pair-mask paths must hold alone).
    #[test]
    fn evolution_matches_rebuild_without_cycle_constraint(
        sizes in prop::array::uniform3(1usize..4),
        ops in prop::collection::vec(any::<u32>(), 1..16),
    ) {
        let (cat, graph) = three_schema_catalog(sizes);
        let pool = pair_pool(&cat);
        let config = ConstraintConfig::one_to_one_only();
        let mut state = Evolving::new(&cat, &graph, &pool, config);
        for &op in &ops {
            state.step(op)?;
        }
        state.assert_equals_rebuild(config)?;
    }
}

/// Deterministic spot check: Fig. 1 grown candidate-by-candidate equals
/// the one-shot build at every prefix, and retiring each candidate from
/// the full network equals the rebuild over the remaining four.
#[test]
fn fig1_grown_and_shrunk_incrementally_matches_batch_builds() {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("EoverI", ["productionDate"]).unwrap();
    b.add_schema_with_attributes("BBC", ["date"]).unwrap();
    b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
    let cat = b.build();
    let g = InteractionGraph::complete(3);
    let a = AttributeId;
    let pairs = [(a(0), a(1)), (a(1), a(2)), (a(0), a(2)), (a(1), a(3)), (a(0), a(3))];
    let config = ConstraintConfig::default();

    let mut cs = CandidateSet::new(&cat);
    let mut idx = ConflictIndex::build(&cat, &g, &cs, config);
    let mut comps = Components::of_index(&idx);
    for &(x, y) in &pairs {
        cs.add(&cat, Some(&g), x, y, 0.5).unwrap();
        idx.add_candidate(&cat, &g, &cs);
        comps.add_candidate(&idx);
        assert_eq!(idx, ConflictIndex::build(&cat, &g, &cs, config));
        assert_eq!(comps, Components::of_index(&idx));
    }
    assert_eq!(idx.potential_pair_count(), 2);
    assert_eq!(idx.potential_triple_count(), 2);
    assert_eq!(comps.count(), 1, "fig1's conflict graph is connected");

    for victim in 0..pairs.len() {
        let (mut cs2, mut idx2, mut comps2) = (cs.clone(), idx.clone(), comps.clone());
        let c = CandidateId::from_index(victim);
        cs2.remove(&cat, c).unwrap();
        idx2.retire_candidate(c);
        comps2.retire_candidate(&idx2, c);
        assert_eq!(idx2, ConflictIndex::build(&cat, &g, &cs2, config), "retire c{victim}");
        assert_eq!(comps2, Components::of_index(&idx2), "retire c{victim}");
    }
}
