//! Typed-error regressions: one test per [`StorageError`] variant proving
//! the decoder reports that variant (and *returns* — never panics) on the
//! corruption shape it names, plus a fuzz property that no byte string
//! whatsoever can panic any decoder.

use proptest::prelude::*;
use smn_core::persist::NetworkEvent;
use smn_core::{ProbabilisticNetwork, ShardingConfig};
use smn_schema::CandidateId;
use smn_storage::format::{decode_snapshot, SNAP_VERSION};
use smn_storage::wal::{decode_prefix, decode_records, WalBuffer};
use smn_storage::{load_with_history, save_with_history, StorageError};
use smn_testkit::faults::{corrupt_range, flip_bit, truncate_at, FaultRng};
use smn_testkit::{fig1_network, tiny_sampler};

fn snapshot_bytes() -> Vec<u8> {
    let mut pn = ProbabilisticNetwork::new_sharded(
        fig1_network(),
        tiny_sampler(5),
        ShardingConfig::default(),
    );
    let a = smn_core::feedback::Assertion { candidate: CandidateId(2), approved: true };
    pn.assert_candidate(a).unwrap();
    save_with_history(&pn, &[a], 1)
}

fn wal_bytes() -> Vec<u8> {
    let mut wal = WalBuffer::new(1);
    wal.append(&NetworkEvent::Assert { candidate: CandidateId(2), approved: true });
    wal.append(&NetworkEvent::Retire { candidate: CandidateId(0) });
    wal.bytes().to_vec()
}

#[test]
fn bad_magic_is_typed() {
    let mut snap = snapshot_bytes();
    snap[..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(decode_snapshot(&snap), Err(StorageError::BadMagic { .. })));
    let mut wal = wal_bytes();
    wal[..8].copy_from_slice(b"NOTAWAL!");
    assert!(matches!(decode_records(&wal), Err(StorageError::BadMagic { .. })));
    let (prefix, err) = decode_prefix(&wal);
    assert!(prefix.is_empty());
    assert!(matches!(err, Some(StorageError::BadMagic { .. })));
}

#[test]
fn version_mismatch_is_typed() {
    // the version field sits right after the 8-byte magic in both formats
    let mut snap = snapshot_bytes();
    snap[8..12].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
    assert_eq!(
        decode_snapshot(&snap).unwrap_err(),
        StorageError::VersionMismatch { expected: SNAP_VERSION, found: SNAP_VERSION + 1 }
    );
    let mut wal = wal_bytes();
    wal[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(decode_records(&wal), Err(StorageError::VersionMismatch { found: 99, .. })));
}

#[test]
fn checksum_mismatch_is_typed() {
    // a flip in the offset table breaks the header checksum
    let snap = snapshot_bytes();
    let tampered = {
        let mut b = snap.clone();
        b[30] ^= 0x10;
        b
    };
    assert!(matches!(
        decode_snapshot(&tampered),
        Err(StorageError::ChecksumMismatch { what: "header", .. })
    ));
    // a flip in a section payload breaks that section's checksum
    let tampered = {
        let mut b = snap.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        b
    };
    assert!(matches!(
        decode_snapshot(&tampered),
        Err(StorageError::ChecksumMismatch { what: "section", .. })
    ));
    // a flip in a WAL record payload breaks that record's checksum —
    // strict decode errors, tolerant decode keeps the earlier records
    let wal = wal_bytes();
    let tampered = {
        let mut b = wal.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        b
    };
    assert!(matches!(
        decode_records(&tampered),
        Err(StorageError::ChecksumMismatch { what: "wal record", .. })
    ));
    let (prefix, err) = decode_prefix(&tampered);
    assert_eq!(prefix.len(), 1, "the intact first record survives");
    assert!(matches!(err, Some(StorageError::ChecksumMismatch { .. })));
}

#[test]
fn truncated_record_is_typed() {
    let snap = snapshot_bytes();
    // cut inside the header
    assert!(matches!(
        decode_snapshot(&truncate_at(&snap, 20)),
        Err(StorageError::TruncatedRecord { .. })
    ));
    // cut inside the last section (header + table intact)
    assert!(matches!(
        decode_snapshot(&truncate_at(&snap, snap.len() - 3)),
        Err(StorageError::TruncatedRecord { .. })
    ));
    let wal = wal_bytes();
    assert!(matches!(
        decode_records(&truncate_at(&wal, wal.len() - 2)),
        Err(StorageError::TruncatedRecord { .. })
    ));
}

#[test]
fn semantically_impossible_content_is_invalid_not_a_panic() {
    // structurally pristine bytes whose conflict index references a
    // candidate the snapshot does not contain
    let pn = ProbabilisticNetwork::new(fig1_network(), tiny_sampler(5));
    let mut state = pn.to_state();
    state.pair_conflicts[0].push(1_000_000);
    let bytes = smn_storage::format::encode_snapshot(&state, &[], 0);
    assert!(matches!(load_with_history(&bytes), Err(StorageError::Invalid(_))));
    // ... and a feedback set sized for a different candidate universe
    let mut state = pn.to_state();
    state.feedback.len = 3;
    let bytes = smn_storage::format::encode_snapshot(&state, &[], 0);
    assert!(matches!(load_with_history(&bytes), Err(StorageError::Invalid(_))));
}

#[test]
fn io_failure_is_typed() {
    let missing = std::path::Path::new("/nonexistent-smn-store-dir/definitely-absent");
    assert!(matches!(smn_storage::DurableStore::recover(missing), Err(StorageError::Io(_))));
}

proptest! {
    /// No mutation of a valid snapshot can pass the decoder: every
    /// damaged buffer is a typed error (checksums cover every byte), and
    /// none panics.
    #[test]
    fn mutated_snapshots_never_decode_and_never_panic(seed in any::<u64>()) {
        let snap = snapshot_bytes();
        let mut rng = FaultRng::new(seed);
        let mutations = [
            flip_bit(&snap, 0, &mut rng),
            truncate_at(&snap, rng.below(snap.len())),
            corrupt_range(&snap, 16, &mut rng),
        ];
        for m in mutations {
            if m != snap {
                prop_assert!(load_with_history(&m).is_err(), "damaged bytes must not load");
            }
        }
    }

    /// Arbitrary byte strings never panic any decoder — snapshot or WAL,
    /// strict or tolerant.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_snapshot(&bytes);
        let _ = load_with_history(&bytes);
        let _ = decode_records(&bytes);
        let (_prefix, _err) = decode_prefix(&bytes);
    }
}
