//! Crash-injection differential harness: the durability contract under
//! randomized interleavings of assertions, arrivals and retirements with
//! faults injected at arbitrary byte positions —
//!
//! ```text
//! recover(save(run)) ≡ live run
//! ```
//!
//! — conflict index and component partition structurally equal,
//! probabilities/entropy/information gain within 1e-12 (bit-identical in
//! fact: the load path re-records the same samples in the same order and
//! recomputes through the same kernels), histories byte-identical.
//!
//! Like the evolution harness (`smn-core/tests/evolution.rs`) the
//! generators stay in the *exact* regime — every conflict component at or
//! below the exact threshold — where the posterior is a pure function of
//! (index, feedback) and maintenance never touches the RNG, so the
//! differential is a hard invariant, not a statistical one. The fault
//! menu: WAL torn at an arbitrary byte, a bit flipped mid-log, a bit
//! flipped in the snapshot, a kill between snapshot publication and log
//! fsync, and stale-log replay (seq filtering).

use proptest::prelude::*;
use smn_constraints::ConstraintConfig;
use smn_core::feedback::Assertion;
use smn_core::persist::{apply_event, apply_to_history, NetworkEvent};
use smn_core::{MatchingNetwork, ProbabilisticNetwork, SamplerConfig, ShardingConfig};
use smn_schema::{
    AttributeId, CandidateId, CandidateSet, Catalog, CatalogBuilder, InteractionGraph,
};
use smn_storage::wal::decode_prefix;
use smn_storage::{load_with_history, recover, save_with_history, DurableStore, WalBuffer};
use smn_testkit::faults::{flip_bit, torn_tail, FaultRng};
use smn_testkit::tiny_sampler;

fn three_schema_catalog(sizes: [usize; 3]) -> (Catalog, InteractionGraph) {
    let mut b = CatalogBuilder::new();
    for (i, &n) in sizes.iter().enumerate() {
        let attrs: Vec<String> = (0..n).map(|j| format!("a{i}_{j}")).collect();
        b.add_schema_with_attributes(format!("s{i}"), attrs).unwrap();
    }
    (b.build(), InteractionGraph::complete(3))
}

fn pair_pool(cat: &Catalog) -> Vec<(AttributeId, AttributeId)> {
    let mut pool = Vec::new();
    for x in 0..cat.attribute_count() {
        for y in (x + 1)..cat.attribute_count() {
            let (ax, ay) = (AttributeId::from_index(x), AttributeId::from_index(y));
            if cat.schema_of(ax) != cat.schema_of(ay) {
                pool.push((ax, ay));
            }
        }
    }
    pool
}

fn exact_sharding() -> ShardingConfig {
    ShardingConfig { exact_threshold: 64, exact_cap: 1 << 20, ..Default::default() }
}

fn sampler() -> SamplerConfig {
    tiny_sampler(7)
}

/// Deterministically builds the initial network of a scenario — called
/// once for the live run and again for independent rebuilds, which must
/// coincide exactly.
fn build_initial(sizes: [usize; 3], seed_mask: u64) -> ProbabilisticNetwork {
    let (cat, graph) = three_schema_catalog(sizes);
    let pool = pair_pool(&cat);
    let mut cs = CandidateSet::new(&cat);
    for (i, &(x, y)) in pool.iter().enumerate() {
        if seed_mask & (1 << (i % 64)) != 0 {
            cs.add(&cat, Some(&graph), x, y, 0.5).unwrap();
        }
    }
    let net = MatchingNetwork::new(cat, graph, cs, ConstraintConfig::default());
    ProbabilisticNetwork::new_sharded(net, sampler(), exact_sharding())
}

/// Decodes one fuzz word into an applicable event against the current
/// network, mirroring the evolution harness's op alphabet.
fn decode_op(pn: &ProbabilisticNetwork, op: u32) -> Option<NetworkEvent> {
    let pick = (op >> 2) as usize;
    match op % 3 {
        0 => {
            let cat = pn.network().catalog();
            let free: Vec<(AttributeId, AttributeId)> = pair_pool(cat)
                .into_iter()
                .filter(|(x, y)| pn.network().candidates().find(*x, *y).is_none())
                .collect();
            if free.is_empty() {
                return None;
            }
            let (a, b) = free[pick % free.len()];
            Some(NetworkEvent::Extend { a, b, confidence: 0.5 })
        }
        1 => {
            let n = pn.network().candidate_count();
            if n == 0 {
                return None;
            }
            Some(NetworkEvent::Retire { candidate: CandidateId::from_index(pick % n) })
        }
        _ => {
            let n = pn.network().candidate_count();
            if n == 0 {
                return None;
            }
            Some(NetworkEvent::Assert {
                candidate: CandidateId::from_index(pick % n),
                approved: op & 2 != 0,
            })
        }
    }
}

/// The full differential: structural index equality, bit-identical
/// posteriors, 1e-12 entropy/IG agreement, byte-identical histories.
fn assert_equivalent(
    recovered: &ProbabilisticNetwork,
    recovered_history: &[Assertion],
    live: &ProbabilisticNetwork,
    live_history: &[Assertion],
) {
    assert_eq!(recovered.network().index(), live.network().index(), "conflict index");
    assert_eq!(recovered.shard_count(), live.shard_count(), "component partition");
    assert_eq!(recovered.to_state(), live.to_state(), "full structural state");
    assert_eq!(recovered.probabilities(), live.probabilities(), "bit-identical posteriors");
    assert!((recovered.entropy() - live.entropy()).abs() < 1e-12);
    assert_eq!(recovered.effort(), live.effort());
    let uncertain = live.uncertain_candidates();
    assert_eq!(recovered.uncertain_candidates(), uncertain);
    let (ga, gb) = (recovered.information_gains(&uncertain), live.information_gains(&uncertain));
    for ((&c, &a), &b) in uncertain.iter().zip(&ga).zip(&gb) {
        assert!((a - b).abs() < 1e-12, "gain of {c}: {a} vs {b}");
    }
    assert_eq!(recovered_history, live_history, "byte-identical history");
}

proptest! {
    /// The headline property. One random interleaving of network events
    /// is run live while journaling into a WAL; then every recovery path
    /// — clean, torn log, bit-flipped log, corrupted snapshot, stale log
    /// — is checked against the live end state (or the event-count
    /// prefix of it that the surviving log prescribes).
    #[test]
    fn recovery_equals_the_live_run_under_injected_crashes(
        sizes in prop::array::uniform3(1usize..4),
        seed_mask in any::<u64>(),
        ops in prop::collection::vec(any::<u32>(), 1..20),
        fault_seed in any::<u64>(),
    ) {
        // ---- live run, journaled -----------------------------------
        let mut live = build_initial(sizes, seed_mask);
        let base_snapshot = save_with_history(&live, &[], 0);
        let mut wal = WalBuffer::new(1);
        let mut history: Vec<Assertion> = Vec::new();
        let mut applied_events: Vec<NetworkEvent> = Vec::new();
        for &op in &ops {
            let Some(event) = decode_op(&live, op) else { continue };
            if apply_event(&mut live, &event).is_ok() {
                wal.append(&event);
                apply_to_history(&mut history, &event);
                applied_events.push(event);
            }
        }

        // ---- clean recovery: snapshot + intact log ≡ live ----------
        let rec = recover(&base_snapshot, wal.bytes()).expect("clean recovery");
        prop_assert!(rec.wal_error.is_none());
        prop_assert_eq!(rec.replayed, applied_events.len());
        prop_assert_eq!(rec.applied_seq, applied_events.len() as u64);
        assert_equivalent(&rec.network, &rec.history, &live, &history);
        // and the recovered state re-saves byte-identically to a live save
        prop_assert_eq!(
            save_with_history(&rec.network, &rec.history, rec.applied_seq),
            save_with_history(&live, &history, rec.applied_seq),
            "byte-identical re-save"
        );

        let mut rng = FaultRng::new(fault_seed);

        // ---- torn log at an arbitrary byte -------------------------
        // spec: recovery must land exactly on the state after the m
        // events whose records survived the tear, where m comes from an
        // independent decode of the torn bytes
        let torn = torn_tail(wal.bytes(), 12, &mut rng);
        let m = decode_prefix(&torn).0.len();
        let rec = recover(&base_snapshot, &torn).expect("torn-log recovery");
        prop_assert_eq!(rec.replayed, m);
        let mut expect = build_initial(sizes, seed_mask);
        let mut expect_history = Vec::new();
        for event in &applied_events[..m] {
            apply_event(&mut expect, event).expect("re-applying a prefix of applied events");
            apply_to_history(&mut expect_history, event);
        }
        assert_equivalent(&rec.network, &rec.history, &expect, &expect_history);

        // ---- bit flip mid-log: typed stop, prefix still exact ------
        if wal.bytes().len() > 12 {
            let flipped = flip_bit(wal.bytes(), 12, &mut rng);
            let rec = recover(&base_snapshot, &flipped).expect("flip hits the log, not the snapshot");
            let k = rec.replayed;
            prop_assert!(k <= applied_events.len());
            if k < applied_events.len() {
                prop_assert!(rec.wal_error.is_some(), "a lost suffix is reported");
            }
            let mut expect = build_initial(sizes, seed_mask);
            let mut expect_history = Vec::new();
            for event in &applied_events[..k] {
                apply_event(&mut expect, event).expect("prefix replays");
                apply_to_history(&mut expect_history, event);
            }
            assert_equivalent(&rec.network, &rec.history, &expect, &expect_history);
        }

        // ---- snapshot corruption: typed failure, older-gen fallback -
        let end_seq = applied_events.len() as u64;
        let end_snapshot = save_with_history(&live, &history, end_seq);
        let corrupt = flip_bit(&end_snapshot, 0, &mut rng);
        prop_assert!(load_with_history(&corrupt).is_err(), "corrupt snapshots never load");
        // falling back to the base snapshot + the full log re-reaches
        // the exact state the corrupted snapshot held
        let rec = recover(&base_snapshot, wal.bytes()).expect("fallback recovery");
        assert_equivalent(&rec.network, &rec.history, &live, &history);

        // ---- stale log: records ≤ applied_seq are filtered ---------
        let rec = recover(&end_snapshot, wal.bytes()).expect("stale-log recovery");
        prop_assert_eq!(rec.replayed, 0, "every record predates the snapshot");
        prop_assert_eq!(rec.applied_seq, end_seq);
        assert_equivalent(&rec.network, &rec.history, &live, &history);
    }
}

/// Kill points across the `DurableStore` publish cycle, on real files:
/// after any prefix of appends, after a publish, after a publish whose
/// WAL was then lost (the kill between snapshot rename and log fsync),
/// and after corruption of the newest snapshot (older-generation
/// fallback) — recovery from the directory must equal the live network
/// at the corresponding point.
#[test]
fn durable_store_recovers_across_kill_points_and_generations() {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("crash-killpoints");
    let _ = std::fs::remove_dir_all(&base);

    let mut live = build_initial([2, 3, 2], 0xD1CE);
    let dir = base.join("store");
    let mut store = DurableStore::open(&dir, &live, &[], 0).expect("open");
    let mut history = Vec::new();

    // round 1: a few events, then a kill before any publish
    let script1 = [6u32, 14, 11, 26];
    let mut applied = Vec::new();
    for &op in &script1 {
        let Some(event) = decode_op(&live, op) else { continue };
        if apply_event(&mut live, &event).is_ok() {
            store.append(&event).expect("append");
            apply_to_history(&mut history, &event);
            applied.push(event);
        }
    }
    store.sync().expect("sync");
    let rec = DurableStore::recover(&dir).expect("recover after kill mid-round");
    assert_equivalent(&rec.network, &rec.history, &live, &history);
    assert_eq!(rec.applied_seq, applied.len() as u64);

    // round 2: publish, then more events, then a kill
    let generation = store.publish(&live, &history).expect("publish");
    assert_eq!(generation, 1);
    for &op in &[35u32, 23, 8, 17] {
        let Some(event) = decode_op(&live, op) else { continue };
        if apply_event(&mut live, &event).is_ok() {
            store.append(&event).expect("append");
            apply_to_history(&mut history, &event);
            applied.push(event);
        }
    }
    store.sync().expect("sync");
    let rec = DurableStore::recover(&dir).expect("recover after publish + appends");
    assert_equivalent(&rec.network, &rec.history, &live, &history);

    // kill point between snapshot publication and log fsync: publish
    // generation 2, then lose its WAL entirely — recovery must land on
    // the published snapshot state (nothing after it existed)
    store.publish(&live, &history).expect("publish gen 2");
    drop(store);
    std::fs::remove_file(dir.join("wal-0000000002.log")).expect("simulate lost log");
    let rec = DurableStore::recover(&dir).expect("recover without the newest log");
    assert_equivalent(&rec.network, &rec.history, &live, &history);

    // newest-snapshot corruption: flip a bit in generation 2's snapshot;
    // recovery falls back to generation 1 and replays its log chain
    let snap2 = dir.join("snapshot-0000000002.smn");
    let bytes = std::fs::read(&snap2).expect("read snapshot");
    let mut rng = FaultRng::new(99);
    std::fs::write(&snap2, flip_bit(&bytes, 0, &mut rng)).expect("corrupt snapshot");
    let rec = DurableStore::recover(&dir).expect("older-generation fallback");
    // generation 1's snapshot + its (synced) WAL reach the same state
    assert_equivalent(&rec.network, &rec.history, &live, &history);

    let _ = std::fs::remove_dir_all(&base);
}

/// Generation bookkeeping: publishing prunes to (current, previous), the
/// WAL rotates empty, and sequence numbers continue across rotations.
#[test]
fn durable_store_rotates_and_prunes_generations() {
    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("crash-rotation");
    let _ = std::fs::remove_dir_all(&base);

    let mut live = build_initial([2, 2, 2], 0xBEEF);
    let dir = base.join("store");
    let mut store = DurableStore::open(&dir, &live, &[], 0).expect("open");
    let mut history = Vec::new();
    for round in 0..4u32 {
        for &op in &[5 + round, 26 + round] {
            let Some(event) = decode_op(&live, op) else { continue };
            if apply_event(&mut live, &event).is_ok() {
                store.append(&event).expect("append");
                apply_to_history(&mut history, &event);
            }
        }
        store.publish(&live, &history).expect("publish");
    }
    assert_eq!(store.generation(), 4);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "snapshot-0000000003.smn",
            "snapshot-0000000004.smn",
            "wal-0000000003.log",
            "wal-0000000004.log",
        ],
        "only the current and previous generations survive pruning"
    );
    let rec = DurableStore::recover(&dir).expect("recover after rotations");
    assert_equivalent(&rec.network, &rec.history, &live, &history);
    assert_eq!(rec.replayed, 0, "everything was folded into the newest snapshot");

    // a reopened store continues the sequence numbering
    let store2 =
        DurableStore::open(&dir, &rec.network, &rec.history, rec.applied_seq).expect("reopen");
    assert_eq!(store2.generation(), 5);
    assert_eq!(store2.next_seq(), rec.applied_seq + 1);

    let _ = std::fs::remove_dir_all(&base);
}
