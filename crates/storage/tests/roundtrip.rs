//! Snapshot round-trip properties over the standard fixture presets:
//! `save → load → save` is byte-identical, the loaded network matches the
//! live one bit for bit (probabilities are *recomputed* from the restored
//! samples through the same kernels), and loading then replaying a log
//! equals rebuilding from scratch and replaying — the structural half of
//! the durability contract (the crash half lives in `tests/crash.rs`).

use proptest::prelude::*;
use smn_core::feedback::Assertion;
use smn_core::persist::{apply_event, apply_to_history, NetworkEvent};
use smn_core::{ProbabilisticNetwork, SamplerConfig, ShardingConfig};
use smn_schema::CandidateId;
use smn_storage::{load_with_history, save_with_history, Durable};
use smn_testkit::{
    fast_sampler, fig1_network, perturbed_network, tiny_sampler, webform_federation,
};

/// Round-trips `pn` (with `history`) through the snapshot format and
/// checks every equality the format promises.
fn assert_round_trip(pn: &ProbabilisticNetwork, history: &[Assertion], applied_seq: u64) {
    let bytes = save_with_history(pn, history, applied_seq);
    let (loaded, loaded_history, loaded_seq) = load_with_history(&bytes).expect("clean load");
    assert_eq!(loaded_history, history, "history survives byte-identically");
    assert_eq!(loaded_seq, applied_seq);
    assert_eq!(loaded.to_state(), pn.to_state(), "structural state equality");
    assert_eq!(loaded.network().index(), pn.network().index(), "conflict index equality");
    assert_eq!(loaded.probabilities(), pn.probabilities(), "bit-identical probabilities");
    assert_eq!(loaded.entropy().to_bits(), pn.entropy().to_bits(), "bit-identical entropy");
    assert_eq!(loaded.effort(), pn.effort());
    assert_eq!(loaded.is_sharded(), pn.is_sharded());
    assert_eq!(loaded.shard_count(), pn.shard_count());
    let uncertain = pn.uncertain_candidates();
    assert_eq!(loaded.uncertain_candidates(), uncertain);
    let (ga, gb) = (loaded.information_gains(&uncertain), pn.information_gains(&uncertain));
    for ((&c, &a), &b) in uncertain.iter().zip(&ga).zip(&gb) {
        assert!((a - b).abs() < 1e-12, "gain of {c}: {a} vs {b}");
    }
    // the encoder is canonical: re-saving the loaded network reproduces
    // the exact input bytes
    assert_eq!(save_with_history(&loaded, &loaded_history, loaded_seq), bytes, "save∘load = id");
}

#[test]
fn fig1_round_trips_monolithic_and_sharded() {
    for sharded in [false, true] {
        let mut pn = if sharded {
            ProbabilisticNetwork::new_sharded(
                fig1_network(),
                tiny_sampler(5),
                ShardingConfig::default(),
            )
        } else {
            ProbabilisticNetwork::new(fig1_network(), tiny_sampler(5))
        };
        assert_round_trip(&pn, &[], 0);
        let a = Assertion { candidate: CandidateId(2), approved: true };
        pn.assert_candidate(a).unwrap();
        assert_round_trip(&pn, &[a], 3);
    }
}

#[test]
fn perturbed_preset_round_trips_in_the_sampled_regime() {
    let (net, _) = perturbed_network(3, 6, 0.7, 0.9, 11);
    // monolithic keeps a genuinely sampled (non-exhausted) store: the
    // round trip must restore Ω* and its RNG-free derived state exactly
    let mut pn = ProbabilisticNetwork::new(net, tiny_sampler(11));
    assert_round_trip(&pn, &[], 0);
    let a = Assertion { candidate: CandidateId(1), approved: false };
    let mut history = Vec::new();
    if pn.assert_candidate(a).is_ok() {
        history.push(a);
    }
    assert_round_trip(&pn, &history, 1);
}

#[test]
fn federation_preset_round_trips_sharded() {
    let (net, _) = webform_federation(4, 7);
    let mut pn = ProbabilisticNetwork::new_sharded(net, fast_sampler(7), ShardingConfig::default());
    assert_round_trip(&pn, &[], 0);
    let a = Assertion { candidate: CandidateId(0), approved: true };
    let mut history = Vec::new();
    if pn.assert_candidate(a).is_ok() {
        history.push(a);
    }
    assert_round_trip(&pn, &history, 1);
}

#[test]
fn durable_trait_is_the_historyless_special_case() {
    let pn = ProbabilisticNetwork::new(fig1_network(), tiny_sampler(5));
    let bytes = pn.save();
    assert_eq!(bytes, save_with_history(&pn, &[], 0));
    let loaded = ProbabilisticNetwork::load(&bytes).expect("clean load");
    assert_eq!(loaded.to_state(), pn.to_state());
}

proptest! {
    /// Any reachable assertion state of the fig1/perturbed presets
    /// round-trips byte-identically, and *load-then-replay* equals
    /// *rebuild-and-replay*: applying the same event suffix to the loaded
    /// network and to a freshly built network yields structurally equal
    /// results.
    #[test]
    fn reachable_states_round_trip_and_replay_agrees(
        preset in 0u8..2,
        seed in 0u64..64,
        verdicts in prop::collection::vec(any::<u32>(), 0..10),
        suffix in prop::collection::vec(any::<u32>(), 0..6),
    ) {
        let build = || {
            let net = match preset {
                0 => fig1_network(),
                _ => perturbed_network(3, 4, 0.7, 0.9, seed).0,
            };
            ProbabilisticNetwork::new_sharded(
                net,
                tiny_sampler(seed),
                ShardingConfig { exact_threshold: 64, exact_cap: 1 << 20, ..Default::default() },
            )
        };
        let mut pn = build();
        let mut history = Vec::new();
        for &v in &verdicts {
            let n = pn.network().candidate_count();
            if n == 0 { break; }
            let a = Assertion {
                candidate: CandidateId::from_index((v >> 1) as usize % n),
                approved: v & 1 != 0,
            };
            if pn.assert_candidate(a).is_ok() {
                history.push(a);
            }
        }
        let bytes = save_with_history(&pn, &history, history.len() as u64);
        let (loaded, h, seq) = load_with_history(&bytes).expect("clean load");
        prop_assert_eq!(&h, &history);
        prop_assert_eq!(save_with_history(&loaded, &h, seq), bytes, "byte-identical re-save");

        // load-then-replay ≡ rebuild-and-replay over an arbitrary suffix
        let mut replayed = loaded;
        let mut rebuilt = build();
        for &a in &history {
            // bring the rebuild to the snapshot state first
            rebuilt.assert_candidate(a).expect("history replays onto a fresh build");
        }
        let mut replayed_history = history.clone();
        let mut rebuilt_history = history;
        for &v in &suffix {
            let n = replayed.network().candidate_count();
            if n == 0 { break; }
            let event = NetworkEvent::Assert {
                candidate: CandidateId::from_index((v >> 1) as usize % n),
                approved: v & 1 != 0,
            };
            let (ra, rb) = (
                apply_event(&mut replayed, &event),
                apply_event(&mut rebuilt, &event),
            );
            prop_assert_eq!(&ra, &rb, "replay outcomes agree");
            if ra.is_ok() {
                apply_to_history(&mut replayed_history, &event);
                apply_to_history(&mut rebuilt_history, &event);
            }
        }
        prop_assert_eq!(replayed_history, rebuilt_history);
        prop_assert_eq!(replayed.to_state(), rebuilt.to_state(), "structural equality");
        prop_assert_eq!(replayed.probabilities(), rebuilt.probabilities());
        prop_assert!((replayed.entropy() - rebuilt.entropy()).abs() < 1e-12);
    }
}

/// The sampler configuration is preserved exactly — including a
/// multi-chain config, whose restored store must keep reporting the same
/// content it was saved with.
#[test]
fn config_fidelity_across_the_round_trip() {
    let config = SamplerConfig {
        n_samples: 120,
        walk_steps: 2,
        n_min: 40,
        seed: 99,
        anneal: false,
        chains: 2,
    };
    let pn = ProbabilisticNetwork::new(fig1_network(), config);
    let bytes = save_with_history(&pn, &[], 0);
    let (loaded, _, _) = load_with_history(&bytes).unwrap();
    assert_eq!(loaded.to_state().sampler, config);
    assert_eq!(loaded.probabilities(), pn.probabilities());
}
