//! Typed storage errors.
//!
//! Every decode path in this crate returns a [`StorageError`] — corrupt,
//! truncated or hostile bytes are *never* allowed to panic. The variants
//! mirror the check order of the snapshot and WAL decoders: magic →
//! version → checksums → bounds → semantic validity.

use std::fmt;

/// Why a snapshot or WAL buffer could not be decoded (or a durable file
/// could not be written).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The buffer does not start with the expected magic bytes — it is
    /// not a snapshot/WAL at all (or its first bytes were destroyed).
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 8],
        /// What the buffer actually started with.
        found: [u8; 8],
    },
    /// The format version is one this build does not speak.
    VersionMismatch {
        /// The version this build writes and reads.
        expected: u32,
        /// The version the buffer declared.
        found: u32,
    },
    /// A CRC-64 check failed: the covered bytes were altered after they
    /// were written (bit rot, torn write, deliberate corruption).
    ChecksumMismatch {
        /// Which checksummed region failed (`"header"`, `"section"`,
        /// `"wal record"`).
        what: &'static str,
        /// The stored checksum.
        expected: u64,
        /// The checksum of the bytes as found.
        found: u64,
    },
    /// The buffer ends before a declared structure does — the classic
    /// crash shape: an append that never finished.
    TruncatedRecord {
        /// What was being read when the bytes ran out.
        what: &'static str,
        /// How many bytes the structure needed.
        needed: usize,
        /// How many were available.
        available: usize,
    },
    /// The bytes are structurally well-formed (checksums pass) but
    /// describe an impossible model — e.g. a conflict posting list
    /// referencing a candidate the snapshot does not contain.
    Invalid(String),
    /// An I/O failure from the file-backed [`DurableStore`] paths.
    ///
    /// [`DurableStore`]: crate::store::DurableStore
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            Self::VersionMismatch { expected, found } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            Self::ChecksumMismatch { what, expected, found } => {
                write!(
                    f,
                    "{what} checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
                )
            }
            Self::TruncatedRecord { what, needed, available } => {
                write!(f, "truncated {what}: needed {needed} bytes, only {available} available")
            }
            Self::Invalid(reason) => write!(f, "invalid snapshot/log content: {reason}"),
            Self::Io(reason) => write!(f, "storage i/o failure: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
