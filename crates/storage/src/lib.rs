//! # smn-storage
//!
//! Durable probabilistic networks: a versioned binary snapshot format
//! ([`mod@format`]), an append-only write-ahead log of assertion/evolution
//! events ([`wal`]), crash recovery as *load snapshot + replay log
//! suffix* ([`recover()`]), and a file-backed [`store::DurableStore`]
//! managing snapshot generations and log rotation.
//!
//! The load path rebuilds along the same `Arc` boundaries the live
//! network uses — shared [`SampleData`]/[`ShardSnapshot`] behind
//! copy-on-write pointers — without re-sampling: the recorded instance
//! multiset Ω\* is re-recorded in discovery order, which reconstructs the
//! transposed sample matrix bit-identically, and probabilities are then
//! *recomputed* through the same kernels. Hence `load(save(pn))` matches
//! `pn` exactly: probabilities, entropy and information gain to the last
//! bit, conflict index and component partition structurally equal.
//!
//! [`SampleData`]: smn_core::sampling::SampleStore
//! [`ShardSnapshot`]: smn_core::ProbabilisticNetwork
//!
//! Nothing in this crate panics on untrusted bytes: every decoder
//! returns a typed [`StorageError`].

pub mod error;
pub mod format;
pub mod frame;
pub mod lanes;
pub mod recover;
pub mod store;
pub mod wal;

pub use error::StorageError;
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, Frame};
pub use lanes::{LaneSink, LaneSinks};
pub use recover::{recover, Recovered};
pub use store::DurableStore;
pub use wal::WalBuffer;

use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;

/// Snapshot persistence for a value — implemented for
/// [`ProbabilisticNetwork`]. The dependency points this way (storage →
/// core) so the core model stays free of encoding concerns; call sites
/// simply `use smn_storage::Durable`.
pub trait Durable: Sized {
    /// Serializes to a self-describing snapshot buffer.
    fn save(&self) -> Vec<u8>;
    /// Reconstructs from a snapshot buffer. Never panics on any input.
    fn load(bytes: &[u8]) -> Result<Self, StorageError>;
}

impl Durable for ProbabilisticNetwork {
    fn save(&self) -> Vec<u8> {
        save_with_history(self, &[], 0)
    }

    fn load(bytes: &[u8]) -> Result<Self, StorageError> {
        load_with_history(bytes).map(|(pn, _, _)| pn)
    }
}

/// Serializes a network together with its session history and the WAL
/// sequence number the snapshot is current to (`applied_seq`; the WAL
/// continuing this snapshot starts at `applied_seq + 1`).
pub fn save_with_history(
    pn: &ProbabilisticNetwork,
    history: &[Assertion],
    applied_seq: u64,
) -> Vec<u8> {
    format::encode_snapshot(&pn.to_state(), history, applied_seq)
}

/// Reconstructs a network, its history and its applied sequence number
/// from a snapshot buffer. Strict: any corruption is a typed error.
pub fn load_with_history(
    bytes: &[u8],
) -> Result<(ProbabilisticNetwork, Vec<Assertion>, u64), StorageError> {
    let (state, history, applied_seq) = format::decode_snapshot(bytes)?;
    let pn = ProbabilisticNetwork::from_state(&state).map_err(StorageError::Invalid)?;
    Ok((pn, history, applied_seq))
}
