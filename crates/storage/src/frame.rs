//! Length-prefixed, checksummed message frames — the wire codec of the
//! multi-process reconciliation mode (`smn-dist`).
//!
//! A frame is the smallest self-checking unit that can cross a process
//! boundary. The payloads it carries are the crate's existing encodings
//! — [`encode_shard_state`](crate::format::encode_shard_state) sections
//! for shard shipment, [`wal::encode_record`](crate::wal::encode_record)
//! records for the command stream — so the distributed wire protocol
//! adds *no new serialization*, only framing:
//!
//! ```text
//! offset  size  field
//! ------  ----  ---------------------------------------------
//!      0     8  magic        "SMN1FRM\0"
//!      8     4  version      u32  (= 1)
//!     12     4  kind         u32  application-defined message tag
//!     16     4  payload_len  u32  (bounded by MAX_FRAME_PAYLOAD)
//!     20     8  payload_crc  u64  CRC-64/XZ of the payload bytes
//!     28     …  payload
//! ```
//!
//! All integers little-endian, like the snapshot and WAL formats. The
//! decoder never panics on any byte string: magic → version → length
//! bound → bounds → checksum, each failure a typed [`StorageError`].
//! The declared length is validated against [`MAX_FRAME_PAYLOAD`]
//! *before* any allocation, so a hostile peer cannot force an
//! out-of-memory with one length field.

use crate::error::StorageError;
use crate::format::{crc64, put_u32, put_u64, Dec};
use std::io::{Read, Write};

/// Frame magic bytes.
pub const FRAME_MAGIC: [u8; 8] = *b"SMN1FRM\0";
/// The frame format version this build writes and reads.
pub const FRAME_VERSION: u32 = 1;
/// Fixed bytes before the payload.
pub const FRAME_HEADER_LEN: usize = 28;
/// Largest payload a well-formed frame may declare. Shard shipments of
/// large federations run to megabytes; a gigabyte is a defensive bound,
/// not a target.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// One decoded frame: the application tag and its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-defined message kind.
    pub kind: u32,
    /// The checksummed payload.
    pub payload: Vec<u8>,
}

/// Encodes one frame into a fresh buffer.
pub fn encode_frame(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    put_u32(&mut buf, FRAME_VERSION);
    put_u32(&mut buf, kind);
    put_u32(&mut buf, payload.len() as u32);
    put_u64(&mut buf, crc64(payload));
    buf.extend_from_slice(payload);
    buf
}

/// Decodes exactly one frame from the front of `bytes`, returning it and
/// how many bytes it consumed (so a buffer of concatenated frames can be
/// walked). Strict and panic-free on any input.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), StorageError> {
    let mut d = Dec::new(bytes);
    let magic = d.take(8, "frame magic")?;
    if magic != FRAME_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StorageError::BadMagic { expected: FRAME_MAGIC, found });
    }
    let version = d.u32("frame version")?;
    if version != FRAME_VERSION {
        return Err(StorageError::VersionMismatch { expected: FRAME_VERSION, found: version });
    }
    let kind = d.u32("frame kind")?;
    let len = d.u32("frame payload_len")? as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(StorageError::Invalid(format!(
            "frame payload of {len} bytes exceeds the format bound"
        )));
    }
    let stored_crc = d.u64("frame payload_crc")?;
    let payload = d.take(len, "frame payload")?;
    let found = crc64(payload);
    if found != stored_crc {
        return Err(StorageError::ChecksumMismatch {
            what: "frame payload",
            expected: stored_crc,
            found,
        });
    }
    Ok((Frame { kind, payload: payload.to_vec() }, FRAME_HEADER_LEN + len))
}

/// Writes one frame to a byte sink (e.g. a `TcpStream`), flushing it.
pub fn write_frame(w: &mut impl Write, kind: u32, payload: &[u8]) -> Result<(), StorageError> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame from a byte source (e.g. a `TcpStream`): the
/// fixed header first, then exactly the declared payload. A peer that
/// closes mid-frame yields a typed I/O or truncation error, never a
/// panic; a hostile declared length is rejected before allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, StorageError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut d = Dec::new(&header);
    let magic = d.take(8, "frame magic")?;
    if magic != FRAME_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StorageError::BadMagic { expected: FRAME_MAGIC, found });
    }
    let version = d.u32("frame version")?;
    if version != FRAME_VERSION {
        return Err(StorageError::VersionMismatch { expected: FRAME_VERSION, found: version });
    }
    let kind = d.u32("frame kind")?;
    let len = d.u32("frame payload_len")? as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(StorageError::Invalid(format!(
            "frame payload of {len} bytes exceeds the format bound"
        )));
    }
    let stored_crc = d.u64("frame payload_crc")?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let found = crc64(&payload);
    if found != stored_crc {
        return Err(StorageError::ChecksumMismatch {
            what: "frame payload",
            expected: stored_crc,
            found,
        });
    }
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_report_consumed_length() {
        let payload = b"shard shipment bytes".to_vec();
        let buf = encode_frame(7, &payload);
        assert_eq!(buf.len(), FRAME_HEADER_LEN + payload.len());
        let (frame, consumed) = decode_frame(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(frame, Frame { kind: 7, payload });
    }

    #[test]
    fn concatenated_frames_walk_by_consumed_offset() {
        let mut buf = encode_frame(1, b"one");
        buf.extend_from_slice(&encode_frame(2, b""));
        buf.extend_from_slice(&encode_frame(3, b"three"));
        let mut offset = 0;
        let mut kinds = Vec::new();
        while offset < buf.len() {
            let (frame, consumed) = decode_frame(&buf[offset..]).unwrap();
            kinds.push((frame.kind, frame.payload.len()));
            offset += consumed;
        }
        assert_eq!(kinds, vec![(1, 3), (2, 0), (3, 5)]);
    }

    #[test]
    fn stream_read_write_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 9, b"over the stream").unwrap();
        write_frame(&mut wire, 10, &[0xFF; 1000]).unwrap();
        let mut cursor = &wire[..];
        let a = read_frame(&mut cursor).unwrap();
        let b = read_frame(&mut cursor).unwrap();
        assert_eq!((a.kind, a.payload.as_slice()), (9, &b"over the stream"[..]));
        assert_eq!((b.kind, b.payload.len()), (10, 1000));
        assert!(cursor.is_empty());
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let good = encode_frame(4, b"payload");
        // magic
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bad), Err(StorageError::BadMagic { .. })));
        // version
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(decode_frame(&bad), Err(StorageError::VersionMismatch { .. })));
        // flipped payload bit
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(decode_frame(&bad), Err(StorageError::ChecksumMismatch { .. })));
        // truncated payload
        assert!(matches!(
            decode_frame(&good[..good.len() - 2]),
            Err(StorageError::TruncatedRecord { .. })
        ));
        // truncated header over a stream reads as an I/O error
        let mut cursor = &good[..10];
        assert!(matches!(read_frame(&mut cursor), Err(StorageError::Io(_))));
        // hostile declared length is rejected before allocation
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bad), Err(StorageError::Invalid(_))));
        let mut cursor = &bad[..];
        assert!(matches!(read_frame(&mut cursor), Err(StorageError::Invalid(_))));
    }
}
