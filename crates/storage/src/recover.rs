//! Crash recovery: snapshot load + WAL suffix replay.
//!
//! The recovery contract this module certifies (and the crash-injection
//! suite in `tests/crash.rs` proves): after any crash,
//!
//! ```text
//! recover(latest decodable snapshot, its WAL)
//!     ≡ the live network at the last record that reached the log
//! ```
//!
//! — structurally equal conflict index and partition, bit-identical
//! probabilities/entropy (recomputation from the restored samples runs
//! the same kernels over the same matrix), and a byte-identical history.

use crate::error::StorageError;
use crate::format;
use crate::wal;
use smn_core::feedback::Assertion;
use smn_core::persist::{apply_event, apply_to_history};
use smn_core::ProbabilisticNetwork;

/// The result of a recovery: the rebuilt network, its session history,
/// the last applied WAL sequence number, and the anomaly (if any) that
/// ended the log scan.
#[derive(Debug)]
pub struct Recovered {
    /// The network as of the last durable record.
    pub network: ProbabilisticNetwork,
    /// The recovered session history (snapshot history + replayed
    /// assertions, with retirements renumbering exactly like the live
    /// session).
    pub history: Vec<Assertion>,
    /// The last WAL sequence number folded into `network`.
    pub applied_seq: u64,
    /// How many log records were replayed on top of the snapshot.
    pub replayed: usize,
    /// The anomaly that ended the WAL scan: `None` for a log that ended
    /// cleanly, otherwise the torn/corrupt record the crash left behind.
    /// Recovery *succeeds* either way — the readable prefix is durable;
    /// the caller decides whether a tear is acceptable.
    pub wal_error: Option<StorageError>,
}

/// Recovers a network from a snapshot buffer plus the WAL that continued
/// it. The snapshot is decoded strictly (a damaged snapshot is a hard
/// error — the caller falls back to an older generation); the WAL is
/// decoded tolerantly ([`wal::decode_prefix`]) and its intact suffix
/// (`seq > applied_seq`, strictly increasing) is replayed.
pub fn recover(snapshot: &[u8], wal_bytes: &[u8]) -> Result<Recovered, StorageError> {
    let (state, history, applied_seq) = format::decode_snapshot(snapshot)?;
    let network = ProbabilisticNetwork::from_state(&state).map_err(StorageError::Invalid)?;
    let (records, wal_error) = wal::decode_prefix(wal_bytes);
    replay(network, history, applied_seq, records, wal_error)
}

/// The replay half of [`recover`], reusable for multi-file WAL chains:
/// applies every record with `seq > applied_seq` in order, requiring
/// strictly increasing sequence numbers. A record that fails to apply
/// (possible only if the log and snapshot disagree — i.e. corruption the
/// checksums cannot see) ends the replay and is reported in `wal_error`,
/// never panicked.
pub fn replay(
    mut network: ProbabilisticNetwork,
    mut history: Vec<Assertion>,
    mut applied_seq: u64,
    records: Vec<(u64, smn_core::persist::NetworkEvent)>,
    mut wal_error: Option<StorageError>,
) -> Result<Recovered, StorageError> {
    let mut replayed = 0usize;
    for (seq, event) in records {
        if seq <= applied_seq {
            // already folded into the snapshot (the log predates it)
            continue;
        }
        if let Err(reason) = apply_event(&mut network, &event) {
            wal_error = Some(StorageError::Invalid(format!(
                "replay of wal record seq {seq} failed: {reason}"
            )));
            break;
        }
        apply_to_history(&mut history, &event);
        applied_seq = seq;
        replayed += 1;
    }
    Ok(Recovered { network, history, applied_seq, replayed, wal_error })
}
