//! Per-lane WAL sink handles for the request-driven serving layer.
//!
//! The serving commit path (`smn-service::serve`) applies decided
//! assertions through per-shard commit lanes; durability moves *into*
//! the lanes as WAL-append-at-commit. But the [`DurableStore`] is a
//! single append-only log with one sequence counter — lanes cannot
//! append to it concurrently without serializing on a lock and making
//! sequence numbers race-dependent. [`LaneSinks`] resolves that the
//! same way the probability layer does: each lane records its events
//! into its own buffer ([`EventSink`] via [`LaneSinks::lane`]), and
//! after the batch has been installed the buffers are drained into the
//! store **in ascending lane order** ([`LaneSinks::drain_into`]), then
//! fsynced once. The WAL byte stream is therefore a pure function of
//! the committed batch — identical whether the lanes ran sequentially,
//! on the pool, or on scoped threads — which is what lets the
//! crash-recovery differential suite certify the serving path with the
//! round-mode machinery unchanged.

use crate::error::StorageError;
use crate::store::DurableStore;
use smn_core::persist::{EventSink, NetworkEvent};
use std::collections::BTreeMap;

/// Per-lane event buffers, drained into one [`DurableStore`] in
/// ascending lane order.
#[derive(Debug, Default)]
pub struct LaneSinks {
    lanes: BTreeMap<usize, Vec<NetworkEvent>>,
}

/// A borrowed [`EventSink`] recording into one lane's buffer.
pub struct LaneSink<'a> {
    buffer: &'a mut Vec<NetworkEvent>,
}

impl EventSink for LaneSink<'_> {
    fn record(&mut self, event: &NetworkEvent) {
        self.buffer.push(*event);
    }
}

impl LaneSinks {
    /// An empty set of lane buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sink handle for `lane` (created on first use).
    pub fn lane(&mut self, lane: usize) -> LaneSink<'_> {
        LaneSink { buffer: self.lanes.entry(lane).or_default() }
    }

    /// Buffers one event on `lane` without going through the sink trait.
    pub fn append(&mut self, lane: usize, event: NetworkEvent) {
        self.lanes.entry(lane).or_default().push(event);
    }

    /// Total buffered events across lanes.
    pub fn pending(&self) -> usize {
        self.lanes.values().map(Vec::len).sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Appends every buffered event to `store` — ascending lane id,
    /// insertion order within a lane — then syncs once and returns the
    /// number of events written. The buffers are consumed even on
    /// error: a failed drain is a latched storage fault (the serving
    /// layer surfaces it in its report), not a retry queue.
    pub fn drain_into(&mut self, store: &mut DurableStore) -> Result<u64, StorageError> {
        let lanes = std::mem::take(&mut self.lanes);
        let mut written = 0u64;
        for (_, events) in lanes {
            for event in &events {
                store.append(event)?;
                written += 1;
            }
        }
        if written > 0 {
            store.sync()?;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_core::feedback::Assertion;
    use smn_core::sampling::SamplerConfig;
    use smn_core::ProbabilisticNetwork;
    use smn_schema::CandidateId;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("smn-lanes-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn sampler() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 5, chains: 1 }
    }

    fn assert_event(c: u32, approved: bool) -> NetworkEvent {
        NetworkEvent::Assert { candidate: CandidateId(c), approved }
    }

    #[test]
    fn drains_in_ascending_lane_order_regardless_of_buffer_order() {
        let dir = scratch("order");
        let pn = ProbabilisticNetwork::new(smn_testkit::fig1_network(), sampler());
        let mut store = DurableStore::open(&dir, &pn, &[], 0).expect("open store");
        let mut sinks = LaneSinks::new();
        // interleave lanes out of order
        sinks.lane(2).record(&assert_event(2, true));
        sinks.lane(0).record(&assert_event(4, false));
        sinks.lane(2).record(&assert_event(3, false));
        assert_eq!(sinks.pending(), 3);
        let written = sinks.drain_into(&mut store).expect("drain");
        assert_eq!(written, 3);
        assert!(sinks.is_empty());
        // recovery replays lane 0's event first, then lane 2's in order
        let recovered = DurableStore::recover(&dir).expect("recover");
        assert_eq!(
            recovered.history,
            vec![
                Assertion { candidate: CandidateId(4), approved: false },
                Assertion { candidate: CandidateId(2), approved: true },
                Assertion { candidate: CandidateId(3), approved: false },
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_drain_is_a_no_op() {
        let dir = scratch("empty");
        let pn = ProbabilisticNetwork::new(smn_testkit::fig1_network(), sampler());
        let mut store = DurableStore::open(&dir, &pn, &[], 0).expect("open store");
        let before = store.next_seq();
        let mut sinks = LaneSinks::new();
        assert_eq!(sinks.drain_into(&mut store).expect("drain"), 0);
        assert_eq!(store.next_seq(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
