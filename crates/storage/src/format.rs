//! The versioned binary snapshot format.
//!
//! A snapshot is one self-describing buffer holding a complete
//! [`NetworkState`] image plus the session history and the write-ahead-log
//! sequence number it is current to. All integers are **little-endian**;
//! `f64` is stored as the little-endian bytes of its IEEE-754 bit
//! pattern, so round trips are bit-exact (NaN payloads included).
//! Checksums are **CRC-64/XZ** (polynomial `0x42F0E1EBA9EA3693`
//! reflected, init/xorout `!0`).
//!
//! # On-disk layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic  "SMN1SNAP"
//!      8     4  version            u32   (= 1)
//!     12     8  applied_seq        u64   last WAL seq folded into this
//!                                        snapshot (0 = none)
//!     20     4  section_count      u32   (= 9 for version 1)
//!     24  28×n  offset table       n × { id u32, offset u64, len u64,
//!                                        crc u64 }  — offsets are
//!                                        absolute, sections contiguous
//!      …     8  header_crc         u64   CRC-64 of bytes [0, here)
//!      …     …  section payloads, in table order
//! ```
//!
//! # Sections (version 1)
//!
//! | id | name       | payload |
//! |----|------------|---------|
//! | 1  | catalog    | `u64 schema_count`, then per schema `str name`, `u64 attr_count`, per attribute `str name` — re-adding in order through `CatalogBuilder` reassigns identical dense ids |
//! | 2  | graph      | `u64 vertex_count`, `u64 edge_count`, per edge `u32 a, u32 b` in stored order |
//! | 3  | candidates | `u64 count`, per candidate `u32 a, u32 b, f64 confidence` in id order |
//! | 4  | index      | `u8 one_to_one, u8 cycle`, `u64 candidate_count`, per candidate `ids pair_conflicts`, `u64 triple_count`, per triple `3 × u32` — the conflict index's *primary* data only; every dense query structure (bit masks, flattened triple tables) is re-derived on load by `ConflictIndex::from_parts` |
//! | 5  | feedback   | `u64 len`, `ids approved`, `ids disapproved` (global feedback) |
//! | 6  | config     | sampler `u64 n_samples, u64 walk_steps, u64 n_min, u64 seed, u8 anneal, u64 chains`; `u8 has_sharding`, if set `u8 enabled, u64 exact_threshold, u64 exact_cap, u8 parallel`; `f64 initial_entropy` |
//! | 7  | partition  | `u8 repr_tag` (0 = monolithic, 1 = sharded); if sharded `u64 component_count`, per component `ids members` (global ids, canonical order) |
//! | 8  | stores     | `u64 store_count` (1, or one per component), per store: *(sharded only)* shard feedback `u64 len, ids approved, ids disapproved`, then the store state: sampler config (as in section 6), `u64 candidate_count, u8 exhausted, u64 pass_epoch`, `u64 instance_count`, per instance `ids members` (ascending), `u64 count_len`, per instance `u64 visits` — the distinct-sample multiset Ω\*; the transposed matrix, dedup map and weights are re-derived on load by re-recording in order, bit-identically |
//! | 9  | history    | `u64 count`, per assertion `u32 candidate, u8 approved` in integration order |
//!
//! `str` = `u64 byte_len` + UTF-8 bytes; `ids` = `u64 count` + `count ×
//! u32`.
//!
//! # Decode discipline
//!
//! [`decode_snapshot`] never panics on any byte string. Checks run in a
//! fixed order, each with its own typed [`StorageError`] variant: magic
//! ([`BadMagic`](StorageError::BadMagic)) → version
//! ([`VersionMismatch`](StorageError::VersionMismatch)) → header CRC →
//! per-section CRC ([`ChecksumMismatch`](StorageError::ChecksumMismatch))
//! → bounds ([`TruncatedRecord`](StorageError::TruncatedRecord)) →
//! semantic validity ([`Invalid`](StorageError::Invalid), mostly
//! delegated to `ProbabilisticNetwork::from_state`). Declared lengths
//! are checked against the remaining bytes *before* any allocation, so a
//! hostile length cannot force an out-of-memory.
//!
//! `encode(decode(b)) == b` for every buffer `b` this module produced:
//! the encoder is canonical (no padding, no map iteration order), which
//! is what the byte-identical re-save property in the test suites pins.

use crate::error::StorageError;
use smn_constraints::ConstraintConfig;
use smn_core::feedback::Assertion;
use smn_core::persist::{
    CandidateState, FeedbackState, NetworkState, ReprState, SchemaState, ShardState, StoreState,
};
use smn_core::sampling::SamplerConfig;
use smn_core::shard::ShardingConfig;
use smn_schema::CandidateId;

/// Snapshot magic bytes.
pub const SNAP_MAGIC: [u8; 8] = *b"SMN1SNAP";
/// The snapshot format version this build writes and reads.
pub const SNAP_VERSION: u32 = 1;

const SEC_CATALOG: u32 = 1;
const SEC_GRAPH: u32 = 2;
const SEC_CANDIDATES: u32 = 3;
const SEC_INDEX: u32 = 4;
const SEC_FEEDBACK: u32 = 5;
const SEC_CONFIG: u32 = 6;
const SEC_PARTITION: u32 = 7;
const SEC_STORES: u32 = 8;
const SEC_HISTORY: u32 = 9;
const SECTION_IDS: [u32; 9] = [
    SEC_CATALOG,
    SEC_GRAPH,
    SEC_CANDIDATES,
    SEC_INDEX,
    SEC_FEEDBACK,
    SEC_CONFIG,
    SEC_PARTITION,
    SEC_STORES,
    SEC_HISTORY,
];

// ---------------------------------------------------------------- CRC-64

const fn crc64_table() -> [u64; 256] {
    // CRC-64/XZ: reflected polynomial of 0x42F0E1EBA9EA3693
    let poly = 0xC96C_5795_D787_0F42u64;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ poly } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of a byte string.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ------------------------------------------------------------- encoding

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub(crate) fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_ids(buf: &mut Vec<u8>, ids: &[u32]) {
    put_u64(buf, ids.len() as u64);
    for &id in ids {
        put_u32(buf, id);
    }
}

fn put_sampler(buf: &mut Vec<u8>, c: &SamplerConfig) {
    put_u64(buf, c.n_samples as u64);
    put_u64(buf, c.walk_steps as u64);
    put_u64(buf, c.n_min as u64);
    put_u64(buf, c.seed);
    put_bool(buf, c.anneal);
    put_u64(buf, c.chains as u64);
}

fn put_feedback(buf: &mut Vec<u8>, fb: &FeedbackState) {
    put_u64(buf, fb.len as u64);
    put_ids(buf, &fb.approved);
    put_ids(buf, &fb.disapproved);
}

fn put_store(buf: &mut Vec<u8>, s: &StoreState) {
    put_sampler(buf, &s.config);
    put_u64(buf, s.candidate_count as u64);
    put_bool(buf, s.exhausted);
    put_u64(buf, s.pass_epoch);
    put_u64(buf, s.samples.len() as u64);
    for instance in &s.samples {
        put_ids(buf, instance);
    }
    put_u64(buf, s.counts.len() as u64);
    for &c in &s.counts {
        put_u64(buf, c);
    }
}

// ------------------------------------------------------------- decoding

/// Bounds-checked little-endian reader. Every take is checked against
/// the remaining bytes and fails with
/// [`TruncatedRecord`](StorageError::TruncatedRecord) — the decoder
/// cannot be made to read out of bounds or panic.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::TruncatedRecord {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, StorageError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn bool(&mut self, what: &'static str) -> Result<bool, StorageError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(StorageError::Invalid(format!("{what}: boolean byte {v}"))),
        }
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u64` length that must be addressable: it is checked against the
    /// remaining payload (`elem_size` bytes per element) *before* any
    /// allocation, so hostile lengths cannot balloon memory.
    pub(crate) fn len(
        &mut self,
        elem_size: usize,
        what: &'static str,
    ) -> Result<usize, StorageError> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw)
            .map_err(|_| StorageError::Invalid(format!("{what}: length {raw} overflows")))?;
        let needed = n.checked_mul(elem_size).ok_or_else(|| {
            StorageError::Invalid(format!("{what}: length {n} × {elem_size} overflows"))
        })?;
        if needed > self.remaining() {
            return Err(StorageError::TruncatedRecord {
                what,
                needed,
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String, StorageError> {
        let n = self.len(1, what)?;
        String::from_utf8(self.take(n, what)?.to_vec())
            .map_err(|_| StorageError::Invalid(format!("{what}: non-UTF-8 name")))
    }

    fn ids(&mut self, what: &'static str) -> Result<Vec<u32>, StorageError> {
        let n = self.len(4, what)?;
        (0..n).map(|_| self.u32(what)).collect()
    }

    fn sampler(&mut self) -> Result<SamplerConfig, StorageError> {
        Ok(SamplerConfig {
            n_samples: self.u64("sampler n_samples")? as usize,
            walk_steps: self.u64("sampler walk_steps")? as usize,
            n_min: self.u64("sampler n_min")? as usize,
            seed: self.u64("sampler seed")?,
            anneal: self.bool("sampler anneal")?,
            chains: self.u64("sampler chains")? as usize,
        })
    }

    fn feedback(&mut self) -> Result<FeedbackState, StorageError> {
        Ok(FeedbackState {
            len: self.u64("feedback len")? as usize,
            approved: self.ids("feedback approved")?,
            disapproved: self.ids("feedback disapproved")?,
        })
    }

    fn store(&mut self) -> Result<StoreState, StorageError> {
        let config = self.sampler()?;
        let candidate_count = self.u64("store candidate_count")? as usize;
        let exhausted = self.bool("store exhausted")?;
        let pass_epoch = self.u64("store pass_epoch")?;
        let n = self.len(8, "store instances")?;
        let samples = (0..n).map(|_| self.ids("store instance")).collect::<Result<Vec<_>, _>>()?;
        let m = self.len(8, "store counts")?;
        let counts = (0..m).map(|_| self.u64("store count")).collect::<Result<Vec<_>, _>>()?;
        Ok(StoreState { config, candidate_count, exhausted, pass_epoch, samples, counts })
    }

    fn finish(self, what: &'static str) -> Result<(), StorageError> {
        if self.remaining() != 0 {
            return Err(StorageError::Invalid(format!(
                "{what}: {} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------- shard state

/// Encodes one shard's plain-data state — its local feedback and sample
/// store, exactly the per-shard slice of snapshot section 8 — as a
/// standalone payload. This is the shard-shipment encoding of the
/// distributed mode: migrating a component between shard servers ships
/// these bytes inside a [`frame`](crate::frame).
pub fn encode_shard_state(s: &ShardState) -> Vec<u8> {
    let mut b = Vec::new();
    put_feedback(&mut b, &s.feedback);
    put_store(&mut b, &s.store);
    b
}

/// Decodes a standalone shard-state payload. Strict and panic-free on
/// any byte string; trailing bytes are an error.
pub fn decode_shard_state(bytes: &[u8]) -> Result<ShardState, StorageError> {
    let mut d = Dec::new(bytes);
    let feedback = d.feedback()?;
    let store = d.store()?;
    d.finish("shard state")?;
    Ok(ShardState { feedback, store })
}

// ------------------------------------------------------------- snapshot

/// Encodes a network state image, the session history and the WAL
/// sequence number it is current to into one snapshot buffer.
pub fn encode_snapshot(state: &NetworkState, history: &[Assertion], applied_seq: u64) -> Vec<u8> {
    let sections: [Vec<u8>; 9] = [
        enc_catalog(state),
        enc_graph(state),
        enc_candidates(state),
        enc_index(state),
        {
            let mut b = Vec::new();
            put_feedback(&mut b, &state.feedback);
            b
        },
        enc_config(state),
        enc_partition(state),
        enc_stores(state),
        enc_history(history),
    ];
    // 8 magic + 4 version + 8 applied_seq + 4 count + table + 8 header crc
    let header_len = 24 + SECTION_IDS.len() * 28 + 8;
    let mut buf = Vec::with_capacity(header_len + sections.iter().map(Vec::len).sum::<usize>());
    buf.extend_from_slice(&SNAP_MAGIC);
    put_u32(&mut buf, SNAP_VERSION);
    put_u64(&mut buf, applied_seq);
    put_u32(&mut buf, SECTION_IDS.len() as u32);
    let mut offset = header_len as u64;
    for (id, payload) in SECTION_IDS.iter().zip(&sections) {
        put_u32(&mut buf, *id);
        put_u64(&mut buf, offset);
        put_u64(&mut buf, payload.len() as u64);
        put_u64(&mut buf, crc64(payload));
        offset += payload.len() as u64;
    }
    let header_crc = crc64(&buf);
    put_u64(&mut buf, header_crc);
    debug_assert_eq!(buf.len(), header_len);
    for payload in &sections {
        buf.extend_from_slice(payload);
    }
    buf
}

fn enc_catalog(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64(&mut b, state.schemas.len() as u64);
    for s in &state.schemas {
        put_str(&mut b, &s.name);
        put_u64(&mut b, s.attributes.len() as u64);
        for a in &s.attributes {
            put_str(&mut b, a);
        }
    }
    b
}

fn enc_graph(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64(&mut b, state.graph_vertices as u64);
    put_u64(&mut b, state.graph_edges.len() as u64);
    for &(x, y) in &state.graph_edges {
        put_u32(&mut b, x);
        put_u32(&mut b, y);
    }
    b
}

fn enc_candidates(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64(&mut b, state.candidates.len() as u64);
    for c in &state.candidates {
        put_u32(&mut b, c.a);
        put_u32(&mut b, c.b);
        put_f64(&mut b, c.confidence);
    }
    b
}

fn enc_index(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    put_bool(&mut b, state.constraints.one_to_one);
    put_bool(&mut b, state.constraints.cycle);
    put_u64(&mut b, state.pair_conflicts.len() as u64);
    for list in &state.pair_conflicts {
        put_ids(&mut b, list);
    }
    put_u64(&mut b, state.triples.len() as u64);
    for t in &state.triples {
        for &x in t {
            put_u32(&mut b, x);
        }
    }
    b
}

fn enc_config(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    put_sampler(&mut b, &state.sampler);
    match &state.sharding {
        None => put_bool(&mut b, false),
        Some(s) => {
            put_bool(&mut b, true);
            put_bool(&mut b, s.enabled);
            put_u64(&mut b, s.exact_threshold as u64);
            put_u64(&mut b, s.exact_cap as u64);
            put_bool(&mut b, s.parallel);
        }
    }
    put_f64(&mut b, state.initial_entropy);
    b
}

fn enc_partition(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    match &state.repr {
        ReprState::Monolithic(_) => put_u8_tag(&mut b, 0),
        ReprState::Sharded { members, .. } => {
            put_u8_tag(&mut b, 1);
            put_u64(&mut b, members.len() as u64);
            for m in members {
                put_ids(&mut b, m);
            }
        }
    }
    b
}

fn put_u8_tag(buf: &mut Vec<u8>, tag: u8) {
    buf.push(tag);
}

fn enc_stores(state: &NetworkState) -> Vec<u8> {
    let mut b = Vec::new();
    match &state.repr {
        ReprState::Monolithic(store) => {
            put_u64(&mut b, 1);
            put_store(&mut b, store);
        }
        ReprState::Sharded { shards, .. } => {
            put_u64(&mut b, shards.len() as u64);
            for s in shards {
                put_feedback(&mut b, &s.feedback);
                put_store(&mut b, &s.store);
            }
        }
    }
    b
}

fn enc_history(history: &[Assertion]) -> Vec<u8> {
    let mut b = Vec::new();
    put_u64(&mut b, history.len() as u64);
    for a in history {
        put_u32(&mut b, a.candidate.0);
        put_bool(&mut b, a.approved);
    }
    b
}

/// Decodes a snapshot buffer back to its state image, history and
/// applied WAL sequence number. Strict: any anomaly — wrong magic, an
/// unknown version, a failed checksum, bytes that end early, trailing
/// garbage inside a section — is a typed error; nothing panics.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(NetworkState, Vec<Assertion>, u64), StorageError> {
    let mut dec = Dec::new(bytes);
    let magic = dec.take(8, "snapshot magic")?;
    if magic != SNAP_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StorageError::BadMagic { expected: SNAP_MAGIC, found });
    }
    let version = dec.u32("snapshot version")?;
    if version != SNAP_VERSION {
        return Err(StorageError::VersionMismatch { expected: SNAP_VERSION, found: version });
    }
    let applied_seq = dec.u64("snapshot applied_seq")?;
    let section_count = dec.u32("snapshot section count")? as usize;
    if section_count != SECTION_IDS.len() {
        return Err(StorageError::Invalid(format!(
            "version {SNAP_VERSION} snapshot must carry {} sections, found {section_count}",
            SECTION_IDS.len()
        )));
    }
    let mut table = Vec::with_capacity(section_count);
    for expected_id in SECTION_IDS {
        let id = dec.u32("section table id")?;
        if id != expected_id {
            return Err(StorageError::Invalid(format!(
                "section table: expected section {expected_id}, found {id}"
            )));
        }
        let offset = dec.u64("section table offset")? as usize;
        let len = dec.u64("section table len")? as usize;
        let crc = dec.u64("section table crc")?;
        table.push((offset, len, crc));
    }
    let header_end = 24 + section_count * 28;
    let stored_header_crc = dec.u64("header crc")?;
    let computed_header_crc = crc64(&bytes[..header_end]);
    if stored_header_crc != computed_header_crc {
        return Err(StorageError::ChecksumMismatch {
            what: "header",
            expected: stored_header_crc,
            found: computed_header_crc,
        });
    }
    let mut sections = Vec::with_capacity(section_count);
    for &(offset, len, crc) in &table {
        let end = offset.checked_add(len).ok_or_else(|| {
            StorageError::Invalid(format!("section bounds {offset}+{len} overflow"))
        })?;
        if end > bytes.len() {
            return Err(StorageError::TruncatedRecord {
                what: "section payload",
                needed: end,
                available: bytes.len(),
            });
        }
        let payload = &bytes[offset..end];
        let found = crc64(payload);
        if found != crc {
            return Err(StorageError::ChecksumMismatch { what: "section", expected: crc, found });
        }
        sections.push(payload);
    }

    let schemas = dec_catalog(sections[0])?;
    let (graph_vertices, graph_edges) = dec_graph(sections[1])?;
    let candidates = dec_candidates(sections[2])?;
    let (constraints, pair_conflicts, triples) = dec_index(sections[3])?;
    let feedback = {
        let mut d = Dec::new(sections[4]);
        let fb = d.feedback()?;
        d.finish("feedback section")?;
        fb
    };
    let (sampler, sharding, initial_entropy) = dec_config(sections[5])?;
    let partition = dec_partition(sections[6])?;
    let repr = dec_stores(sections[7], partition)?;
    let history = dec_history(sections[8])?;

    let state = NetworkState {
        schemas,
        graph_vertices,
        graph_edges,
        candidates,
        constraints,
        pair_conflicts,
        triples,
        feedback,
        sampler,
        sharding,
        initial_entropy,
        repr,
    };
    Ok((state, history, applied_seq))
}

fn dec_catalog(bytes: &[u8]) -> Result<Vec<SchemaState>, StorageError> {
    let mut d = Dec::new(bytes);
    let n = d.len(8, "catalog schemas")?;
    let mut schemas = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str("schema name")?;
        let m = d.len(8, "schema attributes")?;
        let attributes = (0..m).map(|_| d.str("attribute name")).collect::<Result<Vec<_>, _>>()?;
        schemas.push(SchemaState { name, attributes });
    }
    d.finish("catalog section")?;
    Ok(schemas)
}

fn dec_graph(bytes: &[u8]) -> Result<(usize, Vec<(u32, u32)>), StorageError> {
    let mut d = Dec::new(bytes);
    let vertices = d.u64("graph vertices")? as usize;
    let n = d.len(8, "graph edges")?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push((d.u32("edge endpoint")?, d.u32("edge endpoint")?));
    }
    d.finish("graph section")?;
    Ok((vertices, edges))
}

fn dec_candidates(bytes: &[u8]) -> Result<Vec<CandidateState>, StorageError> {
    let mut d = Dec::new(bytes);
    let n = d.len(16, "candidates")?;
    let mut candidates = Vec::with_capacity(n);
    for _ in 0..n {
        candidates.push(CandidateState {
            a: d.u32("candidate endpoint")?,
            b: d.u32("candidate endpoint")?,
            confidence: d.f64("candidate confidence")?,
        });
    }
    d.finish("candidates section")?;
    Ok(candidates)
}

type IndexParts = (ConstraintConfig, Vec<Vec<u32>>, Vec<[u32; 3]>);

fn dec_index(bytes: &[u8]) -> Result<IndexParts, StorageError> {
    let mut d = Dec::new(bytes);
    let config =
        ConstraintConfig { one_to_one: d.bool("index one_to_one")?, cycle: d.bool("index cycle")? };
    let n = d.len(8, "index posting lists")?;
    let pair_conflicts =
        (0..n).map(|_| d.ids("index posting list")).collect::<Result<Vec<_>, _>>()?;
    let t = d.len(12, "index triples")?;
    let mut triples = Vec::with_capacity(t);
    for _ in 0..t {
        triples.push([d.u32("index triple")?, d.u32("index triple")?, d.u32("index triple")?]);
    }
    d.finish("index section")?;
    Ok((config, pair_conflicts, triples))
}

type ConfigParts = (SamplerConfig, Option<ShardingConfig>, f64);

fn dec_config(bytes: &[u8]) -> Result<ConfigParts, StorageError> {
    let mut d = Dec::new(bytes);
    let sampler = d.sampler()?;
    let sharding = if d.bool("config has_sharding")? {
        Some(ShardingConfig {
            enabled: d.bool("sharding enabled")?,
            exact_threshold: d.u64("sharding exact_threshold")? as usize,
            exact_cap: d.u64("sharding exact_cap")? as usize,
            parallel: d.bool("sharding parallel")?,
        })
    } else {
        None
    };
    let initial_entropy = d.f64("config initial_entropy")?;
    d.finish("config section")?;
    Ok((sampler, sharding, initial_entropy))
}

fn dec_partition(bytes: &[u8]) -> Result<Option<Vec<Vec<u32>>>, StorageError> {
    let mut d = Dec::new(bytes);
    let tag = d.u8("partition tag")?;
    let partition = match tag {
        0 => None,
        1 => {
            let n = d.len(8, "partition components")?;
            Some((0..n).map(|_| d.ids("partition members")).collect::<Result<Vec<_>, _>>()?)
        }
        v => return Err(StorageError::Invalid(format!("partition tag {v}"))),
    };
    d.finish("partition section")?;
    Ok(partition)
}

fn dec_stores(bytes: &[u8], partition: Option<Vec<Vec<u32>>>) -> Result<ReprState, StorageError> {
    let mut d = Dec::new(bytes);
    let n = d.len(1, "stores")?;
    let repr = match partition {
        None => {
            if n != 1 {
                return Err(StorageError::Invalid(format!(
                    "monolithic snapshot must carry exactly one store, found {n}"
                )));
            }
            ReprState::Monolithic(d.store()?)
        }
        Some(members) => {
            if n != members.len() {
                return Err(StorageError::Invalid(format!(
                    "{} components but {n} shard stores",
                    members.len()
                )));
            }
            let shards = (0..n)
                .map(|_| Ok(ShardState { feedback: d.feedback()?, store: d.store()? }))
                .collect::<Result<Vec<_>, StorageError>>()?;
            ReprState::Sharded { members, shards }
        }
    };
    d.finish("stores section")?;
    Ok(repr)
}

fn dec_history(bytes: &[u8]) -> Result<Vec<Assertion>, StorageError> {
    let mut d = Dec::new(bytes);
    let n = d.len(5, "history")?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        history.push(Assertion {
            candidate: CandidateId(d.u32("history candidate")?),
            approved: d.bool("history approved")?,
        });
    }
    d.finish("history section")?;
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_the_xz_check_value() {
        // the standard check string for CRC-64/XZ
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn header_layout_constants_agree() {
        let state = NetworkState {
            schemas: vec![],
            graph_vertices: 0,
            graph_edges: vec![],
            candidates: vec![],
            constraints: ConstraintConfig::default(),
            pair_conflicts: vec![],
            triples: vec![],
            feedback: FeedbackState { len: 0, approved: vec![], disapproved: vec![] },
            sampler: SamplerConfig::default(),
            sharding: None,
            initial_entropy: 0.0,
            repr: ReprState::Monolithic(StoreState {
                config: SamplerConfig::default(),
                candidate_count: 0,
                exhausted: true,
                pass_epoch: 0,
                samples: vec![],
                counts: vec![],
            }),
        };
        let bytes = encode_snapshot(&state, &[], 42);
        let (decoded, history, seq) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(history, vec![]);
        assert_eq!(seq, 42);
        assert_eq!(encode_snapshot(&decoded, &history, seq), bytes, "canonical encoder");
    }
}
