//! The append-only write-ahead log.
//!
//! A WAL buffer is a fixed header followed by self-checking records, one
//! per applied [`NetworkEvent`]:
//!
//! ```text
//! header:  magic "SMN1WAL\0" (8 bytes), version u32 (= 1)
//! record:  payload_len u32, payload_crc u64 (CRC-64/XZ), payload
//! payload: seq u64, tag u8, fields
//!          tag 1 = Assert : candidate u32, approved u8
//!          tag 2 = Extend : a u32, b u32, confidence f64 (IEEE bits)
//!          tag 3 = Retire : candidate u32
//! ```
//!
//! Sequence numbers are global and strictly increasing across log
//! rotations; a snapshot stores the last sequence it folded in
//! (`applied_seq`), so recovery replays exactly the records with
//! `seq > applied_seq`.
//!
//! Two decoders with different contracts:
//!
//! * [`decode_records`] is **strict** — any anomaly is a typed
//!   [`StorageError`]. Use it when the log is supposed to be intact
//!   (round-trip tests, integrity audits).
//! * [`decode_prefix`] is **tolerant** — it returns every record up to
//!   the first anomaly plus the error that stopped it. This is the
//!   recovery contract: a crash tears the *tail* of the log, and
//!   everything before the tear is still durable. A record whose
//!   checksum fails, whose declared length runs past the buffer, or
//!   whose payload is malformed ends the readable prefix; it is never
//!   skipped over (anything after a tear is untrustworthy).

use crate::error::StorageError;
use crate::format::{crc64, put_f64, put_u32, put_u64, Dec};
use smn_core::persist::{EventSink, NetworkEvent};
use smn_schema::{AttributeId, CandidateId};

/// WAL magic bytes.
pub const WAL_MAGIC: [u8; 8] = *b"SMN1WAL\0";
/// The WAL format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;

const TAG_ASSERT: u8 = 1;
const TAG_EXTEND: u8 = 2;
const TAG_RETIRE: u8 = 3;

/// Largest well-formed record payload (a defensive bound; real payloads
/// are ≤ 21 bytes).
const MAX_PAYLOAD: usize = 1 << 16;

/// The fixed WAL file header.
pub fn wal_header() -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&WAL_MAGIC);
    put_u32(&mut buf, WAL_VERSION);
    buf
}

/// Appends one framed record (`seq`, `event`) to `buf`.
pub fn encode_record_into(buf: &mut Vec<u8>, seq: u64, event: &NetworkEvent) {
    let mut payload = Vec::with_capacity(21);
    put_u64(&mut payload, seq);
    match *event {
        NetworkEvent::Assert { candidate, approved } => {
            payload.push(TAG_ASSERT);
            put_u32(&mut payload, candidate.0);
            payload.push(approved as u8);
        }
        NetworkEvent::Extend { a, b, confidence } => {
            payload.push(TAG_EXTEND);
            put_u32(&mut payload, a.0);
            put_u32(&mut payload, b.0);
            put_f64(&mut payload, confidence);
        }
        NetworkEvent::Retire { candidate } => {
            payload.push(TAG_RETIRE);
            put_u32(&mut payload, candidate.0);
        }
    }
    put_u32(buf, payload.len() as u32);
    put_u64(buf, crc64(&payload));
    buf.extend_from_slice(&payload);
}

/// Encodes exactly one framed record as a standalone buffer — the
/// command-stream payload of the distributed mode (one event per wire
/// frame, same bytes a WAL append would write).
pub fn encode_record(seq: u64, event: &NetworkEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(33);
    encode_record_into(&mut buf, seq, event);
    buf
}

/// Decodes exactly one standalone framed record (the inverse of
/// [`encode_record`]). Strict: trailing bytes, a failed checksum or a
/// malformed payload are typed errors; an empty buffer is
/// [`TruncatedRecord`](StorageError::TruncatedRecord).
pub fn decode_record(bytes: &[u8]) -> Result<(u64, NetworkEvent), StorageError> {
    let mut dec = Dec::new(bytes);
    let record = next_record(&mut dec)?.ok_or(StorageError::TruncatedRecord {
        what: "wal record frame",
        needed: 12,
        available: 0,
    })?;
    if dec.remaining() != 0 {
        return Err(StorageError::Invalid(format!(
            "wal record: {} trailing bytes after the frame",
            dec.remaining()
        )));
    }
    Ok(record)
}

fn decode_payload(payload: &[u8]) -> Result<(u64, NetworkEvent), StorageError> {
    let mut d = Dec::new(payload);
    let seq = d.u64("wal record seq")?;
    let event = match d.u8("wal record tag")? {
        TAG_ASSERT => NetworkEvent::Assert {
            candidate: CandidateId(d.u32("wal assert candidate")?),
            approved: d.bool("wal assert approved")?,
        },
        TAG_EXTEND => NetworkEvent::Extend {
            a: AttributeId(d.u32("wal extend endpoint")?),
            b: AttributeId(d.u32("wal extend endpoint")?),
            confidence: d.f64("wal extend confidence")?,
        },
        TAG_RETIRE => {
            NetworkEvent::Retire { candidate: CandidateId(d.u32("wal retire candidate")?) }
        }
        t => return Err(StorageError::Invalid(format!("wal record tag {t}"))),
    };
    if d.remaining() != 0 {
        return Err(StorageError::Invalid(format!(
            "wal record: {} trailing payload bytes",
            d.remaining()
        )));
    }
    Ok((seq, event))
}

fn decode_header(dec: &mut Dec<'_>) -> Result<(), StorageError> {
    let magic = dec.take(8, "wal magic")?;
    if magic != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(StorageError::BadMagic { expected: WAL_MAGIC, found });
    }
    let version = dec.u32("wal version")?;
    if version != WAL_VERSION {
        return Err(StorageError::VersionMismatch { expected: WAL_VERSION, found: version });
    }
    Ok(())
}

fn next_record(dec: &mut Dec<'_>) -> Result<Option<(u64, NetworkEvent)>, StorageError> {
    if dec.remaining() == 0 {
        return Ok(None);
    }
    let payload_len = dec.u32("wal record frame")? as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(StorageError::Invalid(format!(
            "wal record payload of {payload_len} bytes exceeds the format bound"
        )));
    }
    let stored_crc = dec.u64("wal record frame")?;
    let payload = dec.take(payload_len, "wal record payload")?;
    let found = crc64(payload);
    if found != stored_crc {
        return Err(StorageError::ChecksumMismatch {
            what: "wal record",
            expected: stored_crc,
            found,
        });
    }
    decode_payload(payload).map(Some)
}

/// Strictly decodes a whole WAL buffer. Any anomaly anywhere — header,
/// frame, checksum, payload, trailing bytes — is a typed error.
pub fn decode_records(bytes: &[u8]) -> Result<Vec<(u64, NetworkEvent)>, StorageError> {
    let mut dec = Dec::new(bytes);
    decode_header(&mut dec)?;
    let mut records = Vec::new();
    while let Some(record) = next_record(&mut dec)? {
        records.push(record);
    }
    Ok(records)
}

/// Tolerantly decodes the longest intact prefix of a WAL buffer: every
/// record before the first anomaly, plus the error that ended the scan
/// (`None` for a clean end). A torn header yields an empty prefix. This
/// function never panics on any byte string.
pub fn decode_prefix(bytes: &[u8]) -> (Vec<(u64, NetworkEvent)>, Option<StorageError>) {
    let mut dec = Dec::new(bytes);
    if let Err(e) = decode_header(&mut dec) {
        return (Vec::new(), Some(e));
    }
    let mut records = Vec::new();
    loop {
        match next_record(&mut dec) {
            Ok(Some(record)) => records.push(record),
            Ok(None) => return (records, None),
            Err(e) => return (records, Some(e)),
        }
    }
}

/// An in-memory WAL: the byte image of a log file, plus the sequence
/// counter handing out record numbers. Implements
/// [`EventSink`], so it can be attached directly to a
/// [`Session`](smn_core::Session) via `set_journal`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalBuffer {
    buf: Vec<u8>,
    next_seq: u64,
}

impl WalBuffer {
    /// An empty log whose first record will carry `next_seq` — use
    /// `applied_seq + 1` of the snapshot the log continues from (or `1`
    /// for a fresh store).
    pub fn new(next_seq: u64) -> Self {
        Self { buf: wal_header(), next_seq }
    }

    /// Appends one event; returns the sequence number it was assigned.
    pub fn append(&mut self, event: &NetworkEvent) -> u64 {
        let seq = self.next_seq;
        encode_record_into(&mut self.buf, seq, event);
        self.next_seq += 1;
        seq
    }

    /// The byte image (header + records) accumulated so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of record bytes (excluding the fixed header).
    pub fn record_bytes(&self) -> usize {
        self.buf.len() - 12
    }
}

impl EventSink for WalBuffer {
    fn record(&mut self, event: &NetworkEvent) {
        self.append(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<NetworkEvent> {
        vec![
            NetworkEvent::Assert { candidate: CandidateId(3), approved: true },
            NetworkEvent::Extend { a: AttributeId(1), b: AttributeId(7), confidence: 0.25 },
            NetworkEvent::Retire { candidate: CandidateId(0) },
            NetworkEvent::Assert { candidate: CandidateId(2), approved: false },
        ]
    }

    #[test]
    fn records_round_trip_in_order() {
        let mut wal = WalBuffer::new(5);
        for e in sample_events() {
            wal.append(&e);
        }
        let records = decode_records(wal.bytes()).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records.iter().map(|r| r.0).collect::<Vec<_>>(), vec![5, 6, 7, 8]);
        assert_eq!(records.iter().map(|r| r.1).collect::<Vec<_>>(), sample_events());
        let (prefix, err) = decode_prefix(wal.bytes());
        assert_eq!(prefix, records);
        assert_eq!(err, None);
    }

    #[test]
    fn a_torn_tail_preserves_the_prefix() {
        let mut wal = WalBuffer::new(1);
        let mut boundaries = vec![wal.bytes().len()];
        for e in sample_events() {
            wal.append(&e);
            boundaries.push(wal.bytes().len());
        }
        let full = wal.bytes();
        let whole = decode_records(full).unwrap();
        for cut in 12..=full.len() {
            let (prefix, err) = decode_prefix(&full[..cut]);
            // exactly the records fully written before the cut survive
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(prefix, whole[..complete], "prefix at cut {cut}");
            // a cut mid-record reports its anomaly; a boundary cut is clean
            assert_eq!(err.is_none(), boundaries.contains(&cut), "anomaly report at cut {cut}");
        }
    }
}
