//! The file-backed durable store: snapshot generations + WAL rotation.
//!
//! A store is a directory of generation-numbered file pairs:
//!
//! ```text
//! snapshot-0000000007.smn   the generation-7 snapshot
//! wal-0000000007.log        the log continuing that snapshot
//! ```
//!
//! Opening a store publishes a fresh generation (snapshot + empty log);
//! [`publish`](DurableStore::publish) between reconciliation rounds
//! rotates to the next one. Snapshot writes are atomic — temp file,
//! `sync_all`, rename, directory sync — so a crash mid-publish leaves
//! the previous generation intact; the previous generation's pair is
//! kept as a fallback against a snapshot torn *after* the rename (e.g.
//! media corruption), and older ones are pruned.
//!
//! [`DurableStore::recover`] walks generations newest-first, takes the
//! first snapshot that decodes, and replays every WAL of that generation
//! and later (ascending, with the `seq > applied_seq` filter), so a
//! corrupt newest snapshot degrades to *older snapshot + longer replay*,
//! never to data loss.

use crate::error::StorageError;
use crate::recover::{replay, Recovered};
use crate::{save_with_history, wal};
use smn_core::feedback::Assertion;
use smn_core::persist::{EventSink, NetworkEvent};
use smn_core::ProbabilisticNetwork;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A directory-backed durable store for one probabilistic network.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    generation: u64,
    wal_file: File,
    next_seq: u64,
    /// Mirrors the on-disk current WAL so `publish` can verify nothing
    /// was lost and tests can introspect; cheap (tens of bytes/record).
    wal_image: Vec<u8>,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:010}.smn"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:010}.log"))
}

/// Parses `<stem>-<generation>.<ext>` names produced by this module.
fn parse_generation(name: &str, stem: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(stem)?.strip_prefix('-')?;
    rest.strip_suffix(ext)?.strip_suffix('.')?.parse().ok()
}

fn list_generations(dir: &Path, stem: &str, ext: &str) -> Result<Vec<u64>, StorageError> {
    let mut generations = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(generation) = parse_generation(name, stem, ext) {
                generations.push(generation);
            }
        }
    }
    generations.sort_unstable();
    Ok(generations)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    // directory fsync makes the rename itself durable on unix; other
    // platforms get a best-effort no-op
    if cfg!(unix) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Writes generation `g`: the snapshot atomically, then a fresh WAL
/// holding only the header. Returns the open WAL file and its image.
fn write_generation(
    dir: &Path,
    generation: u64,
    pn: &ProbabilisticNetwork,
    history: &[Assertion],
    applied_seq: u64,
) -> Result<(File, Vec<u8>), StorageError> {
    write_atomic(&snapshot_path(dir, generation), &save_with_history(pn, history, applied_seq))?;
    let header = wal::wal_header();
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(wal_path(dir, generation))?;
    f.write_all(&header)?;
    f.sync_all()?;
    sync_dir(dir)?;
    Ok((f, header))
}

impl DurableStore {
    /// Opens (creating if needed) a store directory and publishes a
    /// fresh generation for `pn`: a snapshot carrying `history` and
    /// `applied_seq`, plus an empty WAL whose first record will be
    /// `applied_seq + 1`. Use `applied_seq` from a prior
    /// [`recover`](DurableStore::recover) to resume an existing store,
    /// or `0` for a new one.
    pub fn open(
        dir: &Path,
        pn: &ProbabilisticNetwork,
        history: &[Assertion],
        applied_seq: u64,
    ) -> Result<Self, StorageError> {
        fs::create_dir_all(dir)?;
        let generation = list_generations(dir, "snapshot", "smn")?
            .last()
            .map_or(0, |&g| g + 1)
            .max(list_generations(dir, "wal", "log")?.last().map_or(0, |&g| g + 1));
        let (wal_file, wal_image) = write_generation(dir, generation, pn, history, applied_seq)?;
        let store = Self {
            dir: dir.to_path_buf(),
            generation,
            wal_file,
            next_seq: applied_seq + 1,
            wal_image,
        };
        store.prune(generation)?;
        Ok(store)
    }

    /// Removes snapshot/WAL pairs older than `generation - 1`: the
    /// current pair plus one fallback generation are kept.
    fn prune(&self, generation: u64) -> Result<(), StorageError> {
        let keep_from = generation.saturating_sub(1);
        for g in list_generations(&self.dir, "snapshot", "smn")? {
            if g < keep_from {
                fs::remove_file(snapshot_path(&self.dir, g))?;
            }
        }
        for g in list_generations(&self.dir, "wal", "log")? {
            if g < keep_from {
                fs::remove_file(wal_path(&self.dir, g))?;
            }
        }
        Ok(())
    }

    /// Appends one event to the current WAL and flushes it to the file;
    /// returns the assigned sequence number. Call
    /// [`sync`](DurableStore::sync) to force it to media.
    pub fn append(&mut self, event: &NetworkEvent) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(33);
        wal::encode_record_into(&mut frame, seq, event);
        self.wal_file.write_all(&frame)?;
        self.wal_file.flush()?;
        self.wal_image.extend_from_slice(&frame);
        self.next_seq += 1;
        Ok(seq)
    }

    /// Forces the current WAL to stable media (`fsync`).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        Ok(self.wal_file.sync_data()?)
    }

    /// Publishes the next snapshot generation for `pn` (which must have
    /// every appended event applied) and rotates the WAL: the new
    /// snapshot carries `applied_seq` = the last appended sequence, the
    /// new log starts right after it, and generations older than the
    /// previous one are pruned. Returns the new generation number.
    pub fn publish(
        &mut self,
        pn: &ProbabilisticNetwork,
        history: &[Assertion],
    ) -> Result<u64, StorageError> {
        self.sync()?;
        let generation = self.generation + 1;
        let applied_seq = self.next_seq - 1;
        let (wal_file, wal_image) =
            write_generation(&self.dir, generation, pn, history, applied_seq)?;
        self.generation = generation;
        self.wal_file = wal_file;
        self.wal_image = wal_image;
        self.prune(generation)?;
        Ok(generation)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sequence number the next appended event will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The byte image of the current WAL as appended so far.
    pub fn wal_image(&self) -> &[u8] {
        &self.wal_image
    }

    /// Recovers the newest durable state from a store directory: the
    /// newest *decodable* snapshot, plus the intact prefix of every WAL
    /// of its generation and later, replayed in order. Fails only when
    /// no snapshot in the directory decodes.
    pub fn recover(dir: &Path) -> Result<Recovered, StorageError> {
        let generations = list_generations(dir, "snapshot", "smn")?;
        let mut last_error = StorageError::Io(format!("no snapshot found in {}", dir.display()));
        for &generation in generations.iter().rev() {
            let bytes = match fs::read(snapshot_path(dir, generation)) {
                Ok(b) => b,
                Err(e) => {
                    last_error = e.into();
                    continue;
                }
            };
            let decoded = match crate::format::decode_snapshot(&bytes) {
                Ok(d) => d,
                Err(e) => {
                    last_error = e;
                    continue;
                }
            };
            let (state, history, applied_seq) = decoded;
            let network = match ProbabilisticNetwork::from_state(&state) {
                Ok(n) => n,
                Err(reason) => {
                    last_error = StorageError::Invalid(reason);
                    continue;
                }
            };
            // chain every log from this snapshot's generation on; a tear
            // in any of them ends the trustworthy suffix
            let mut records = Vec::new();
            let mut wal_error = None;
            for wal_gen in list_generations(dir, "wal", "log")? {
                if wal_gen < generation {
                    continue;
                }
                let wal_bytes = match fs::read(wal_path(dir, wal_gen)) {
                    Ok(b) => b,
                    Err(e) => {
                        wal_error = Some(StorageError::from(e));
                        break;
                    }
                };
                let (prefix, err) = wal::decode_prefix(&wal_bytes);
                records.extend(prefix);
                if let Some(e) = err {
                    wal_error = Some(e);
                    break;
                }
            }
            return replay(network, history, applied_seq, records, wal_error);
        }
        Err(last_error)
    }
}

/// Lets a [`DurableStore`] serve directly as a
/// [`Session`](smn_core::Session) journal. I/O failures cannot surface
/// through the infallible [`EventSink`] trait, so the first failure is
/// latched into [`poisoned`](DurableSink::poisoned) and later events are
/// dropped — the caller checks after the round, exactly like the
/// reconciliation service does.
#[derive(Debug)]
pub struct DurableSink {
    store: DurableStore,
    poisoned: Option<StorageError>,
}

impl DurableSink {
    /// Wraps a store for journaling.
    pub fn new(store: DurableStore) -> Self {
        Self { store, poisoned: None }
    }

    /// The first append failure, if any; once set, no further events
    /// were written.
    pub fn poisoned(&self) -> Option<&StorageError> {
        self.poisoned.as_ref()
    }

    /// Unwraps the store (and the latched failure, if any).
    pub fn into_inner(self) -> (DurableStore, Option<StorageError>) {
        (self.store, self.poisoned)
    }
}

impl EventSink for DurableSink {
    fn record(&mut self, event: &NetworkEvent) {
        if self.poisoned.is_some() {
            return;
        }
        if let Err(e) = self.store.append(event) {
            self.poisoned = Some(e);
        }
    }
}
