//! # smn-testkit
//!
//! Shared test fixtures for the whole workspace — the reference networks,
//! scripted oracles/strategies and fast sampler configurations that the
//! integration suites (`tests/`), the crate-level unit tests and the
//! property harnesses all build on. Before this crate existed the Fig. 1
//! network and the perturbed-identity generators were copy-pasted into
//! `tests/end_to_end.rs`, `tests/paper_scenarios.rs`, `tests/robustness.rs`
//! *and* `smn-core`'s internal test module; new suites (the
//! evolving-network differential harness in particular) would have been a
//! fifth copy.
//!
//! The definitions live in [`mod@fixtures`], which `smn-core` includes
//! textually (`#[path]`) as its unit-test `testutil` module — unit tests
//! compile the crate separately, so linking this library from there would
//! produce mismatched types; sharing the *source* shares the fixtures
//! without that trap.
//!
//! Everything here is deterministic given its seed arguments. The crate is
//! a dev-dependency only — it never ships in the library graph.

pub mod faults;
pub mod fixtures;

pub use fixtures::*;

#[cfg(test)]
mod tests {
    use super::*;
    use smn_core::oracle::Oracle;
    use smn_core::selection::SelectionStrategy;
    use smn_core::ProbabilisticNetwork;
    use smn_schema::{AttributeId, CandidateId, Correspondence};

    #[test]
    fn fig1_network_matches_its_documentation() {
        let net = fig1_network();
        assert_eq!(net.candidate_count(), 5);
        let v = net.initial_violations();
        assert_eq!((v.one_to_one, v.cycle), (2, 2));
    }

    #[test]
    fn generators_are_deterministic() {
        let (a, ta) = perturbed_network(3, 6, 0.7, 0.9, 5);
        let (b, tb) = perturbed_network(3, 6, 0.7, 0.9, 5);
        assert_eq!(a.candidate_count(), b.candidate_count());
        assert_eq!(ta, tb);
        let (c, _) = identity_network(3, 6, 0.7, 5);
        assert_eq!(a.candidate_count(), c.candidate_count());
        assert_eq!(business_dataset(3).catalog, business_dataset(3).catalog);
    }

    #[test]
    fn scripted_oracle_cycles_and_selection_terminates() {
        let mut oracle = ScriptedOracle::new([true, false]);
        let corr = Correspondence::new(AttributeId(0), AttributeId(1));
        assert!(oracle.assert(corr));
        assert!(!oracle.assert(corr));
        assert!(oracle.assert(corr), "script cycles");
        let pn = ProbabilisticNetwork::new(fig1_network(), tiny_sampler(1));
        let mut sel = ScriptedSelection::new([CandidateId(2)]);
        assert_eq!(sel.select(&pn), Some(CandidateId(2)));
        assert_eq!(sel.select(&pn), None);
    }
}
