//! The fixture definitions, written against `smn_core::` paths.
//!
//! This file is compiled twice: as the body of the `smn-testkit` library
//! (for the integration suites) and — via `#[path]` inclusion under
//! `cfg(test)`, with `extern crate self as smn_core` aliasing — as
//! `smn-core`'s internal `testutil` module, whose unit tests need the
//! fixtures typed against the *test* build of the crate. One source, no
//! copy-paste drift.

use smn_constraints::ConstraintConfig;
use smn_core::engine::Strategy;
use smn_core::oracle::Oracle;
use smn_core::selection::SelectionStrategy;
use smn_core::{MatchingNetwork, ProbabilisticNetwork, SamplerConfig, SessionConfig};
use smn_datasets::{
    open_loop, ArrivalEvent, Dataset, DatasetSpec, FederationSpec, SharingModel, Vocabulary,
    WorkloadSpec,
};
use smn_matchers::matcher::match_network;
use smn_matchers::PerturbationMatcher;
use smn_schema::{
    AttributeId, CandidateId, CandidateSet, CatalogBuilder, Correspondence, InteractionGraph,
};

/// The motivating example of §II-A / Fig. 1, also used by Example 1: three
/// video providers.
///
/// Attributes: a0 = productionDate (EoverI), a1 = date (BBC),
/// a2 = releaseDate (DVDizzy), a3 = screenDate (DVDizzy).
/// Candidates: c0 = a0–a1, c1 = a1–a2, c2 = a0–a2, c3 = a1–a3, c4 = a0–a3.
///
/// Under the one-to-one + (triangle) cycle constraints the maximal matching
/// instances are exactly:
///
/// * `{c0, c1, c2}` and `{c0, c3, c4}` (the paper's I1 and I2), and
/// * `{c1, c4}` and `{c2, c3}` (mixed instances the paper's Example 1
///   glosses over: they are consistent and nothing can be added — adding
///   `c0` would complete an open cycle, anything else violates 1-1).
///
/// All exact probabilities are therefore 0.5 and the exact network entropy
/// is 5 bits.
pub fn fig1_network() -> MatchingNetwork {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("EoverI", ["productionDate"]).unwrap();
    b.add_schema_with_attributes("BBC", ["date"]).unwrap();
    b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
    let cat = b.build();
    let g = InteractionGraph::complete(3);
    let mut cs = CandidateSet::new(&cat);
    let a = AttributeId;
    cs.add(&cat, Some(&g), a(0), a(1), 0.9).unwrap(); // c0
    cs.add(&cat, Some(&g), a(1), a(2), 0.8).unwrap(); // c1
    cs.add(&cat, Some(&g), a(0), a(2), 0.8).unwrap(); // c2
    cs.add(&cat, Some(&g), a(1), a(3), 0.7).unwrap(); // c3
    cs.add(&cat, Some(&g), a(0), a(3), 0.7).unwrap(); // c4
    MatchingNetwork::new(cat, g, cs, ConstraintConfig::default())
}

/// The ground truth of [`fig1_network`]: the screenDate triangle
/// `{c0, c3, c4}` (the paper's selective matching I2).
pub fn fig1_truth() -> Vec<Correspondence> {
    let a = AttributeId;
    vec![
        Correspondence::new(a(0), a(1)),
        Correspondence::new(a(1), a(3)),
        Correspondence::new(a(0), a(3)),
    ]
}

/// A small random-ish network: `k` schemas in a complete graph, `m`
/// attributes each, candidates from a perturbed identity ground truth.
/// Deterministic in `seed`. Returns the network and the ground-truth
/// correspondences (the truth may be partially missing from `C`, so it
/// cannot be returned as candidate ids).
pub fn perturbed_network(
    k: usize,
    m: usize,
    precision: f64,
    recall: f64,
    seed: u64,
) -> (MatchingNetwork, Vec<Correspondence>) {
    let mut b = CatalogBuilder::new();
    for s in 0..k {
        b.add_schema_with_attributes(format!("s{s}"), (0..m).map(|i| format!("a{s}_{i}"))).unwrap();
    }
    let cat = b.build();
    let g = InteractionGraph::complete(k);
    // identity ground truth: attribute i of every schema denotes concept i
    let mut truth = Vec::new();
    for s1 in 0..k {
        for s2 in (s1 + 1)..k {
            for i in 0..m {
                truth.push(Correspondence::new(
                    AttributeId::from_index(s1 * m + i),
                    AttributeId::from_index(s2 * m + i),
                ));
            }
        }
    }
    let matcher = PerturbationMatcher::new(truth.iter().copied(), precision, recall, seed);
    let cs = match_network(&matcher, &cat, &g).expect("valid candidates");
    (MatchingNetwork::new(cat, g, cs, ConstraintConfig::default()), truth)
}

/// [`perturbed_network`] at the recall the robustness suites use (0.9) —
/// the "identity network" fixture of `tests/robustness.rs`.
pub fn identity_network(
    schemas: usize,
    attrs: usize,
    precision: f64,
    seed: u64,
) -> (MatchingNetwork, Vec<Correspondence>) {
    perturbed_network(schemas, attrs, precision, 0.9, seed)
}

/// The small business-partner dataset of the end-to-end suite: 3 schemas,
/// 20–30 attributes each, rank-biased concept sharing.
pub fn business_dataset(seed: u64) -> Dataset {
    DatasetSpec {
        name: "E2E".into(),
        vocabulary: Vocabulary::business_partner(),
        schema_count: 3,
        attrs_min: 20,
        attrs_max: 30,
        sharing: SharingModel::RankBiased { alpha: 0.7 },
    }
    .generate(seed)
}

/// A federation of `groups` small webform clusters (3 schemas each) fused
/// into one catalog, matched by the calibrated perturbation matcher — many
/// independent conflict components, the regime the sharding and durability
/// suites exercise. Deterministic in `seed`. Returns the network and its
/// selective-matching ground truth.
pub fn webform_federation(groups: usize, seed: u64) -> (MatchingNetwork, Vec<Correspondence>) {
    let fed = FederationSpec {
        name: format!("Fed{groups}"),
        vocabulary: Vocabulary::web_form(),
        groups,
        schemas_per_group: 3,
        attrs_min: 8,
        attrs_max: 14,
        sharing: SharingModel::RankBiased { alpha: 1.3 },
    }
    .generate(seed);
    let truth = fed.dataset.selective_matching(&fed.graph);
    let matcher = PerturbationMatcher::new(truth.iter().copied(), 0.65, 0.85, seed);
    let cs = match_network(&matcher, &fed.dataset.catalog, &fed.graph).expect("valid candidates");
    let net = MatchingNetwork::new(fed.dataset.catalog, fed.graph, cs, ConstraintConfig::default());
    (net, truth)
}

/// The serving suites' standard open-loop workload: `sessions` concurrent
/// sessions issuing `questions` total question→answer exchanges with
/// seeded think-times, a publication tick every 32 arrivals. Deterministic
/// in `seed`; the serving tests and benches map these arrivals onto
/// `smn-service` ingress events one-to-one.
pub fn serve_workload(sessions: u64, questions: u64, seed: u64) -> Vec<ArrivalEvent> {
    open_loop(WorkloadSpec { sessions, questions, seed, ..WorkloadSpec::default() }).collect()
}

/// A sampler small enough for interactive test runtimes yet large enough
/// to exhaust every fixture network here: 300 emissions, refill threshold
/// 120 (the configuration the integration suites standardized on).
pub fn fast_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { anneal: true, n_samples: 300, walk_steps: 3, n_min: 120, seed, chains: 1 }
}

/// A [`SessionConfig`] over [`fast_sampler`] with the paper's
/// information-gain strategy and `seed` driving both sampler and strategy.
pub fn fast_session_config(seed: u64) -> SessionConfig {
    SessionConfig {
        sampler: fast_sampler(seed),
        strategy: Strategy::InformationGain,
        strategy_seed: seed,
        ..Default::default()
    }
}

/// A [`ProbabilisticNetwork`] over [`fig1_network`] with [`fast_sampler`]
/// semantics scaled down further (the unit-test configuration of
/// `smn-core`): 200 emissions, threshold 50.
pub fn tiny_sampler(seed: u64) -> SamplerConfig {
    SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed, chains: 1 }
}

/// Answers each elicitation from a fixed verdict script, cycling when the
/// script is shorter than the session — the adversarial oracle used to
/// regression-test contradictory and inconsistent assertions.
#[derive(Debug, Clone)]
pub struct ScriptedOracle {
    verdicts: Vec<bool>,
    pos: usize,
}

impl ScriptedOracle {
    /// Creates an oracle replaying `verdicts` cyclically.
    ///
    /// # Panics
    /// Panics on an empty script.
    pub fn new(verdicts: impl Into<Vec<bool>>) -> Self {
        let verdicts = verdicts.into();
        assert!(!verdicts.is_empty(), "a scripted oracle needs at least one verdict");
        Self { verdicts, pos: 0 }
    }
}

impl Oracle for ScriptedOracle {
    fn assert(&mut self, _corr: Correspondence) -> bool {
        let v = self.verdicts[self.pos % self.verdicts.len()];
        self.pos += 1;
        v
    }
}

/// Replays a fixed candidate script, re-selecting candidates even when
/// they are already asserted — the adversarial counterpart of the built-in
/// strategies, which never re-select.
#[derive(Debug, Clone)]
pub struct ScriptedSelection {
    script: Vec<CandidateId>,
    pos: usize,
}

impl ScriptedSelection {
    /// Creates a strategy replaying `script` once, then returning `None`.
    pub fn new(script: impl Into<Vec<CandidateId>>) -> Self {
        Self { script: script.into(), pos: 0 }
    }
}

impl SelectionStrategy for ScriptedSelection {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn select(&mut self, _pn: &ProbabilisticNetwork) -> Option<CandidateId> {
        let next = self.script.get(self.pos).copied();
        self.pos += 1;
        next
    }

    fn clone_box(&self) -> Box<dyn SelectionStrategy> {
        Box::new(self.clone())
    }
}
