//! Deterministic fault injection over byte buffers.
//!
//! The crash-injection suites (storage's `tests/crash.rs`, the service
//! durability tests) all need the same vocabulary of filesystem damage:
//! a write torn mid-record, a file truncated at an arbitrary byte, a bit
//! flipped by rot, a window of garbage. These mutators are pure functions
//! of their inputs and a seeded [`FaultRng`], so every injected fault is
//! reproducible from the test's seed — a failing case prints as one
//! integer.

/// A tiny seeded generator (SplitMix64) for fault placement. Not a
/// statistical RNG — just a deterministic scatter of fault positions.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) has no value");
        (self.next_u64() % n as u64) as usize
    }
}

/// The buffer cut to its first `len` bytes (a truncation; `len` past the
/// end is a no-op copy).
pub fn truncate_at(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// A torn tail: the buffer cut at a random point in `keep_at_least..len`
/// — the shape a crashed append leaves behind.
pub fn torn_tail(bytes: &[u8], keep_at_least: usize, rng: &mut FaultRng) -> Vec<u8> {
    let floor = keep_at_least.min(bytes.len());
    let cut = floor + rng.below(bytes.len() - floor + 1);
    truncate_at(bytes, cut)
}

/// One specific bit flipped.
pub fn flip_bit_at(bytes: &[u8], byte_index: usize, bit: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[byte_index] ^= 1 << (bit % 8);
    out
}

/// One random bit flipped anywhere in `from..bytes.len()` (bit rot;
/// `from` lets a test spare the magic/header so a deeper check is the
/// one exercised).
pub fn flip_bit(bytes: &[u8], from: usize, rng: &mut FaultRng) -> Vec<u8> {
    assert!(from < bytes.len(), "nothing to flip past the end");
    let byte = from + rng.below(bytes.len() - from);
    let bit = (rng.next_u64() % 8) as u32;
    flip_bit_at(bytes, byte, bit)
}

/// A random window of up to `max_len` bytes overwritten with generated
/// garbage (a misdirected write).
pub fn corrupt_range(bytes: &[u8], max_len: usize, rng: &mut FaultRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() || max_len == 0 {
        return out;
    }
    let start = rng.below(out.len());
    let len = 1 + rng.below(max_len.min(out.len() - start));
    for b in &mut out[start..start + len] {
        *b = (rng.next_u64() & 0xFF) as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutators_are_deterministic_in_the_seed() {
        let buf: Vec<u8> = (0..=255).collect();
        for seed in 0..16 {
            let mut a = FaultRng::new(seed);
            let mut b = FaultRng::new(seed);
            assert_eq!(torn_tail(&buf, 4, &mut a), torn_tail(&buf, 4, &mut b));
            assert_eq!(flip_bit(&buf, 8, &mut a), flip_bit(&buf, 8, &mut b));
            assert_eq!(corrupt_range(&buf, 9, &mut a), corrupt_range(&buf, 9, &mut b));
        }
    }

    #[test]
    fn mutators_damage_without_panicking_at_boundaries() {
        let buf = vec![0xAAu8; 64];
        let mut rng = FaultRng::new(7);
        assert_eq!(truncate_at(&buf, 1000), buf, "over-long truncation is identity");
        assert_eq!(truncate_at(&buf, 0), Vec::<u8>::new());
        let torn = torn_tail(&buf, 64, &mut rng);
        assert_eq!(torn, buf, "keep floor at the full length tears nothing");
        let flipped = flip_bit(&buf, 63, &mut rng);
        assert_ne!(flipped, buf);
        assert_eq!(flipped.iter().zip(&buf).filter(|(x, y)| x != y).count(), 1);
        let corrupted = corrupt_range(&buf, 64, &mut rng);
        assert_eq!(corrupted.len(), buf.len());
        assert_eq!(corrupt_range(&[], 4, &mut rng), Vec::<u8>::new());
    }
}
