//! Error type for catalog and candidate-set construction.

use crate::ids::{AttributeId, CandidateId, SchemaId};
use std::fmt;

/// Errors raised while building catalogs, graphs or candidate sets.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A schema name was registered twice.
    DuplicateSchema(String),
    /// An attribute name was registered twice within the same schema.
    DuplicateAttribute { schema: String, attribute: String },
    /// A referenced schema id does not exist in the catalog.
    UnknownSchema(SchemaId),
    /// A referenced attribute id does not exist in the catalog.
    UnknownAttribute(AttributeId),
    /// A correspondence connects two attributes of the same schema.
    IntraSchemaCorrespondence(AttributeId, AttributeId),
    /// A correspondence refers to a schema pair that is not an edge of the
    /// interaction graph.
    NotAnInteractionEdge(SchemaId, SchemaId),
    /// The same correspondence was added twice to a candidate set.
    DuplicateCandidate(AttributeId, AttributeId),
    /// A referenced candidate id does not exist in the candidate set.
    UnknownCandidate(CandidateId),
    /// A confidence value was outside `[0, 1]`.
    InvalidConfidence(f64),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateSchema(name) => write!(f, "duplicate schema name {name:?}"),
            SchemaError::DuplicateAttribute { schema, attribute } => {
                write!(f, "duplicate attribute {attribute:?} in schema {schema:?}")
            }
            SchemaError::UnknownSchema(id) => write!(f, "unknown schema {id}"),
            SchemaError::UnknownAttribute(id) => write!(f, "unknown attribute {id}"),
            SchemaError::IntraSchemaCorrespondence(a, b) => {
                write!(f, "correspondence {a}–{b} connects attributes of the same schema")
            }
            SchemaError::NotAnInteractionEdge(s, t) => {
                write!(f, "schema pair ({s}, {t}) is not an edge of the interaction graph")
            }
            SchemaError::DuplicateCandidate(a, b) => {
                write!(f, "candidate correspondence {a}–{b} was added twice")
            }
            SchemaError::UnknownCandidate(id) => write!(f, "unknown candidate {id}"),
            SchemaError::InvalidConfidence(v) => {
                write!(f, "confidence {v} is outside the unit interval")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SchemaError::DuplicateSchema("orders".into());
        assert!(e.to_string().contains("orders"));
        let e = SchemaError::InvalidConfidence(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = SchemaError::NotAnInteractionEdge(SchemaId(0), SchemaId(2));
        assert!(e.to_string().contains("s0"));
        assert!(e.to_string().contains("s2"));
    }
}
