//! Schemas, attributes and the catalog that owns them.
//!
//! A [`Catalog`] is the set `S = {s_1, …, s_n}` of the paper: every schema is
//! a finite set of attributes, and attribute identifiers are unique across
//! the whole catalog (`s_i ∩ s_j = ∅`). The catalog is immutable once built;
//! construction goes through [`CatalogBuilder`], which validates name
//! uniqueness and assigns dense ids.

use crate::error::SchemaError;
use crate::ids::{AttributeId, SchemaId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Globally unique id of this attribute.
    pub id: AttributeId,
    /// The schema this attribute belongs to.
    pub schema: SchemaId,
    /// Attribute name as it would appear in the source (e.g. `releaseDate`).
    pub name: String,
}

/// A database schema: a named, finite set of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Dense id of this schema within its catalog.
    pub id: SchemaId,
    /// Human-readable schema name (e.g. `BBC`).
    pub name: String,
    /// Ids of the attributes owned by this schema, in insertion order.
    pub attributes: Vec<AttributeId>,
}

impl Schema {
    /// Number of attributes in the schema.
    #[inline]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// An immutable set of schemas with globally unique attributes.
///
/// ```
/// use smn_schema::CatalogBuilder;
///
/// let mut b = CatalogBuilder::new();
/// let s = b.add_schema("EoverI").unwrap();
/// b.add_attribute(s, "productionDate").unwrap();
/// let catalog = b.build();
/// assert_eq!(catalog.schema_count(), 1);
/// assert_eq!(catalog.attribute_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    schemas: Vec<Schema>,
    attributes: Vec<Attribute>,
}

impl Catalog {
    /// Number of schemas in the catalog.
    #[inline]
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Total number of attributes across all schemas (`|A_S|`).
    #[inline]
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// All schemas in id order.
    #[inline]
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// All attributes in id order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up a schema by id.
    ///
    /// # Panics
    /// Panics if the id is not from this catalog.
    #[inline]
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Looks up an attribute by id.
    ///
    /// # Panics
    /// Panics if the id is not from this catalog.
    #[inline]
    pub fn attribute(&self, id: AttributeId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// Schema that owns the given attribute.
    #[inline]
    pub fn schema_of(&self, id: AttributeId) -> SchemaId {
        self.attributes[id.index()].schema
    }

    /// Fallible lookup of a schema.
    pub fn try_schema(&self, id: SchemaId) -> Result<&Schema, SchemaError> {
        self.schemas.get(id.index()).ok_or(SchemaError::UnknownSchema(id))
    }

    /// Fallible lookup of an attribute.
    pub fn try_attribute(&self, id: AttributeId) -> Result<&Attribute, SchemaError> {
        self.attributes.get(id.index()).ok_or(SchemaError::UnknownAttribute(id))
    }

    /// Finds a schema by name (linear scan; intended for tests and examples).
    pub fn schema_by_name(&self, name: &str) -> Option<&Schema> {
        self.schemas.iter().find(|s| s.name == name)
    }

    /// Finds an attribute by `(schema, name)` (linear scan over the schema).
    pub fn attribute_by_name(&self, schema: SchemaId, name: &str) -> Option<&Attribute> {
        self.schemas
            .get(schema.index())?
            .attributes
            .iter()
            .map(|&a| self.attribute(a))
            .find(|a| a.name == name)
    }

    /// Smallest and largest schema sizes, as reported in Table II of the
    /// paper (`#Attributes (Min/Max)`). Returns `None` for an empty catalog.
    pub fn attribute_min_max(&self) -> Option<(usize, usize)> {
        let mut it = self.schemas.iter().map(Schema::len);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), n| (lo.min(n), hi.max(n))))
    }
}

/// Incremental, validating builder for [`Catalog`].
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    schemas: Vec<Schema>,
    attributes: Vec<Attribute>,
    schema_names: HashMap<String, SchemaId>,
    attribute_names: HashMap<(SchemaId, String), AttributeId>,
}

impl CatalogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new schema and returns its id.
    pub fn add_schema(&mut self, name: impl Into<String>) -> Result<SchemaId, SchemaError> {
        let name = name.into();
        if self.schema_names.contains_key(&name) {
            return Err(SchemaError::DuplicateSchema(name));
        }
        let id = SchemaId::from_index(self.schemas.len());
        self.schema_names.insert(name.clone(), id);
        self.schemas.push(Schema { id, name, attributes: Vec::new() });
        Ok(id)
    }

    /// Registers a new attribute under `schema` and returns its id.
    pub fn add_attribute(
        &mut self,
        schema: SchemaId,
        name: impl Into<String>,
    ) -> Result<AttributeId, SchemaError> {
        let name = name.into();
        let s = self.schemas.get_mut(schema.index()).ok_or(SchemaError::UnknownSchema(schema))?;
        let key = (schema, name.clone());
        if self.attribute_names.contains_key(&key) {
            return Err(SchemaError::DuplicateAttribute {
                schema: s.name.clone(),
                attribute: name,
            });
        }
        let id = AttributeId::from_index(self.attributes.len());
        self.attribute_names.insert(key, id);
        s.attributes.push(id);
        self.attributes.push(Attribute { id, schema, name });
        Ok(id)
    }

    /// Convenience: registers a schema together with all its attributes.
    pub fn add_schema_with_attributes<I, T>(
        &mut self,
        name: impl Into<String>,
        attrs: I,
    ) -> Result<SchemaId, SchemaError>
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        let id = self.add_schema(name)?;
        for a in attrs {
            self.add_attribute(id, a)?;
        }
        Ok(id)
    }

    /// Number of schemas added so far.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Finalizes the catalog.
    pub fn build(self) -> Catalog {
        Catalog { schemas: self.schemas, attributes: self.attributes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_schema_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("EoverI", ["productionDate", "title"]).unwrap();
        b.add_schema_with_attributes("BBC", ["date", "name"]).unwrap();
        b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
        b.build()
    }

    #[test]
    fn ids_are_dense_and_global() {
        let c = three_schema_catalog();
        assert_eq!(c.schema_count(), 3);
        assert_eq!(c.attribute_count(), 6);
        for (i, a) in c.attributes().iter().enumerate() {
            assert_eq!(a.id.index(), i);
        }
        // attributes of different schemas never share ids (paper: s_i ∩ s_j = ∅)
        let s0: Vec<_> = c.schema(SchemaId(0)).attributes.clone();
        let s1: Vec<_> = c.schema(SchemaId(1)).attributes.clone();
        assert!(s0.iter().all(|a| !s1.contains(a)));
    }

    #[test]
    fn schema_of_maps_back() {
        let c = three_schema_catalog();
        for s in c.schemas() {
            for &a in &s.attributes {
                assert_eq!(c.schema_of(a), s.id);
            }
        }
    }

    #[test]
    fn duplicate_schema_name_is_rejected() {
        let mut b = CatalogBuilder::new();
        b.add_schema("po").unwrap();
        assert_eq!(b.add_schema("po"), Err(SchemaError::DuplicateSchema("po".into())));
    }

    #[test]
    fn duplicate_attribute_name_is_rejected_within_schema_only() {
        let mut b = CatalogBuilder::new();
        let s0 = b.add_schema("a").unwrap();
        let s1 = b.add_schema("b").unwrap();
        b.add_attribute(s0, "date").unwrap();
        assert!(b.add_attribute(s0, "date").is_err());
        // the same name in another schema is fine
        assert!(b.add_attribute(s1, "date").is_ok());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut b = CatalogBuilder::new();
        assert_eq!(b.add_attribute(SchemaId(4), "x"), Err(SchemaError::UnknownSchema(SchemaId(4))));
    }

    #[test]
    fn lookup_by_name() {
        let c = three_schema_catalog();
        let bbc = c.schema_by_name("BBC").unwrap();
        assert_eq!(bbc.name, "BBC");
        let date = c.attribute_by_name(bbc.id, "date").unwrap();
        assert_eq!(date.name, "date");
        assert!(c.attribute_by_name(bbc.id, "releaseDate").is_none());
        assert!(c.schema_by_name("nope").is_none());
    }

    #[test]
    fn min_max_statistics() {
        let c = three_schema_catalog();
        assert_eq!(c.attribute_min_max(), Some((2, 2)));
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("s", ["a"]).unwrap();
        b.add_schema_with_attributes("t", ["a", "b", "c"]).unwrap();
        assert_eq!(b.build().attribute_min_max(), Some((1, 3)));
        assert_eq!(CatalogBuilder::new().build().attribute_min_max(), None);
    }

    #[test]
    fn try_lookups_report_errors() {
        let c = three_schema_catalog();
        assert!(c.try_schema(SchemaId(0)).is_ok());
        assert!(c.try_schema(SchemaId(99)).is_err());
        assert!(c.try_attribute(AttributeId(0)).is_ok());
        assert!(c.try_attribute(AttributeId(99)).is_err());
    }
}
