//! # smn-schema
//!
//! The structural substrate of a *schema matching network* as defined in
//! Section II-B of "Pay-as-you-go Reconciliation in Schema Matching Networks"
//! (ICDE 2014):
//!
//! * a **schema** is a finite set of uniquely identified attributes,
//! * a **catalog** `S = {s_1, …, s_n}` collects the schemas of one data
//!   integration task,
//! * the **interaction graph** `G_S` says which schema pairs must be matched,
//! * an **attribute correspondence** is a pair of attributes from two
//!   different schemas, and the **candidate set** `C` is the union of the
//!   matcher outputs for every edge of `G_S`.
//!
//! The crate deliberately contains no probabilistic or constraint logic —
//! those live in `smn-constraints` and `smn-core`. It only provides the data
//! model, cheap integer identifiers, index structures and graph generators
//! (complete, Erdős–Rényi, path, cycle, star) used throughout the stack.

pub mod catalog;
pub mod correspondence;
pub mod error;
pub mod graph;
pub mod ids;

pub use catalog::{Attribute, Catalog, CatalogBuilder, Schema};
pub use correspondence::{Candidate, CandidateSet, Correspondence};
pub use error::SchemaError;
pub use graph::InteractionGraph;
pub use ids::{AttributeId, CandidateId, SchemaId};
