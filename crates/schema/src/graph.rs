//! The interaction graph `G_S`.
//!
//! Vertices are schemas; an edge `(s_i, s_j)` means the pair has to be
//! matched. The evaluation of the paper uses two families of graphs:
//! complete graphs (uncertainty-reduction and instantiation experiments,
//! §VI-C/D) and Erdős–Rényi random graphs (scalability of probability
//! computation, §VI-B / Fig. 6). Both generators live here, together with
//! the triangle enumeration required by the cycle constraint.

use crate::ids::SchemaId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Undirected graph over schema ids with adjacency lists and an edge list.
///
/// Edges are stored normalized (`lo < hi`) and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionGraph {
    vertex_count: usize,
    edges: Vec<(SchemaId, SchemaId)>,
    adjacency: Vec<Vec<SchemaId>>,
}

impl InteractionGraph {
    /// Creates a graph with `vertex_count` schemas and no edges.
    pub fn empty(vertex_count: usize) -> Self {
        Self { vertex_count, edges: Vec::new(), adjacency: vec![Vec::new(); vertex_count] }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// Self-loops are ignored; duplicate edges are inserted once.
    pub fn from_edges(
        vertex_count: usize,
        edges: impl IntoIterator<Item = (SchemaId, SchemaId)>,
    ) -> Self {
        let mut g = Self::empty(vertex_count);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Complete graph `K_n`: every schema pair is matched. This is the
    /// configuration used for the reconciliation experiments in the paper
    /// ("for each dataset, we generate a complete interaction graph").
    pub fn complete(vertex_count: usize) -> Self {
        let mut g = Self::empty(vertex_count);
        for i in 0..vertex_count {
            for j in (i + 1)..vertex_count {
                g.add_edge(SchemaId::from_index(i), SchemaId::from_index(j));
            }
        }
        g
    }

    /// Erdős–Rényi `G(n, p)` random graph, used by the paper to vary network
    /// size in the probability-computation experiment (Fig. 6).
    pub fn erdos_renyi(vertex_count: usize, p: f64, rng: &mut impl Rng) -> Self {
        let mut g = Self::empty(vertex_count);
        for i in 0..vertex_count {
            for j in (i + 1)..vertex_count {
                if rng.random_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(SchemaId::from_index(i), SchemaId::from_index(j));
                }
            }
        }
        g
    }

    /// Disjoint union of `count` cliques of `size` schemas each: schemas
    /// `g·size .. (g+1)·size` are pairwise matched, nothing crosses group
    /// boundaries. This is the interaction graph of a *federation* of
    /// independent sub-networks (many small webform clusters fused into
    /// one catalog) — with no cross-group edges there are no cross-group
    /// candidates, so the conflict graph decomposes into at least `count`
    /// components and the component-sharded probabilistic model
    /// factorizes.
    pub fn disjoint_cliques(count: usize, size: usize) -> Self {
        let mut g = Self::empty(count * size);
        for group in 0..count {
            let base = group * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(SchemaId::from_index(base + i), SchemaId::from_index(base + j));
                }
            }
        }
        g
    }

    /// Path `s_0 — s_1 — … — s_{n-1}`.
    pub fn path(vertex_count: usize) -> Self {
        let mut g = Self::empty(vertex_count);
        for i in 1..vertex_count {
            g.add_edge(SchemaId::from_index(i - 1), SchemaId::from_index(i));
        }
        g
    }

    /// Cycle `s_0 — s_1 — … — s_{n-1} — s_0` (needs `n ≥ 3`).
    pub fn cycle(vertex_count: usize) -> Self {
        let mut g = Self::path(vertex_count);
        if vertex_count >= 3 {
            g.add_edge(SchemaId::from_index(vertex_count - 1), SchemaId::from_index(0));
        }
        g
    }

    /// Star with `s_0` as hub.
    pub fn star(vertex_count: usize) -> Self {
        let mut g = Self::empty(vertex_count);
        for i in 1..vertex_count {
            g.add_edge(SchemaId::from_index(0), SchemaId::from_index(i));
        }
        g
    }

    /// Adds an undirected edge; ignores self-loops and duplicates.
    pub fn add_edge(&mut self, a: SchemaId, b: SchemaId) {
        if a == b {
            return;
        }
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        assert!(hi.index() < self.vertex_count, "edge endpoint {hi} out of range");
        if self.has_edge(lo, hi) {
            return;
        }
        self.edges.push((lo, hi));
        self.adjacency[lo.index()].push(hi);
        self.adjacency[hi.index()].push(lo);
    }

    /// Number of vertices (schemas).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Normalized edge list (`lo < hi`).
    #[inline]
    pub fn edges(&self) -> &[(SchemaId, SchemaId)] {
        &self.edges
    }

    /// Neighbors of a schema.
    #[inline]
    pub fn neighbors(&self, s: SchemaId) -> &[SchemaId] {
        &self.adjacency[s.index()]
    }

    /// Whether the (undirected) edge exists.
    pub fn has_edge(&self, a: SchemaId, b: SchemaId) -> bool {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.adjacency.get(lo.index()).is_some_and(|n| n.contains(&hi))
    }

    /// Enumerates all triangles `(a, b, c)` with `a < b < c`.
    ///
    /// Triangles are the minimal cycles along which the cycle constraint of
    /// the paper (§II-A) is enforced by `smn-constraints`.
    pub fn triangles(&self) -> Vec<(SchemaId, SchemaId, SchemaId)> {
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            // only iterate common neighbors greater than b to emit each once
            for &c in self.neighbors(b) {
                if c.0 > b.0 && self.has_edge(a, c) {
                    out.push((a, b, c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Connected-component count (isolated schemas count individually).
    pub fn component_count(&self) -> usize {
        let mut seen = vec![false; self.vertex_count];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..self.vertex_count {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(SchemaId::from_index(start));
            while let Some(v) = stack.pop() {
                for &n in self.neighbors(v) {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        stack.push(n);
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = InteractionGraph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.has_edge(SchemaId(0), SchemaId(4)));
        assert!(g.has_edge(SchemaId(4), SchemaId(0)));
        assert_eq!(g.triangles().len(), 10); // C(5,3)
    }

    #[test]
    fn triangle_enumeration_on_known_graph() {
        // square with one diagonal: 0-1, 1-2, 2-3, 3-0, 0-2
        let g = InteractionGraph::from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)].map(|(a, b)| (SchemaId(a), SchemaId(b))),
        );
        let tris = g.triangles();
        assert_eq!(
            tris,
            vec![(SchemaId(0), SchemaId(1), SchemaId(2)), (SchemaId(0), SchemaId(2), SchemaId(3))]
        );
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let mut g = InteractionGraph::empty(3);
        g.add_edge(SchemaId(1), SchemaId(1));
        assert_eq!(g.edge_count(), 0);
        g.add_edge(SchemaId(0), SchemaId(1));
        g.add_edge(SchemaId(1), SchemaId(0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn path_cycle_star_shapes() {
        let p = InteractionGraph::path(4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.triangles().len(), 0);
        assert_eq!(p.component_count(), 1);

        let c = InteractionGraph::cycle(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(SchemaId(3), SchemaId(0)));

        let c3 = InteractionGraph::cycle(3);
        assert_eq!(c3.triangles().len(), 1);

        let s = InteractionGraph::star(5);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.neighbors(SchemaId(0)).len(), 4);
        assert_eq!(s.triangles().len(), 0);
    }

    #[test]
    fn disjoint_cliques_have_no_cross_edges() {
        let g = InteractionGraph::disjoint_cliques(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 6); // 3 × C(4,2)
        assert_eq!(g.component_count(), 3);
        assert_eq!(g.triangles().len(), 3 * 4); // 3 × C(4,3)
        assert!(g.has_edge(SchemaId(0), SchemaId(3)));
        assert!(!g.has_edge(SchemaId(3), SchemaId(4)), "no edge across groups");
        // degenerate shapes
        assert_eq!(InteractionGraph::disjoint_cliques(0, 5).vertex_count(), 0);
        assert_eq!(InteractionGraph::disjoint_cliques(4, 1).edge_count(), 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(42);
        let g0 = InteractionGraph::erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.edge_count(), 0);
        assert_eq!(g0.component_count(), 10);
        let g1 = InteractionGraph::erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let a = InteractionGraph::erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7));
        let b = InteractionGraph::erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = InteractionGraph::empty(2);
        g.add_edge(SchemaId(0), SchemaId(5));
    }

    #[test]
    fn component_count_counts_islands() {
        let g = InteractionGraph::from_edges(
            5,
            [(SchemaId(0), SchemaId(1)), (SchemaId(2), SchemaId(3))],
        );
        assert_eq!(g.component_count(), 3);
    }
}
