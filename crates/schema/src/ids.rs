//! Compact integer identifiers.
//!
//! Every entity of the network (schema, attribute, candidate correspondence)
//! is referred to by a dense integer id. Dense ids let the rest of the stack
//! use `Vec`-indexed side tables and bitsets instead of hash maps, which is
//! what keeps the Algorithm 3 sampler and the information-gain computation
//! cheap (cf. the conflict-index design in `smn-constraints`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a schema within one [`Catalog`](crate::Catalog).
///
/// Schemas are numbered densely from zero in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemaId(pub u32);

/// Identifier of an attribute, unique across the *whole* catalog.
///
/// The paper requires `s_i ∩ s_j = ∅` for distinct schemas ("each schema is
/// built of unique attributes (by using unique identifiers)"); global dense
/// numbering realizes exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttributeId(pub u32);

/// Identifier of a candidate correspondence inside one
/// [`CandidateSet`](crate::CandidateSet).
///
/// Dense numbering is what allows matching instances to be represented as
/// bitsets over candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CandidateId(pub u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id overflow"))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            #[inline]
            fn from(id: $ty) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(SchemaId, "s");
impl_id!(AttributeId, "a");
impl_id!(CandidateId, "c");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let s = SchemaId::from_index(7);
        assert_eq!(s.index(), 7);
        assert_eq!(usize::from(s), 7);
        let a = AttributeId::from_index(123_456);
        assert_eq!(a.index(), 123_456);
        let c = CandidateId::from_index(0);
        assert_eq!(c.index(), 0);
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(SchemaId(3).to_string(), "s3");
        assert_eq!(AttributeId(14).to_string(), "a14");
        assert_eq!(CandidateId(5).to_string(), "c5");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(CandidateId(2) < CandidateId(10));
        assert!(AttributeId(0) < AttributeId(1));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_rejects_overflow() {
        let _ = SchemaId::from_index(usize::MAX);
    }
}
