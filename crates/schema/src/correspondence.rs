//! Attribute correspondences and the candidate set `C`.
//!
//! A [`Correspondence`] is an unordered pair of attributes from two different
//! schemas. The matcher output for the whole network is collected in a
//! [`CandidateSet`], which assigns dense [`CandidateId`]s and maintains the
//! indexes the constraint engine and the sampler rely on:
//!
//! * candidates grouped by interaction-graph edge (`C_{i,j}`),
//! * candidates incident to each attribute,
//! * exact lookup from attribute pair to candidate id.

use crate::catalog::Catalog;
use crate::error::SchemaError;
use crate::graph::InteractionGraph;
use crate::ids::{AttributeId, CandidateId, SchemaId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An unordered pair of attributes from two different schemas.
///
/// Stored normalized (`a.0 < b.0`) so that `(x, y)` and `(y, x)` compare
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Correspondence {
    a: AttributeId,
    b: AttributeId,
}

impl Correspondence {
    /// Creates a normalized correspondence.
    ///
    /// # Panics
    /// Panics if both endpoints are the same attribute.
    pub fn new(x: AttributeId, y: AttributeId) -> Self {
        assert_ne!(x, y, "correspondence endpoints must differ");
        if x.0 < y.0 {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }

    /// Lower endpoint (by id).
    #[inline]
    pub fn a(&self) -> AttributeId {
        self.a
    }

    /// Higher endpoint (by id).
    #[inline]
    pub fn b(&self) -> AttributeId {
        self.b
    }

    /// Both endpoints as an array.
    #[inline]
    pub fn endpoints(&self) -> [AttributeId; 2] {
        [self.a, self.b]
    }

    /// Whether this correspondence touches `attr`.
    #[inline]
    pub fn touches(&self, attr: AttributeId) -> bool {
        self.a == attr || self.b == attr
    }

    /// Given one endpoint, returns the other; `None` if `attr` is not an
    /// endpoint.
    #[inline]
    pub fn other(&self, attr: AttributeId) -> Option<AttributeId> {
        if self.a == attr {
            Some(self.b)
        } else if self.b == attr {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A candidate correspondence: a correspondence plus the matcher confidence.
///
/// Confidences are kept because matchers report them, but — as the paper
/// argues (§III-A) — they are "not normalized, often unreliable", so the core
/// crate derives probabilities from constraint structure instead. Confidences
/// still matter as matcher-internal tie-breakers and for matcher evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Dense id in the owning [`CandidateSet`].
    pub id: CandidateId,
    /// The attribute pair.
    pub corr: Correspondence,
    /// Matcher confidence in `[0, 1]`.
    pub confidence: f64,
}

/// The candidate set `C` of a matching network, with dense ids and indexes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CandidateSet {
    candidates: Vec<Candidate>,
    by_pair: HashMap<Correspondence, CandidateId>,
    /// For each attribute id (dense), candidate ids incident to it.
    incident: Vec<Vec<CandidateId>>,
    /// Candidates grouped by normalized schema pair.
    by_edge: HashMap<(SchemaId, SchemaId), Vec<CandidateId>>,
}

impl CandidateSet {
    /// Creates an empty candidate set sized for `catalog`.
    pub fn new(catalog: &Catalog) -> Self {
        Self {
            candidates: Vec::new(),
            by_pair: HashMap::new(),
            incident: vec![Vec::new(); catalog.attribute_count()],
            by_edge: HashMap::new(),
        }
    }

    /// Adds a candidate, validating that the endpoints belong to different
    /// schemas, that the schema pair is an interaction edge (when a graph is
    /// supplied), that the confidence is in `[0,1]`, and that the pair was
    /// not added before.
    pub fn add(
        &mut self,
        catalog: &Catalog,
        graph: Option<&InteractionGraph>,
        x: AttributeId,
        y: AttributeId,
        confidence: f64,
    ) -> Result<CandidateId, SchemaError> {
        catalog.try_attribute(x)?;
        catalog.try_attribute(y)?;
        let (sx, sy) = (catalog.schema_of(x), catalog.schema_of(y));
        if sx == sy {
            return Err(SchemaError::IntraSchemaCorrespondence(x, y));
        }
        if let Some(g) = graph {
            if !g.has_edge(sx, sy) {
                return Err(SchemaError::NotAnInteractionEdge(sx, sy));
            }
        }
        if !(0.0..=1.0).contains(&confidence) || confidence.is_nan() {
            return Err(SchemaError::InvalidConfidence(confidence));
        }
        let corr = Correspondence::new(x, y);
        if self.by_pair.contains_key(&corr) {
            return Err(SchemaError::DuplicateCandidate(x, y));
        }
        let id = CandidateId::from_index(self.candidates.len());
        self.by_pair.insert(corr, id);
        self.incident[corr.a().index()].push(id);
        self.incident[corr.b().index()].push(id);
        let edge = if sx.0 <= sy.0 { (sx, sy) } else { (sy, sx) };
        self.by_edge.entry(edge).or_default().push(id);
        self.candidates.push(Candidate { id, corr, confidence });
        Ok(id)
    }

    /// Removes a candidate, compacting the dense id space: every candidate
    /// with a higher id shifts down by one (order-preserving renumbering),
    /// and the derived indexes are rebuilt in the new id order — so the
    /// result is indistinguishable from a set built by re-adding the
    /// survivors in order. Returns the removed candidate (with its
    /// original id).
    ///
    /// This is the candidate-retirement primitive of the evolving-network
    /// stack; `catalog` must be the catalog the set was built against.
    pub fn remove(&mut self, catalog: &Catalog, id: CandidateId) -> Result<Candidate, SchemaError> {
        if id.index() >= self.candidates.len() {
            return Err(SchemaError::UnknownCandidate(id));
        }
        let removed = self.candidates.remove(id.index());
        self.by_pair.clear();
        self.by_edge.clear();
        for inc in &mut self.incident {
            inc.clear();
        }
        for (i, cand) in self.candidates.iter_mut().enumerate() {
            cand.id = CandidateId::from_index(i);
            self.by_pair.insert(cand.corr, cand.id);
            self.incident[cand.corr.a().index()].push(cand.id);
            self.incident[cand.corr.b().index()].push(cand.id);
            let (sx, sy) = (catalog.schema_of(cand.corr.a()), catalog.schema_of(cand.corr.b()));
            let edge = if sx.0 <= sy.0 { (sx, sy) } else { (sy, sx) };
            self.by_edge.entry(edge).or_default().push(cand.id);
        }
        Ok(removed)
    }

    /// Number of candidates (`|C|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// All candidates in id order.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Candidate by id.
    ///
    /// # Panics
    /// Panics if the id is not from this set.
    #[inline]
    pub fn get(&self, id: CandidateId) -> &Candidate {
        &self.candidates[id.index()]
    }

    /// Correspondence of a candidate.
    #[inline]
    pub fn corr(&self, id: CandidateId) -> Correspondence {
        self.candidates[id.index()].corr
    }

    /// Matcher confidence of a candidate.
    #[inline]
    pub fn confidence(&self, id: CandidateId) -> f64 {
        self.candidates[id.index()].confidence
    }

    /// Looks up the candidate id of an attribute pair, if present.
    pub fn find(&self, x: AttributeId, y: AttributeId) -> Option<CandidateId> {
        if x == y {
            return None;
        }
        self.by_pair.get(&Correspondence::new(x, y)).copied()
    }

    /// Candidates incident to an attribute.
    #[inline]
    pub fn incident(&self, attr: AttributeId) -> &[CandidateId] {
        &self.incident[attr.index()]
    }

    /// Candidates for a schema pair (`C_{i,j}`), empty if none.
    pub fn for_edge(&self, a: SchemaId, b: SchemaId) -> &[CandidateId] {
        let edge = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.by_edge.get(&edge).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(schema pair, candidates)` groups.
    pub fn edges(&self) -> impl Iterator<Item = ((SchemaId, SchemaId), &[CandidateId])> {
        self.by_edge.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Iterates over candidate ids.
    pub fn ids(&self) -> impl Iterator<Item = CandidateId> + '_ {
        (0..self.candidates.len()).map(CandidateId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogBuilder;

    fn setup() -> (Catalog, InteractionGraph) {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a1", "a2"]).unwrap();
        b.add_schema_with_attributes("B", ["b1", "b2"]).unwrap();
        b.add_schema_with_attributes("C", ["c1"]).unwrap();
        let catalog = b.build();
        // A—B and B—C but NOT A—C
        let g = InteractionGraph::from_edges(
            3,
            [(SchemaId(0), SchemaId(1)), (SchemaId(1), SchemaId(2))],
        );
        (catalog, g)
    }

    #[test]
    fn correspondence_is_normalized() {
        let c1 = Correspondence::new(AttributeId(5), AttributeId(2));
        let c2 = Correspondence::new(AttributeId(2), AttributeId(5));
        assert_eq!(c1, c2);
        assert_eq!(c1.a(), AttributeId(2));
        assert_eq!(c1.b(), AttributeId(5));
        assert!(c1.touches(AttributeId(2)));
        assert!(!c1.touches(AttributeId(3)));
        assert_eq!(c1.other(AttributeId(2)), Some(AttributeId(5)));
        assert_eq!(c1.other(AttributeId(5)), Some(AttributeId(2)));
        assert_eq!(c1.other(AttributeId(9)), None);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn degenerate_correspondence_panics() {
        let _ = Correspondence::new(AttributeId(1), AttributeId(1));
    }

    #[test]
    fn add_and_lookup() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        let id = set.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.9).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.find(AttributeId(2), AttributeId(0)), Some(id));
        assert_eq!(set.confidence(id), 0.9);
        assert_eq!(set.incident(AttributeId(0)), &[id]);
        assert_eq!(set.incident(AttributeId(2)), &[id]);
        assert_eq!(set.for_edge(SchemaId(1), SchemaId(0)), &[id]);
        assert!(set.for_edge(SchemaId(1), SchemaId(2)).is_empty());
    }

    #[test]
    fn rejects_intra_schema_pairs() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        let err = set.add(&cat, Some(&g), AttributeId(0), AttributeId(1), 0.5).unwrap_err();
        assert!(matches!(err, SchemaError::IntraSchemaCorrespondence(_, _)));
    }

    #[test]
    fn rejects_non_edges_when_graph_given() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        // A—C is not an interaction edge
        let err = set.add(&cat, Some(&g), AttributeId(0), AttributeId(4), 0.5).unwrap_err();
        assert!(matches!(err, SchemaError::NotAnInteractionEdge(_, _)));
        // without a graph it is allowed
        assert!(set.add(&cat, None, AttributeId(0), AttributeId(4), 0.5).is_ok());
    }

    #[test]
    fn rejects_duplicates_and_bad_confidence() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        set.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        assert!(matches!(
            set.add(&cat, Some(&g), AttributeId(2), AttributeId(0), 0.7),
            Err(SchemaError::DuplicateCandidate(_, _))
        ));
        assert!(matches!(
            set.add(&cat, Some(&g), AttributeId(1), AttributeId(2), 1.5),
            Err(SchemaError::InvalidConfidence(_))
        ));
        assert!(matches!(
            set.add(&cat, Some(&g), AttributeId(1), AttributeId(2), f64::NAN),
            Err(SchemaError::InvalidConfidence(_))
        ));
    }

    #[test]
    fn ids_are_dense() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        set.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        set.add(&cat, Some(&g), AttributeId(1), AttributeId(3), 0.6).unwrap();
        set.add(&cat, Some(&g), AttributeId(2), AttributeId(4), 0.7).unwrap();
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids, vec![CandidateId(0), CandidateId(1), CandidateId(2)]);
        for c in set.candidates() {
            assert_eq!(set.get(c.id).corr, c.corr);
        }
    }

    #[test]
    fn remove_compacts_ids_like_a_rebuild() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        set.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        set.add(&cat, Some(&g), AttributeId(1), AttributeId(3), 0.6).unwrap();
        set.add(&cat, Some(&g), AttributeId(2), AttributeId(4), 0.7).unwrap();
        let removed = set.remove(&cat, CandidateId(1)).unwrap();
        assert_eq!(removed.corr, Correspondence::new(AttributeId(1), AttributeId(3)));
        // survivors renumbered in order; equal to re-adding them from scratch
        let mut rebuilt = CandidateSet::new(&cat);
        rebuilt.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        rebuilt.add(&cat, Some(&g), AttributeId(2), AttributeId(4), 0.7).unwrap();
        assert_eq!(set, rebuilt);
        assert_eq!(set.find(AttributeId(2), AttributeId(4)), Some(CandidateId(1)));
        assert_eq!(set.incident(AttributeId(2)), &[CandidateId(0), CandidateId(1)]);
        // unknown ids are a typed error, and the set is untouched
        assert_eq!(
            set.remove(&cat, CandidateId(9)),
            Err(SchemaError::UnknownCandidate(CandidateId(9)))
        );
        assert_eq!(set.len(), 2);
        // removing everything leaves a usable empty set
        set.remove(&cat, CandidateId(0)).unwrap();
        set.remove(&cat, CandidateId(0)).unwrap();
        assert!(set.is_empty());
        assert!(set.for_edge(SchemaId(0), SchemaId(1)).is_empty());
    }

    #[test]
    fn edge_grouping_covers_all_candidates() {
        let (cat, g) = setup();
        let mut set = CandidateSet::new(&cat);
        set.add(&cat, Some(&g), AttributeId(0), AttributeId(2), 0.5).unwrap();
        set.add(&cat, Some(&g), AttributeId(1), AttributeId(3), 0.6).unwrap();
        set.add(&cat, Some(&g), AttributeId(2), AttributeId(4), 0.7).unwrap();
        let total: usize = set.edges().map(|(_, ids)| ids.len()).sum();
        assert_eq!(total, set.len());
    }
}
