//! Evolving-network differential harness for the probabilistic layer:
//! after any random interleaving of arrivals, retirements and assertions,
//! the *evolved* component-sharded [`ProbabilisticNetwork`] must agree
//! with a from-scratch rebuild over the surviving candidates that replays
//! the surviving assertions — probabilities, entropy and information gain
//! within 1e-12 (bitwise, in fact, since the exact per-shard stores hold
//! the same instance sets) and reconciliation traces equal under fixed
//! seeds.
//!
//! The generators stay in the *exact* regime (every conflict component at
//! or below the exact threshold, as with the default configuration on
//! federation-like workloads): there the posterior is a pure function of
//! (index, feedback), so incremental ≡ rebuilt is a hard invariant rather
//! than a statistical one. The sampled path is covered by a separate
//! determinism/soundness smoke below.

use proptest::prelude::*;
use smn_constraints::ConstraintConfig;
use smn_core::feedback::Assertion;
use smn_core::selection::{RandomSelection, SelectionStrategy};
use smn_core::{
    reconcile, InformationGainSelection, MatchingNetwork, ProbabilisticNetwork, ReconciliationGoal,
    SamplerConfig, ShardingConfig,
};
use smn_schema::{
    AttributeId, CandidateId, CandidateSet, Catalog, CatalogBuilder, Correspondence,
    InteractionGraph,
};
use smn_testkit::{tiny_sampler, ScriptedOracle};

/// A 3-schema catalog with `sizes` attributes per schema on the complete
/// graph (both constraint kinds live).
fn three_schema_catalog(sizes: [usize; 3]) -> (Catalog, InteractionGraph) {
    let mut b = CatalogBuilder::new();
    for (i, &n) in sizes.iter().enumerate() {
        let attrs: Vec<String> = (0..n).map(|j| format!("a{i}_{j}")).collect();
        b.add_schema_with_attributes(format!("s{i}"), attrs).unwrap();
    }
    (b.build(), InteractionGraph::complete(3))
}

/// Every cross-schema attribute pair — the arrival pool.
fn pair_pool(cat: &Catalog) -> Vec<(AttributeId, AttributeId)> {
    let mut pool = Vec::new();
    for x in 0..cat.attribute_count() {
        for y in (x + 1)..cat.attribute_count() {
            let (ax, ay) = (AttributeId::from_index(x), AttributeId::from_index(y));
            if cat.schema_of(ax) != cat.schema_of(ay) {
                pool.push((ax, ay));
            }
        }
    }
    pool
}

/// A sharding configuration whose exact threshold covers every component
/// these tiny catalogs can produce — the all-exact regime.
fn exact_sharding() -> ShardingConfig {
    ShardingConfig { exact_threshold: 64, exact_cap: 1 << 20, ..Default::default() }
}

fn sampler() -> SamplerConfig {
    tiny_sampler(7)
}

/// The trace projection compared across evolved/rebuilt networks:
/// everything except `normalized_entropy`, whose baseline is the
/// construction-time uncertainty and thus — by design — differs between a
/// network that evolved and one built fresh at the end state.
fn trace_key(
    t: &[smn_core::TracePoint],
) -> Vec<(usize, CandidateId, bool, smn_core::StepOutcome, f64, f64)> {
    t.iter().map(|p| (p.step, p.candidate, p.approved, p.outcome, p.effort, p.entropy)).collect()
}

proptest! {
    /// The headline differential: evolved sharded posteriors equal a
    /// rebuild-and-replay within 1e-12, and reconciliation traces under a
    /// fixed seed and a fixed scripted oracle are equal point for point.
    #[test]
    fn evolved_sharded_posterior_equals_rebuild_and_replay(
        sizes in prop::array::uniform3(1usize..4),
        seed_mask in any::<u64>(),
        ops in prop::collection::vec(any::<u32>(), 1..20),
    ) {
        let (cat, graph) = three_schema_catalog(sizes);
        let pool = pair_pool(&cat);
        // initial network from the mask
        let mut cs = CandidateSet::new(&cat);
        for (i, &(x, y)) in pool.iter().enumerate() {
            if seed_mask & (1 << (i % 64)) != 0 {
                cs.add(&cat, Some(&graph), x, y, 0.5).unwrap();
            }
        }
        let net =
            MatchingNetwork::new(cat.clone(), graph.clone(), cs, ConstraintConfig::default());
        let mut pn = ProbabilisticNetwork::new_sharded(net, sampler(), exact_sharding());
        // mirror of the surviving assertions, keyed by correspondence
        let mut asserted: Vec<(Correspondence, bool)> = Vec::new();
        for &op in &ops {
            let pick = (op >> 2) as usize;
            match op % 3 {
                0 => {
                    let free: Vec<(AttributeId, AttributeId)> = pool
                        .iter()
                        .filter(|(x, y)| pn.network().candidates().find(*x, *y).is_none())
                        .copied()
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let (x, y) = free[pick % free.len()];
                    pn.extend(x, y, 0.5).unwrap();
                }
                1 => {
                    let n = pn.network().candidate_count();
                    if n == 0 {
                        continue;
                    }
                    let c = CandidateId::from_index(pick % n);
                    let corr = pn.network().corr(c);
                    pn.retire(c).unwrap();
                    asserted.retain(|&(a, _)| a != corr);
                }
                _ => {
                    let n = pn.network().candidate_count();
                    if n == 0 {
                        continue;
                    }
                    let c = CandidateId::from_index(pick % n);
                    let approved = op & 2 != 0;
                    let corr = pn.network().corr(c);
                    if pn.assert_candidate(Assertion { candidate: c, approved }).is_ok()
                        && !asserted.iter().any(|&(a, _)| a == corr)
                    {
                        asserted.push((corr, approved));
                    }
                }
            }
        }
        // from-scratch rebuild over the survivors + chronological replay
        let mut cs2 = CandidateSet::new(&cat);
        for cand in pn.network().candidates().candidates() {
            cs2.add(&cat, Some(&graph), cand.corr.a(), cand.corr.b(), cand.confidence).unwrap();
        }
        let net2 =
            MatchingNetwork::new(cat.clone(), graph.clone(), cs2, ConstraintConfig::default());
        let mut fresh = ProbabilisticNetwork::new_sharded(net2, sampler(), exact_sharding());
        for &(corr, approved) in &asserted {
            let c = fresh.network().candidates().find(corr.a(), corr.b()).expect("survivor");
            fresh
                .assert_candidate(Assertion { candidate: c, approved })
                .expect("replaying a surviving assertion onto a consistent final state");
        }
        // structural equality of the conflict layer
        prop_assert_eq!(pn.network().index(), fresh.network().index());
        prop_assert_eq!(pn.shard_count(), fresh.shard_count());
        // exact regime: both all-exhausted, posteriors within 1e-12
        prop_assert!(pn.is_exhausted() && fresh.is_exhausted());
        prop_assert_eq!(pn.probabilities().len(), fresh.probabilities().len());
        for (i, (&p, &q)) in pn.probabilities().iter().zip(fresh.probabilities()).enumerate() {
            prop_assert!((p - q).abs() < 1e-12, "candidate {}: {} vs {}", i, p, q);
        }
        prop_assert!((pn.entropy() - fresh.entropy()).abs() < 1e-12);
        let uncertain = fresh.uncertain_candidates();
        prop_assert_eq!(pn.uncertain_candidates(), uncertain.clone());
        let (ga, gb) = (pn.information_gains(&uncertain), fresh.information_gains(&uncertain));
        for ((&c, &a), &b) in uncertain.iter().zip(&ga).zip(&gb) {
            prop_assert!((a - b).abs() < 1e-12, "gain of {}: {} vs {}", c, a, b);
        }
        // traces under fixed seeds are equal point for point
        let run = |mut pn: ProbabilisticNetwork| {
            let mut strat = RandomSelection::new(0xF00D);
            let mut oracle = ScriptedOracle::new([true, false, false, true]);
            reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Budget(6))
        };
        prop_assert_eq!(trace_key(&run(pn)), trace_key(&run(fresh)));
    }
}

/// The sampled path (exact enumeration disabled): evolution must stay
/// deterministic — two identical evolution histories yield byte-identical
/// posteriors — and sound: probabilities in range, assertions pinned,
/// every retained monolithic sample a feedback-respecting matching
/// instance.
#[test]
fn sampled_shards_evolve_deterministically_and_soundly() {
    let evolve = |sharded: bool| {
        let (net, _) = smn_testkit::perturbed_network(3, 5, 0.6, 0.9, 11);
        let sharding = ShardingConfig { exact_threshold: 0, parallel: false, ..Default::default() };
        let mut pn = if sharded {
            ProbabilisticNetwork::new_sharded(net, tiny_sampler(3), sharding)
        } else {
            ProbabilisticNetwork::new(net, tiny_sampler(3))
        };
        let pool = pair_pool(pn.network().catalog());
        // a fixed little history: two arrivals, one assertion, one retirement
        let fresh: Vec<(AttributeId, AttributeId)> = pool
            .iter()
            .filter(|(x, y)| pn.network().candidates().find(*x, *y).is_none())
            .take(2)
            .copied()
            .collect();
        for &(x, y) in &fresh {
            pn.extend(x, y, 0.5).unwrap();
        }
        let target = CandidateId::from_index(pn.network().candidate_count() / 2);
        let _ = pn.assert_candidate(Assertion { candidate: target, approved: false });
        pn.retire(CandidateId(0)).unwrap();
        pn
    };
    for sharded in [false, true] {
        let a = evolve(sharded);
        let b = evolve(sharded);
        assert_eq!(a.probabilities(), b.probabilities(), "evolution must be deterministic");
        for &p in a.probabilities() {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        for c in a.feedback().disapproved().iter() {
            assert_eq!(a.probability(c), 0.0, "disapproval must stay pinned");
        }
        // the monolithic store exposes its samples: check instance-hood
        if !sharded {
            let index = a.network().index();
            for s in a.samples() {
                assert!(index.is_consistent(s));
                assert!(index.is_maximal(s, a.feedback().disapproved()));
                assert!(a.feedback().respected_by(s));
            }
        }
    }
}

/// Monotone arrival stream: starting from an empty catalog's candidate
/// set and extending candidate by candidate reaches exactly the one-shot
/// network — the "cold start to full network, online" path.
#[test]
fn arrival_stream_from_empty_reaches_the_batch_network() {
    let (cat, graph) = three_schema_catalog([2, 2, 2]);
    let pool = pair_pool(&cat);
    let empty = CandidateSet::new(&cat);
    let net = MatchingNetwork::new(cat.clone(), graph.clone(), empty, ConstraintConfig::default());
    let mut pn = ProbabilisticNetwork::new_sharded(net, sampler(), exact_sharding());
    assert_eq!(pn.entropy(), 0.0);
    for &(x, y) in &pool {
        pn.extend(x, y, 0.5).unwrap();
    }
    let mut cs = CandidateSet::new(&cat);
    for &(x, y) in &pool {
        cs.add(&cat, Some(&graph), x, y, 0.5).unwrap();
    }
    let batch = ProbabilisticNetwork::new_sharded(
        MatchingNetwork::new(cat, graph, cs, ConstraintConfig::default()),
        sampler(),
        exact_sharding(),
    );
    assert_eq!(pn.network().index(), batch.network().index());
    assert_eq!(pn.probabilities(), batch.probabilities());
    assert_eq!(pn.shard_count(), batch.shard_count());
    assert_eq!(pn.entropy(), batch.entropy());
}

/// The cached-selection mirror of [`Session`]: a fresh-scan
/// [`InformationGainSelection`] (via
/// [`without_cache`](InformationGainSelection::without_cache)) plus a
/// hand-rolled replica of the session's undo/fork bookkeeping. Driving it
/// in lockstep with a real (cache-enabled) session pins the tentpole
/// contract — the gain cache must never change a question, a score bit,
/// or an RNG draw, through any interleaving of answers, arrivals,
/// retirements, undos and forks.
struct FreshReference {
    pn: ProbabilisticNetwork,
    strategy: InformationGainSelection,
    undo_stack: Vec<ProbabilisticNetwork>,
}

impl FreshReference {
    fn next_question(&mut self) -> Option<(CandidateId, Option<u64>)> {
        let (c, score) = self.strategy.select_with_score(&self.pn)?;
        Some((c, score.map(f64::to_bits)))
    }

    /// Mirror of [`Session::answer`]: validate first, snapshot only
    /// before an assertion that will really integrate.
    fn answer(&mut self, candidate: CandidateId, approved: bool) {
        let assertion = Assertion { candidate, approved };
        if !matches!(self.pn.validate_assertion(assertion), Ok(true)) {
            return;
        }
        let snapshot = self.pn.fork();
        self.pn.assert_candidate(assertion).expect("validated assertion integrates");
        if self.undo_stack.len() >= smn_core::Session::UNDO_DEPTH {
            self.undo_stack.remove(0);
        }
        self.undo_stack.push(snapshot);
    }
}

proptest! {
    /// Cached selection ≡ fresh scan, byte for byte, across evolution,
    /// undo and forks. The real session runs the (default) cache-enabled
    /// [`InformationGainSelection`]; the reference recomputes every gain
    /// from scratch. Every question — candidate id *and* score bits —
    /// must agree at every step, which also proves the two sides consume
    /// identical RNG streams (one divergent draw would desynchronise all
    /// later tie-breaks). Undo restores forks whose shard epochs predate
    /// cache entries shared through the [`Session::fork`] `Arc` — the
    /// aliasing case the globally unique epochs exist for.
    #[test]
    fn cached_session_trace_equals_fresh_scan_through_evolution_and_undo(
        sizes in prop::array::uniform3(1usize..4),
        seed in any::<u64>(),
        ops in prop::collection::vec(any::<u32>(), 1..24),
    ) {
        let (cat, graph) = three_schema_catalog(sizes);
        let pool = pair_pool(&cat);
        let mut cs = CandidateSet::new(&cat);
        for &(x, y) in pool.iter().take(pool.len().div_ceil(2)) {
            cs.add(&cat, Some(&graph), x, y, 0.5).unwrap();
        }
        let net =
            MatchingNetwork::new(cat.clone(), graph.clone(), cs, ConstraintConfig::default());
        let mut session = smn_core::Session::new(
            net.clone(),
            smn_core::SessionConfig {
                sampler: sampler(),
                strategy: smn_core::Strategy::InformationGain,
                strategy_seed: seed,
                sharding: exact_sharding(),
            },
        );
        let mut fresh = FreshReference {
            pn: ProbabilisticNetwork::new_sharded(net, sampler(), exact_sharding()),
            strategy: InformationGainSelection::new(seed).without_cache(),
            undo_stack: Vec::new(),
        };
        for &op in &ops {
            // lockstep question — the observable the cache must not move
            let question = session.next_question();
            let expected = fresh.next_question();
            prop_assert_eq!(
                question.as_ref().map(|q| (q.candidate, q.score.map(f64::to_bits))),
                expected,
                "cached and fresh questions diverged"
            );
            let pick = (op >> 3) as usize;
            match op % 8 {
                0..=3 => {
                    let Some(q) = question else { continue };
                    let approved = q.probability > 0.5;
                    let _ = session.answer(q.candidate, approved);
                    fresh.answer(q.candidate, approved);
                }
                4 => {
                    let undone = session.undo();
                    let reference = fresh.undo_stack.pop();
                    prop_assert_eq!(undone.is_some(), reference.is_some());
                    if let Some(pn) = reference {
                        fresh.pn = pn;
                    }
                }
                5 => {
                    let free: Vec<(AttributeId, AttributeId)> = pool
                        .iter()
                        .filter(|(x, y)| {
                            session.network().network().candidates().find(*x, *y).is_none()
                        })
                        .copied()
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let (x, y) = free[pick % free.len()];
                    session.extend(x, y, 0.5).unwrap();
                    fresh.pn.extend(x, y, 0.5).unwrap();
                    fresh.undo_stack.clear();
                }
                6 => {
                    let n = session.network().network().candidate_count();
                    if n == 0 {
                        continue;
                    }
                    let c = CandidateId::from_index(pick % n);
                    session.retire(c).unwrap();
                    fresh.pn.retire(c).unwrap();
                    fresh.undo_stack.clear();
                }
                _ => {
                    // branch both sides: the fork shares the parent's
                    // gain cache through the Arc, on purpose
                    session = session.fork();
                    fresh = FreshReference {
                        pn: fresh.pn.fork(),
                        strategy: fresh.strategy.clone(),
                        undo_stack: Vec::new(),
                    };
                }
            }
        }
        // final posterior parity: the cache never touched the model
        prop_assert_eq!(session.network().probabilities(), fresh.pn.probabilities());
    }
}
