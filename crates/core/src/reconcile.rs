//! The generic uncertainty-reduction loop (Algorithm 1, §IV-B).
//!
//! Repeats select → elicit → integrate until the reconciliation goal `δ`
//! holds, recording a trace point per assertion so experiments can plot
//! uncertainty/quality against user effort (Figs. 9–11).

use crate::feedback::Assertion;
use crate::oracle::Oracle;
use crate::probability::ProbabilisticNetwork;
use crate::selection::SelectionStrategy;
use smn_schema::CandidateId;

/// The reconciliation goal `δ` of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconciliationGoal {
    /// Stop after `k` assertions (the limited effort budget of Problem 1).
    Budget(usize),
    /// Stop once network uncertainty drops below a threshold (bits).
    EntropyBelow(f64),
    /// Reconcile until the strategy has nothing left to select. For the
    /// built-in random baseline and the information-gain heuristic that is
    /// *every* candidate (both fall back to certain-but-unasserted ones,
    /// like the expert of §VI-C who reviews the complete output);
    /// uncertainty-only strategies stop at zero entropy.
    Complete,
}

/// How an elicited assertion was integrated into the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The oracle's verdict was integrated as given.
    Integrated,
    /// The verdict was an approval the model rejected as inconsistent
    /// with earlier approvals; the step was integrated as a *disapproval*
    /// instead (the tool refuses input that would empty Ω).
    Flipped,
    /// Neither the verdict nor the disapproval fallback could be
    /// integrated (the oracle re-asserted a candidate against its
    /// standing feedback); the model is unchanged.
    Skipped,
}

/// One step of the reconciliation trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// 1-based assertion count after this step.
    pub step: usize,
    /// The asserted candidate.
    pub candidate: CandidateId,
    /// The recorded verdict: the oracle's verdict as integrated for
    /// [`Integrated`](StepOutcome::Integrated) steps, the disapproval
    /// fallback for [`Flipped`](StepOutcome::Flipped) ones, and the
    /// oracle's *rejected* verdict for [`Skipped`](StepOutcome::Skipped)
    /// ones (nothing was integrated — check `outcome` before counting).
    pub approved: bool,
    /// How the verdict was integrated.
    pub outcome: StepOutcome,
    /// User effort `E` after this step.
    pub effort: f64,
    /// Network uncertainty (bits) after this step.
    pub entropy: f64,
    /// Uncertainty normalized by the pre-reconciliation uncertainty.
    pub normalized_entropy: f64,
}

/// Runs Algorithm 1: reduces uncertainty with `strategy`-selected
/// assertions elicited from `oracle` until `goal` is met.
///
/// Assertions the probabilistic model rejects as contradictory (a noisy
/// oracle approving a candidate that conflicts with earlier approvals) are
/// recorded as *disapprovals* of the contradicting candidate — the model
/// stays consistent and the loop proceeds; this mirrors a real session
/// where the tool would refuse the inconsistent input. If even the
/// fallback is rejected (the oracle flipped its own earlier verdict), the
/// step is traced as [`StepOutcome::Skipped`] with the model untouched —
/// a noisy oracle can never panic the loop.
pub fn reconcile(
    pn: &mut ProbabilisticNetwork,
    strategy: &mut dyn SelectionStrategy,
    oracle: &mut dyn Oracle,
    goal: ReconciliationGoal,
) -> Vec<TracePoint> {
    let mut trace = Vec::new();
    loop {
        match goal {
            ReconciliationGoal::Budget(k) if trace.len() >= k => break,
            ReconciliationGoal::EntropyBelow(h) if pn.entropy() < h => break,
            _ => {}
        }
        // (1) select an uncertain correspondence
        let Some(candidate) = strategy.select(pn) else {
            break; // fully reconciled
        };
        // (2) elicit the assertion
        let corr = pn.network().corr(candidate);
        let approved = oracle.assert(corr);
        // (3) integrate the feedback
        let assertion = Assertion { candidate, approved };
        let (effective, outcome) = match pn.assert_candidate(assertion) {
            Ok(()) => (assertion, StepOutcome::Integrated),
            Err(_) => {
                let fallback = Assertion { candidate, approved: false };
                match pn.assert_candidate(fallback) {
                    Ok(()) => (fallback, StepOutcome::Flipped),
                    // the oracle contradicted its own earlier verdict:
                    // nothing can be integrated, record the skip
                    Err(_) => (assertion, StepOutcome::Skipped),
                }
            }
        };
        trace.push(TracePoint {
            step: trace.len() + 1,
            candidate,
            approved: effective.approved,
            outcome,
            effort: pn.effort(),
            entropy: pn.entropy(),
            normalized_entropy: pn.normalized_entropy(),
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sampling::SamplerConfig;
    use crate::selection::{InformationGainSelection, RandomSelection};
    use crate::testutil::{fig1_network, perturbed_network};
    use crate::ProbabilisticNetwork;
    use smn_schema::{AttributeId, Correspondence};

    fn fig1_pn(seed: u64) -> ProbabilisticNetwork {
        ProbabilisticNetwork::new(
            fig1_network(),
            SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 3,
                n_min: 50,
                seed,
                chains: 1,
            },
        )
    }

    /// Ground truth of the Fig. 1 network: the screenDate triangle.
    fn fig1_oracle() -> GroundTruthOracle {
        let a = AttributeId;
        GroundTruthOracle::new([
            Correspondence::new(a(0), a(1)), // c0
            Correspondence::new(a(1), a(3)), // c3
            Correspondence::new(a(0), a(3)), // c4
        ])
    }

    #[test]
    fn complete_reconciliation_zeroes_entropy() {
        let mut pn = fig1_pn(1);
        let mut strat = InformationGainSelection::new(2);
        let trace =
            reconcile(&mut pn, &mut strat, &mut fig1_oracle(), ReconciliationGoal::Complete);
        assert!(!trace.is_empty());
        assert_eq!(pn.entropy(), 0.0);
        // the surviving instance is exactly the ground truth triangle
        assert_eq!(pn.probability(smn_schema::CandidateId(0)), 1.0);
        assert_eq!(pn.probability(smn_schema::CandidateId(3)), 1.0);
        assert_eq!(pn.probability(smn_schema::CandidateId(4)), 1.0);
        assert_eq!(pn.probability(smn_schema::CandidateId(1)), 0.0);
        assert_eq!(pn.probability(smn_schema::CandidateId(2)), 0.0);
    }

    #[test]
    fn budget_goal_stops_early() {
        let mut pn = fig1_pn(2);
        let mut strat = RandomSelection::new(3);
        let trace =
            reconcile(&mut pn, &mut strat, &mut fig1_oracle(), ReconciliationGoal::Budget(2));
        assert_eq!(trace.len(), 2);
        assert!((trace[1].effort - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_goal_stops_when_reached() {
        let mut pn = fig1_pn(3);
        let mut strat = InformationGainSelection::new(4);
        let trace = reconcile(
            &mut pn,
            &mut strat,
            &mut fig1_oracle(),
            ReconciliationGoal::EntropyBelow(3.5),
        );
        assert!(pn.entropy() < 3.5);
        // IG strategy needs a single assertion: any of c1..c4 drops H from
        // 5 to 3 (see probability tests)
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn trace_is_monotone_in_effort() {
        let (net, truth) = perturbed_network(3, 6, 0.7, 0.9, 5);
        let mut pn = ProbabilisticNetwork::new(
            net,
            SamplerConfig {
                anneal: true,
                n_samples: 300,
                walk_steps: 3,
                n_min: 100,
                seed: 6,
                chains: 1,
            },
        );
        let mut strat = RandomSelection::new(7);
        let mut oracle = GroundTruthOracle::new(truth);
        let trace = reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Complete);
        for w in trace.windows(2) {
            assert!(w[1].effort > w[0].effort);
            assert_eq!(w[1].step, w[0].step + 1);
        }
        let last = trace.last().unwrap();
        assert_eq!(last.entropy, 0.0, "complete reconciliation ends certain");
    }

    use crate::testutil::{ScriptedOracle, ScriptedSelection};

    #[test]
    fn inconsistent_approval_is_flipped_not_panicked() {
        use smn_schema::CandidateId;
        // approve c1, then (noisily) approve its 1-1 conflict partner c3:
        // the model refuses the approval and records a disapproval instead
        let mut pn = fig1_pn(4);
        let mut strat = ScriptedSelection::new([CandidateId(1), CandidateId(3)]);
        let mut oracle = ScriptedOracle::new([true, true]);
        let trace = reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Complete);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].outcome, StepOutcome::Integrated);
        assert_eq!(trace[1].outcome, StepOutcome::Flipped);
        assert!(!trace[1].approved, "the flipped step records the integrated disapproval");
        assert!(pn.feedback().disapproved().contains(CandidateId(3)));
    }

    #[test]
    fn oracle_contradicting_itself_never_panics() {
        use smn_schema::CandidateId;
        // the oracle disapproves c2, is asked again and approves it: the
        // approval is refused and the disapproval fallback lands on the
        // standing verdict (a no-op) — the step surfaces as Flipped with
        // the model unchanged. Before the typed-error fix this panicked
        // inside Feedback::assert.
        let mut pn = fig1_pn(5);
        let mut strat = ScriptedSelection::new([CandidateId(2), CandidateId(2)]);
        let mut oracle = ScriptedOracle::new([false, true]);
        let trace = reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Complete);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].outcome, StepOutcome::Integrated);
        assert_eq!(trace[1].outcome, StepOutcome::Flipped);
        // the contradictory step changed nothing
        assert_eq!(trace[1].effort, trace[0].effort);
        assert_eq!(trace[1].entropy, trace[0].entropy);
        assert!(pn.feedback().disapproved().contains(CandidateId(2)));
        // the reverse flip (disapproving an approved candidate) cannot use
        // the fallback either — it surfaces as Skipped, through the path
        // that used to panic on the `expect`
        let mut strat = ScriptedSelection::new([CandidateId(1), CandidateId(1)]);
        let mut oracle = ScriptedOracle::new([true, false]);
        let trace = reconcile(&mut pn, &mut strat, &mut oracle, ReconciliationGoal::Complete);
        assert_eq!(trace[1].outcome, StepOutcome::Skipped);
        assert_eq!(trace[1].effort, trace[0].effort);
        assert!(pn.feedback().approved().contains(CandidateId(1)));
    }

    #[test]
    fn information_gain_needs_no_more_steps_than_random_on_fig1() {
        // On the Fig. 1 network the IG strategy resolves everything in two
        // assertions; random may need up to four.
        let mut ig_steps = Vec::new();
        let mut rnd_steps = Vec::new();
        for seed in 0..10 {
            let mut pn = fig1_pn(seed);
            let mut strat = InformationGainSelection::new(seed);
            ig_steps.push(
                reconcile(&mut pn, &mut strat, &mut fig1_oracle(), ReconciliationGoal::Complete)
                    .len(),
            );
            let mut pn = fig1_pn(seed);
            let mut strat = RandomSelection::new(seed);
            rnd_steps.push(
                reconcile(&mut pn, &mut strat, &mut fig1_oracle(), ReconciliationGoal::Complete)
                    .len(),
            );
        }
        let ig_avg: f64 = ig_steps.iter().sum::<usize>() as f64 / ig_steps.len() as f64;
        let rnd_avg: f64 = rnd_steps.iter().sum::<usize>() as f64 / rnd_steps.len() as f64;
        assert!(ig_avg <= rnd_avg, "IG {ig_avg} should not exceed random {rnd_avg}");
    }
}
