//! Remote-shard hooks: the per-server half of the distributed
//! reconciliation mode.
//!
//! The conflict-graph factorization that makes shards independent within
//! one process (see [`crate::shard`]) also makes them independent across
//! *processes*: a shard server can own a subset of the components and
//! answer every per-shard question — integrate an assertion, evaluate a
//! what-if entropy, scan information gains — without seeing any other
//! component's samples. [`ShardHost`] packages exactly that: the full
//! network *structure* (conflict index + component partition, which every
//! participant derives identically from the structure-only bootstrap
//! image) plus the sample state of the components this process owns.
//!
//! Determinism contract: every kernel a `ShardHost` runs is the *same
//! function* the single-process `ShardSet`
//! runs — shard `k` is seeded `seed + k` wherever it lives, evolution
//! rebuilds go through the shared `merged_inputs`/`split_inputs`
//! helpers, and exported shard state re-imports bit-identically through
//! the same [`persist`](crate::persist) re-recording path the snapshot
//! loader uses. A distributed run over any number of shard servers is
//! therefore byte-identical to the single-process run, which is what the
//! `smn-dist` differential certificate pins.

use crate::feedback::{Assertion, Feedback};
use crate::persist::{FeedbackState, NetworkState, ShardState};
use crate::pool;
use crate::probability::{gains_within, network_from_state, network_to_structure};
use crate::reconcile::StepOutcome;
use crate::sampling::{SampleStore, SamplerConfig};
use crate::shard::{
    build_evolved_shard, build_shard, commit_lane_local, entropy_after_local, merged_inputs,
    snapshot_entropy, snapshot_probabilities, split_inputs, ShardSnapshot, ShardingConfig,
};
use crate::MatchingNetwork;
use smn_constraints::components::ComponentEvolution;
use smn_constraints::Components;
use smn_schema::{AttributeId, CandidateId, SchemaError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One process's view of the sharded model: full structure, partial
/// sample state. The coordinator runs one with *no* owned components (a
/// pure structure mirror for routing, validation and global bookkeeping);
/// each shard server runs one owning its placement slice.
#[derive(Debug, Clone)]
pub struct ShardHost {
    network: MatchingNetwork,
    components: Arc<Components>,
    /// Sample state of the owned components, keyed by component id.
    owned: BTreeMap<usize, Arc<ShardSnapshot>>,
    sampler: SamplerConfig,
    sharding: ShardingConfig,
}

impl ShardHost {
    /// Builds a host owning the listed components: the partition and every
    /// sub-index derive from `network` exactly as
    /// `ShardSet::build` derives them, and each
    /// owned shard is built by the same seeded builder — so the union of
    /// the hosts' shards across servers is bit-identical to the
    /// single-process shard set. Sampled fills of distinct owned shards
    /// run across the worker pool when configured, exactly like the
    /// single-process parallel build (the result does not depend on it).
    ///
    /// Panics if an entry of `owned` is not a component id; validate
    /// wire-derived lists with [`Components::count`] via
    /// [`from_structure`](Self::from_structure) instead.
    pub fn new(
        network: MatchingNetwork,
        sampler: SamplerConfig,
        sharding: ShardingConfig,
        owned: &[usize],
    ) -> Self {
        let components = Components::of_index(network.index());
        let sub_indices = network.index().shard(&components);
        for &k in owned {
            assert!(k < components.count(), "owned component {k} out of range");
        }
        let any_sampled =
            owned.iter().any(|&k| sub_indices[k].candidate_count() > sharding.exact_threshold);
        let shards: Vec<Arc<ShardSnapshot>> = if sharding.parallel && any_sampled && owned.len() > 1
        {
            let tasks: Vec<pool::Task<'_, Arc<ShardSnapshot>>> = owned
                .iter()
                .map(|&k| {
                    let sub = sub_indices[k].clone();
                    Box::new(move || Arc::new(build_shard(k, sub, sampler, &sharding)))
                        as pool::Task<'_, Arc<ShardSnapshot>>
                })
                .collect();
            pool::global().run(tasks)
        } else {
            owned
                .iter()
                .map(|&k| Arc::new(build_shard(k, sub_indices[k].clone(), sampler, &sharding)))
                .collect()
        };
        let owned = owned.iter().copied().zip(shards).collect();
        Self { network, components: Arc::new(components), owned, sampler, sharding }
    }

    /// Reconstructs a host from a structure-only [`NetworkState`] (the
    /// bootstrap image a coordinator ships) and the owned-component list.
    /// Structure is validated like the snapshot loader validates it; the
    /// owned shards are then *built* here — samples never travel at
    /// bootstrap, so server fill cost scales with the owned slice.
    pub fn from_structure(state: &NetworkState, owned: &[usize]) -> Result<Self, String> {
        let network = network_from_state(state)?;
        let sharding = state
            .sharding
            .ok_or_else(|| "structure state carries no sharding config".to_string())?;
        let components = Components::of_index(network.index());
        if let Some(&bad) = owned.iter().find(|&&k| k >= components.count()) {
            return Err(format!("owned component {bad} of {}", components.count()));
        }
        Ok(Self::new(network, state.sampler, sharding, owned))
    }

    /// The structure-only image of this host's network — what a
    /// coordinator ships to bootstrap shard servers. Contains no feedback
    /// and no sample state.
    pub fn structure(&self) -> NetworkState {
        network_to_structure(&self.network, self.sampler, Some(self.sharding))
    }

    /// The underlying network structure.
    pub fn network(&self) -> &MatchingNetwork {
        &self.network
    }

    /// The conflict-component partition (identical on every participant).
    pub fn components(&self) -> &Components {
        &self.components
    }

    /// Number of conflict components.
    pub fn component_count(&self) -> usize {
        self.components.count()
    }

    /// Component ids this host owns sample state for, ascending.
    pub fn owned_components(&self) -> Vec<usize> {
        self.owned.keys().copied().collect()
    }

    /// Whether this host owns component `k`.
    pub fn owns(&self, k: usize) -> bool {
        self.owned.contains_key(&k)
    }

    /// The sampler configuration (shard `k` derives seed `seed + k`).
    pub fn sampler(&self) -> SamplerConfig {
        self.sampler
    }

    /// The sharding configuration.
    pub fn sharding(&self) -> ShardingConfig {
        self.sharding
    }

    /// Owning component of a global candidate.
    pub fn component_of(&self, c: CandidateId) -> usize {
        self.components.component_of(c)
    }

    /// An owned shard's Eq. 2 probabilities in local member order — the
    /// wire shape the coordinator scatters into its global vector.
    pub fn shard_probabilities(&self, k: usize) -> Option<Vec<f64>> {
        self.owned.get(&k).map(|s| snapshot_probabilities(s))
    }

    /// An owned shard's entropy contribution (Σ H(p) over members).
    pub fn shard_entropy(&self, k: usize) -> Option<f64> {
        self.owned.get(&k).map(|s| snapshot_entropy(s))
    }

    /// Integrates a coordinator-validated assertion into the owning shard
    /// — the same copy-on-write feedback + view-maintenance step as
    /// `ShardSet::assert` — and returns the
    /// shard's new probabilities. `None` if this host does not own the
    /// candidate's component.
    pub fn assert_unchecked(&mut self, candidate: CandidateId, approved: bool) -> Option<Vec<f64>> {
        let k = self.components.component_of(candidate);
        let lc = CandidateId::from_index(self.components.local_index(candidate));
        let snap = self.owned.get_mut(&k)?;
        let ShardSnapshot { index, feedback, store } = Arc::make_mut(snap);
        feedback.assert(Assertion { candidate: lc, approved });
        store.maintain_with_index(index, feedback, lc, approved);
        Some(snapshot_probabilities(snap))
    }

    /// Applies a lane of decided assertions (global ids, all of component
    /// `k`, in decision order) through the same validate/fallback ladder
    /// as `ShardSet::commit_lane`, installs the
    /// mutated snapshot and returns the per-event
    /// `(standing verdict, outcome, mutated)` triples plus the shard's
    /// probabilities when anything changed.
    #[allow(clippy::type_complexity)]
    pub fn commit_lane(
        &mut self,
        k: usize,
        events: &[Assertion],
    ) -> Option<(Vec<(bool, StepOutcome, bool)>, Option<Vec<f64>>)> {
        let local: Vec<Assertion> = events
            .iter()
            .map(|e| Assertion {
                candidate: CandidateId::from_index(self.components.local_index(e.candidate)),
                approved: e.approved,
            })
            .collect();
        let snap = self.owned.get_mut(&k)?;
        let (work, results) = commit_lane_local(snap, &local);
        let probs = work.map(|s| {
            *snap = Arc::new(s);
            snapshot_probabilities(snap)
        });
        Some((results, probs))
    }

    /// The entropy shard `k` would carry after hypothetically integrating
    /// `(candidate, approved)` — the remote half of the batched what-if
    /// composition `H' = H − H_k + H'_k`. The candidate is a global id of
    /// component `k`; validation (inertness) is the coordinator's job.
    pub fn entropy_after(&self, candidate: CandidateId, approved: bool) -> Option<f64> {
        let k = self.components.component_of(candidate);
        let lc = CandidateId::from_index(self.components.local_index(candidate));
        self.owned.get(&k).map(|s| entropy_after_local(s, lc, approved))
    }

    /// Expected information gains of the pool candidates (global ids, all
    /// of component `k`), through the same per-shard kernel the
    /// single-process gain scan uses over the same local probabilities.
    pub fn gains(&self, k: usize, pool: &[CandidateId]) -> Option<Vec<f64>> {
        let snap = self.owned.get(&k)?;
        let local_probs = snapshot_probabilities(snap);
        let locals: Vec<usize> = pool.iter().map(|&c| self.components.local_index(c)).collect();
        Some(gains_within(snap.store.matrix(), &local_probs, &locals))
    }

    /// Serializes an owned shard's sample state for shipment — the same
    /// [`ShardState`] a snapshot stores, so the importing side rebuilds it
    /// bit-identically through the snapshot loader's re-recording path.
    pub fn export_shard(&self, k: usize) -> Option<ShardState> {
        self.owned.get(&k).map(|s| ShardState {
            feedback: FeedbackState::of(&s.feedback),
            store: s.store.to_state(),
        })
    }

    /// Installs a shipped shard's sample state as component `k`, deriving
    /// the sub-index locally (sub-indices are canonical: every derivation
    /// path yields the same index, so a migrated shard continues exactly
    /// as it would have on its old server).
    pub fn import_shard(&mut self, k: usize, state: &ShardState) -> Result<(), String> {
        if k >= self.components.count() {
            return Err(format!("imported component {k} of {}", self.components.count()));
        }
        let m = self.components.members(k).len();
        if state.store.candidate_count != m {
            return Err(format!(
                "imported shard {k} store sized for {} of {m} members",
                state.store.candidate_count
            ));
        }
        let snap = ShardSnapshot {
            index: self.network.index().shard_component(&self.components, k),
            feedback: state.feedback.build(m)?,
            store: SampleStore::from_state(&state.store)?,
        };
        self.owned.insert(k, Arc::new(snap));
        Ok(())
    }

    /// Drops an owned shard (after it migrated elsewhere or dissolved).
    pub fn drop_shard(&mut self, k: usize) {
        self.owned.remove(&k);
    }

    /// Applies a network extension to the *structure*: appends the
    /// candidate, patches the conflict index, merges the coupled
    /// components and rekeys owned shards under the new numbering.
    /// Dissolved components' shards are dropped — the protocol exports
    /// them *before* broadcasting the event — and the merged component has
    /// no state until [`rebuild_merged`](Self::rebuild_merged) runs on its
    /// owner. Returns the arrival id and the partition evolution (remap,
    /// dissolved member lists, rebuilt component), identical on every
    /// participant.
    pub fn apply_extend(
        &mut self,
        x: AttributeId,
        y: AttributeId,
        confidence: f64,
    ) -> Result<(CandidateId, ComponentEvolution), SchemaError> {
        let id = self.network.extend(x, y, confidence)?;
        let evo = Arc::make_mut(&mut self.components).add_candidate(self.network.index());
        self.rekey_owned(&evo.remap);
        Ok((id, evo))
    }

    /// Applies a retirement to the structure: removes the candidate,
    /// patches the index, splits its component and rekeys owned shards.
    /// The dissolved shard is dropped (exported beforehand by the
    /// protocol); the split parts have no state until
    /// [`rebuild_part`](Self::rebuild_part) runs on their owners.
    pub fn apply_retire(&mut self, c: CandidateId) -> Result<ComponentEvolution, SchemaError> {
        if c.index() >= self.network.candidate_count() {
            return Err(SchemaError::UnknownCandidate(c));
        }
        self.network.retire(c)?;
        let evo = Arc::make_mut(&mut self.components).retire_candidate(self.network.index(), c);
        self.rekey_owned(&evo.remap);
        Ok(evo)
    }

    fn rekey_owned(&mut self, remap: &[Option<usize>]) {
        let old = std::mem::take(&mut self.owned);
        for (old_k, snap) in old {
            if let Some(new_k) = remap[old_k] {
                self.owned.insert(new_k, snap);
            }
        }
    }

    /// Rebuilds the merged component `k` after an extension from the
    /// absorbed sources' shipped states, each paired with its pre-merge
    /// member list and given in ascending *old* component order — the
    /// exact cross-combination order `ShardSet::extend`
    /// uses, which the carried-sample cap makes order-sensitive. Must run
    /// after [`apply_extend`](Self::apply_extend).
    pub fn rebuild_merged(
        &mut self,
        k: usize,
        absorbed: &[(Vec<CandidateId>, ShardState)],
    ) -> Result<(), String> {
        let arrival = CandidateId::from_index(self.network.candidate_count() - 1);
        let mut decoded = Vec::with_capacity(absorbed.len());
        for (members, state) in absorbed {
            if state.store.candidate_count != members.len() {
                return Err(format!(
                    "absorbed store sized for {} of {} members",
                    state.store.candidate_count,
                    members.len()
                ));
            }
            decoded.push((
                members,
                state.feedback.build(members.len())?,
                SampleStore::from_state(&state.store)?,
            ));
        }
        let sources: Vec<(&[CandidateId], &Feedback, &SampleStore)> =
            decoded.iter().map(|(m, f, s)| (m.as_slice(), f, s)).collect();
        let sub = self.network.index().shard_component(&self.components, k);
        let (feedback, carried) =
            merged_inputs(&self.components, &sub, arrival, &sources, self.sampler, &self.sharding);
        self.owned.insert(
            k,
            Arc::new(build_evolved_shard(k, sub, feedback, carried, self.sampler, &self.sharding)),
        );
        Ok(())
    }

    /// Rebuilds one split part `k` after a retirement from the dissolved
    /// shard's shipped state (`old_members` is its pre-event member list,
    /// ascending, still containing the retiree) — the same restrict +
    /// greedily-re-maximize carry-over as
    /// `ShardSet::retire`. Must run after
    /// [`apply_retire`](Self::apply_retire); every part owner receives the
    /// same old state.
    pub fn rebuild_part(
        &mut self,
        k: usize,
        old_members: &[CandidateId],
        old_state: &ShardState,
        retired: CandidateId,
    ) -> Result<(), String> {
        if old_state.store.candidate_count != old_members.len() {
            return Err(format!(
                "dissolved store sized for {} of {} members",
                old_state.store.candidate_count,
                old_members.len()
            ));
        }
        let old_feedback = old_state.feedback.build(old_members.len())?;
        let old_store = SampleStore::from_state(&old_state.store)?;
        let sub = self.network.index().shard_component(&self.components, k);
        let (feedback, carried) = split_inputs(
            &self.components,
            k,
            &sub,
            old_members,
            &old_feedback,
            &old_store,
            retired,
            &self.sharding,
        );
        self.owned.insert(
            k,
            Arc::new(build_evolved_shard(k, sub, feedback, carried, self.sampler, &self.sharding)),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::ProbabilisticNetwork;
    use crate::shard::ShardSet;
    use crate::testutil::perturbed_network;

    fn sampler() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 5, chains: 1 }
    }

    /// Sampled everywhere: force every component through the sampler so
    /// the tests exercise seed derivation, not just exact enumeration.
    fn sampled_cfg() -> ShardingConfig {
        ShardingConfig { exact_threshold: 0, ..Default::default() }
    }

    fn all_probs(host: &ShardHost) -> Vec<f64> {
        let n = host.network().candidate_count();
        let mut probs = vec![0.0; n];
        for k in host.owned_components() {
            let local = host.shard_probabilities(k).unwrap();
            for (j, &g) in host.components().members(k).iter().enumerate() {
                probs[g.index()] = local[j];
            }
        }
        probs
    }

    #[test]
    fn a_union_of_hosts_matches_the_single_process_shard_set() {
        for cfg in [ShardingConfig::default(), sampled_cfg()] {
            let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 9);
            let set = ShardSet::build(net.index(), sampler(), &cfg);
            let count = set.components.count();
            let n = net.candidate_count();
            let mut reference = vec![0.0; n];
            set.write_all_probabilities(&mut reference);
            // split ownership across two hosts by parity
            let even: Vec<usize> = (0..count).filter(|k| k % 2 == 0).collect();
            let odd: Vec<usize> = (0..count).filter(|k| k % 2 == 1).collect();
            let a = ShardHost::new(net.clone(), sampler(), cfg, &even);
            let b = ShardHost::new(net.clone(), sampler(), cfg, &odd);
            let mut union = vec![0.0; n];
            for host in [&a, &b] {
                for (g, &p) in all_probs(host).iter().enumerate() {
                    if p != 0.0 || host.owns(host.component_of(CandidateId::from_index(g))) {
                        union[g] = p;
                    }
                }
            }
            assert_eq!(union, reference, "host shards diverged from the shard set");
            for (k, shard) in set.shards.iter().enumerate() {
                let host = if k % 2 == 0 { &a } else { &b };
                let state = host.export_shard(k).unwrap();
                let rebuilt = SampleStore::from_state(&state.store).unwrap();
                assert_eq!(rebuilt.samples(), shard.store.samples(), "shard {k} samples");
            }
        }
    }

    #[test]
    fn bootstrap_round_trips_through_the_structure_image() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 11);
        let direct = ShardHost::new(net.clone(), sampler(), ShardingConfig::default(), &[0]);
        let image = direct.structure();
        let count = direct.component_count();
        let owned: Vec<usize> = (0..count).collect();
        let shipped = ShardHost::from_structure(&image, &owned).unwrap();
        assert_eq!(shipped.network().index(), net.index(), "structure image lost the index");
        assert_eq!(shipped.component_count(), count);
        assert_eq!(
            shipped.shard_probabilities(0),
            direct.shard_probabilities(0),
            "a bootstrapped server builds the same shard a direct host builds"
        );
        // invalid owned ids are a typed error, not a panic
        assert!(ShardHost::from_structure(&image, &[count]).is_err());
    }

    #[test]
    fn export_import_migrates_a_shard_bit_identically() {
        // sampled stores: the shipped state reproduces the posterior and
        // the what-if surface exactly (the sampler's *live* walk state
        // does not travel — which is why the distributed mode pins
        // ownership of intact shards instead of relocating them)
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let count = ShardHost::new(net.clone(), sampler(), sampled_cfg(), &[]).component_count();
        let mut a =
            ShardHost::new(net.clone(), sampler(), sampled_cfg(), &(0..count).collect::<Vec<_>>());
        // integrate an assertion so the migrated state is not pristine
        let target = CandidateId::from_index(0);
        a.assert_unchecked(target, false).unwrap();
        let k = a.component_of(target);
        let state = a.export_shard(k).unwrap();
        let mut b = ShardHost::new(net.clone(), sampler(), sampled_cfg(), &[]);
        b.import_shard(k, &state).unwrap();
        assert_eq!(b.shard_probabilities(k), a.shard_probabilities(k));
        assert_eq!(b.entropy_after(target, false), a.entropy_after(target, false));
        // exhausted (exact) stores additionally maintain identically after
        // the trip — the same contract the crash-recovery harness certifies
        let count = ShardHost::new(net.clone(), sampler(), ShardingConfig::default(), &[])
            .component_count();
        let mut a = ShardHost::new(
            net.clone(),
            sampler(),
            ShardingConfig::default(),
            &(0..count).collect::<Vec<_>>(),
        );
        a.assert_unchecked(target, false).unwrap();
        let k = a.component_of(target);
        let mut b = ShardHost::new(net, sampler(), ShardingConfig::default(), &[]);
        b.import_shard(k, &a.export_shard(k).unwrap()).unwrap();
        assert_eq!(b.shard_probabilities(k), a.shard_probabilities(k));
        let next = a.components().members(k).iter().copied().find(|&c| c != target).unwrap();
        assert_eq!(a.assert_unchecked(next, true), b.assert_unchecked(next, true));
    }

    #[test]
    fn per_shard_queries_match_the_probabilistic_network() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 17);
        let pn =
            ProbabilisticNetwork::new_sharded(net.clone(), sampler(), ShardingConfig::default());
        let count = pn.shard_count();
        let host = ShardHost::new(
            net,
            sampler(),
            ShardingConfig::default(),
            &(0..count).collect::<Vec<_>>(),
        );
        assert_eq!(all_probs(&host), pn.probabilities());
        // gains through the host equal the single-process gain scan
        let pool = pn.uncertain_candidates();
        let reference = pn.information_gains(&pool);
        for k in 0..count {
            let locals: Vec<CandidateId> =
                pool.iter().copied().filter(|&c| host.component_of(c) == k).collect();
            if locals.is_empty() {
                continue;
            }
            let gains = host.gains(k, &locals).unwrap();
            for (c, g) in locals.iter().zip(&gains) {
                let pos = pool.iter().position(|x| x == c).unwrap();
                assert_eq!(*g, reference[pos], "gain of {c:?}");
            }
        }
    }

    /// Two disjoint one-to-one conflict clusters over a 2-schema catalog:
    /// `{c0 = a0–b0, c1 = a0–b1}` and `{c2 = a1–b2, c3 = a1–b3}` — the
    /// arrival `a1–b0` couples them into one component.
    fn two_cluster_network() -> crate::network::MatchingNetwork {
        use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a0", "a1"]).unwrap();
        b.add_schema_with_attributes("B", ["b0", "b1", "b2", "b3"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(2);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(2), 0.9).unwrap(); // c0
        cs.add(&cat, Some(&g), a(0), a(3), 0.8).unwrap(); // c1
        cs.add(&cat, Some(&g), a(1), a(4), 0.8).unwrap(); // c2
        cs.add(&cat, Some(&g), a(1), a(5), 0.7).unwrap(); // c3
        crate::network::MatchingNetwork::new(
            cat,
            g,
            cs,
            smn_constraints::ConstraintConfig::default(),
        )
    }

    #[test]
    fn evolution_rebuilds_match_the_probabilistic_network() {
        use smn_schema::AttributeId;
        for cfg in [ShardingConfig::default(), sampled_cfg()] {
            let net = two_cluster_network();
            let mut pn = ProbabilisticNetwork::new_sharded(net.clone(), sampler(), cfg);
            let count = pn.shard_count();
            let mut host = ShardHost::new(net, sampler(), cfg, &(0..count).collect::<Vec<_>>());
            // -- extend: export the about-to-dissolve shards first, apply,
            //    then rebuild the merged component from the exports
            let (arrival_pn, merged_probs) = {
                let id = pn.extend(AttributeId(1), AttributeId(2), 0.6).unwrap();
                (id, pn.probabilities().to_vec())
            };
            let exports: Vec<(usize, Vec<CandidateId>, ShardState)> = host
                .owned_components()
                .iter()
                .map(|&k| (k, host.components().members(k).to_vec(), host.export_shard(k).unwrap()))
                .collect();
            let (arrival, evo) = host.apply_extend(AttributeId(1), AttributeId(2), 0.6).unwrap();
            assert_eq!(arrival, arrival_pn);
            let &[merged_k] = evo.rebuilt.as_slice() else { panic!("one merged component") };
            let absorbed: Vec<(Vec<CandidateId>, ShardState)> = evo
                .dissolved
                .iter()
                .map(|(old_k, members)| {
                    let (_, _, state) =
                        exports.iter().find(|(k, _, _)| k == old_k).expect("exported");
                    (members.clone(), state.clone())
                })
                .collect();
            host.rebuild_merged(merged_k, &absorbed).unwrap();
            assert_eq!(all_probs(&host), merged_probs, "merged rebuild diverged");
            // -- retire: same dance through the split path
            let retiree = arrival;
            let old_members_of: Vec<(usize, Vec<CandidateId>)> = host
                .owned_components()
                .iter()
                .map(|&k| (k, host.components().members(k).to_vec()))
                .collect();
            let exports: Vec<(usize, ShardState)> = host
                .owned_components()
                .iter()
                .map(|&k| (k, host.export_shard(k).unwrap()))
                .collect();
            pn.retire(retiree).unwrap();
            let evo = host.apply_retire(retiree).unwrap();
            let (old_k, old_members) = evo.dissolved.first().expect("retiree shard dissolves");
            let old_state =
                &exports.iter().find(|(k, _)| k == old_k).expect("exported dissolved shard").1;
            assert_eq!(
                old_members,
                &old_members_of.iter().find(|(k, _)| k == old_k).unwrap().1,
                "evolution reports the pre-event member list"
            );
            for &part_k in &evo.rebuilt {
                host.rebuild_part(part_k, old_members, old_state, retiree).unwrap();
            }
            assert_eq!(all_probs(&host), pn.probabilities(), "split rebuild diverged");
        }
    }

    #[test]
    fn commit_lane_and_assert_agree_with_the_shard_set_paths() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let mut set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        let count = set.components.count();
        let mut host = ShardHost::new(
            net,
            sampler(),
            ShardingConfig::default(),
            &(0..count).collect::<Vec<_>>(),
        );
        let target = CandidateId::from_index(0);
        let (k, _) = set.locate(target);
        let events: Vec<Assertion> = set.components.members(k)
            [..set.components.members(k).len().min(3)]
            .iter()
            .enumerate()
            .map(|(i, &c)| Assertion { candidate: c, approved: i % 2 == 0 })
            .collect();
        let mut probs = vec![0.0; n];
        set.write_all_probabilities(&mut probs);
        let (snap, expected) = set.commit_lane(k, &events);
        if let Some(s) = snap {
            set.shards[k] = Arc::new(s);
            set.write_shard_probabilities(k, &mut probs);
        }
        let (results, new_probs) = host.commit_lane(k, &events).unwrap();
        assert_eq!(results, expected);
        if let Some(local) = new_probs {
            for (j, &g) in host.components().members(k).iter().enumerate() {
                assert_eq!(local[j], probs[g.index()], "lane probability of {g:?}");
            }
        }
    }
}
