//! Network uncertainty as Shannon entropy (Eq. 3).
//!
//! Each candidate's inclusion in the selective matching is a Bernoulli
//! variable with parameter `p_c`; network uncertainty is the sum of the
//! binary entropies (in bits, matching Example 1 of the paper where a
//! network with four `p = 0.5` candidates has `H = 4`).

/// Binary entropy `h(p) = −p·log₂p − (1−p)·log₂(1−p)`, with
/// `h(0) = h(1) = 0`.
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Network uncertainty `H(C, P) = Σ_c h(p_c)` (Eq. 3).
///
/// Certain candidates (`p ∈ {0, 1}`) contribute nothing, so
/// `H(C, P) = H({c | 0 < p_c < 1}, P)` as the paper notes.
pub fn entropy_of(probabilities: &[f64]) -> f64 {
    probabilities.iter().copied().map(binary_entropy).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_are_certain() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn max_at_half() {
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.3) < 1.0);
        assert!(binary_entropy(0.3) > 0.0);
    }

    #[test]
    fn symmetry() {
        for p in [0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn example1_of_the_paper() {
        // one certain candidate plus four fifty-fifty ones → H = 4 bits
        let probs = [1.0, 0.5, 0.5, 0.5, 0.5];
        assert!((entropy_of(&probs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bounds() {
        let probs = [0.2, 0.9, 0.5, 0.0, 1.0];
        let h = entropy_of(&probs);
        assert!(h >= 0.0);
        assert!(h <= probs.len() as f64);
    }

    #[test]
    fn empty_network_has_zero_uncertainty() {
        assert_eq!(entropy_of(&[]), 0.0);
    }
}
