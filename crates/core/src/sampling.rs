//! Non-uniform sampling of matching instances (Algorithm 3) and the
//! view-maintained sample store (§III-B).
//!
//! The sampler explores the instance space with a random walk: from the
//! current instance, a random unasserted candidate is added, the resulting
//! violations are repaired (Algorithm 4), and the instance is re-maximized
//! (Definition 1 demands maximality; see DESIGN.md). The jump is *accepted*
//! with probability `1 − e^{−Δ}` where `Δ` is the symmetric difference to
//! the previous instance — the simulated-annealing rule of the paper that
//! prefers long jumps and so escapes high-density regions.
//!
//! [`SampleStore`] keeps the *distinct* instances found (Ω\*). Under a new
//! assertion it is view-maintained rather than resampled: approval of `c`
//! retains the instances containing `c`, disapproval those without it.
//! (The paper prints the same right-hand side for both cases — an obvious
//! typo; we implement the semantically correct filter.) When fewer than
//! `n_min` samples survive, the store is refilled; if two consecutive
//! refills both fail to reach `n_min`, the store concludes `Ω* = Ω` and
//! marks itself *exhausted* — probabilities are then exact (Eq. 1).

use crate::feedback::Feedback;
use crate::instance::{maximize, repair};
use crate::network::MatchingNetwork;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use smn_constraints::BitSet;
use smn_schema::CandidateId;
use std::collections::HashMap;

/// Configuration of the Algorithm 3 sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Number of sample emissions per (re)fill (`n` of Algorithm 3).
    pub n_samples: usize,
    /// Random-walk steps per emission (`k` of Algorithm 3).
    pub walk_steps: usize,
    /// Tolerance threshold: refill when fewer distinct samples survive view
    /// maintenance.
    pub n_min: usize,
    /// RNG seed (sampling is deterministic given the seed and the
    /// assertion sequence).
    pub seed: u64,
    /// Simulated-annealing acceptance (`1 − e^{−Δ}`). Disabling it accepts
    /// every jump — a pure random walk; ablation benches quantify what the
    /// acceptance rule buys.
    pub anneal: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { n_samples: 1000, walk_steps: 4, n_min: 200, seed: 0xC0FFEE, anneal: true }
    }
}

/// The view-maintained set Ω\* of distinct sampled matching instances,
/// with per-instance visit counts kept as a mixing diagnostic.
///
/// Probability estimation treats the discovered instances uniformly (see
/// [`weights`](SampleStore::weights)); once the store is
/// [exhausted](SampleStore::is_exhausted) — `Ω* = Ω` — that estimate is
/// exactly Eq. 1.
#[derive(Debug, Clone)]
pub struct SampleStore {
    samples: Vec<BitSet>,
    counts: Vec<u64>,
    seen: HashMap<BitSet, usize>,
    exhausted: bool,
    config: SamplerConfig,
    rng: StdRng,
}

impl SampleStore {
    /// Creates an empty store and fills it for the given network/feedback.
    pub fn new(network: &MatchingNetwork, feedback: &Feedback, config: SamplerConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut store = Self {
            samples: Vec::new(),
            counts: Vec::new(),
            seen: HashMap::new(),
            exhausted: false,
            config,
            rng,
        };
        store.fill(network, feedback);
        store
    }

    /// Records one emission of `inst`. Returns whether it was new.
    fn record(&mut self, inst: &BitSet) -> bool {
        if let Some(&pos) = self.seen.get(inst) {
            self.counts[pos] += 1;
            false
        } else {
            self.seen.insert(inst.clone(), self.samples.len());
            self.samples.push(inst.clone());
            self.counts.push(1);
            true
        }
    }

    /// The distinct sampled instances.
    pub fn samples(&self) -> &[BitSet] {
        &self.samples
    }

    /// The sampling weight of each instance, aligned with
    /// [`samples`](SampleStore::samples).
    ///
    /// Weights are uniform: Eq. 1 targets the *uniform* distribution over
    /// matching instances, and empirically the walk's occupancy frequencies
    /// deviate from it far more than the discovered-set uniform does (the
    /// annealing rule promotes coverage, not uniform occupancy). Visit
    /// counts are still tracked — see [`visit_counts`](SampleStore::visit_counts)
    /// — as a mixing diagnostic.
    pub fn weights(&self) -> Vec<f64> {
        vec![1.0; self.samples.len()]
    }

    /// How often each distinct instance was emitted by the walk (mixing
    /// diagnostic; aligned with [`samples`](SampleStore::samples)).
    pub fn visit_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of distinct samples `|Ω*|`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store holds no samples (only possible for empty
    /// networks or contradictory feedback).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the store has concluded `Ω* = Ω` (all matching instances
    /// enumerated; probabilities are exact and resampling is pointless).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// One emission of Algorithm 3: `walk_steps` random-walk steps from
    /// `current`, each adding a random candidate, repairing, re-maximizing,
    /// and accepting with probability `1 − e^{−Δ}`.
    fn walk(&mut self, network: &MatchingNetwork, feedback: &Feedback, current: &mut BitSet) {
        let index = network.index();
        let n = network.candidate_count();
        for _ in 0..self.config.walk_steps {
            // `Rand(C \ F− \ I_i)`: rejection-sample a few times (cheap when
            // most candidates qualify), then fall back to a full scan
            let valid =
                |c: CandidateId| !feedback.disapproved().contains(c) && !current.contains(c);
            let mut pick: Option<CandidateId> = None;
            for _ in 0..24 {
                let c = CandidateId::from_index(self.rng.random_range(0..n));
                if valid(c) {
                    pick = Some(c);
                    break;
                }
            }
            if pick.is_none() {
                let addable: Vec<CandidateId> =
                    (0..n).map(CandidateId::from_index).filter(|&c| valid(c)).collect();
                pick = addable.choose(&mut self.rng).copied();
            }
            let Some(c) = pick else {
                return; // instance already covers every assertable candidate
            };
            let mut next = current.clone();
            next.insert(c);
            repair(index, &mut next, c, feedback.approved(), &mut self.rng);
            maximize(index, &mut next, feedback.disapproved(), &mut self.rng);
            let accept = if self.config.anneal {
                let delta = current.symmetric_difference_count(&next);
                1.0 - (-(delta as f64)).exp()
            } else {
                1.0
            };
            if self.rng.random_bool(accept.clamp(0.0, 1.0)) {
                *current = next;
            }
        }
    }

    /// Runs one sampling pass (`n_samples` emissions), inserting distinct
    /// instances. Returns how many new distinct instances were found.
    fn sample_pass(&mut self, network: &MatchingNetwork, feedback: &Feedback) -> usize {
        let index = network.index();
        // start from a surviving sample if any, else from maximized F+
        let mut current = match self.samples.last() {
            Some(s) => s.clone(),
            None => {
                let mut seed_inst = feedback.approved().clone();
                debug_assert!(index.is_consistent(&seed_inst), "approved set must be consistent");
                maximize(index, &mut seed_inst, feedback.disapproved(), &mut self.rng);
                seed_inst
            }
        };
        let mut found = 0usize;
        // the chain start is itself a valid instance — record it
        if self.record(&current.clone()) {
            found += 1;
        }
        for _ in 0..self.config.n_samples {
            self.walk(network, feedback, &mut current);
            if self.record(&current.clone()) {
                found += 1;
            }
        }
        found
    }

    /// Fills the store until `n_min` distinct samples exist or two
    /// consecutive passes fail to reach it (→ exhausted).
    fn fill(&mut self, network: &MatchingNetwork, feedback: &Feedback) {
        if self.exhausted {
            return;
        }
        if network.candidate_count() == 0 {
            self.exhausted = true;
            return;
        }
        for _pass in 0..2 {
            if self.samples.len() >= self.config.n_min {
                return;
            }
            self.sample_pass(network, feedback);
        }
        if self.samples.len() < self.config.n_min {
            // two consecutive passes could not reach n_min: per §III-B the
            // store concludes that all matching instances were generated
            self.exhausted = true;
        }
    }

    /// View maintenance for a new assertion: filters the surviving samples
    /// and refills if necessary.
    ///
    /// Filtering is *exact* for approvals: every instance of the new Ω
    /// contains the candidate, was an instance before, and thus survives.
    ///
    /// For disapprovals, plain filtering (what the paper describes)
    /// under-approximates: an instance that was non-maximal solely because
    /// the now-disapproved `c` was addable becomes a matching instance yet
    /// is absent from the store. Such instances are, however, exactly the
    /// sets `J \ {c}` for dying instances `J ∋ c` that are maximal under
    /// the new feedback — any other newly-maximal `I` would have a legal
    /// single-candidate extension inside `J \ {c}`, contradicting its
    /// maximality. Re-inserting those keeps disapproval maintenance exact
    /// too (an improvement over the paper's filter; see DESIGN.md), so an
    /// exhausted store stays exhausted.
    pub fn maintain(
        &mut self,
        network: &MatchingNetwork,
        feedback: &Feedback,
        candidate: CandidateId,
        approved: bool,
    ) {
        let index = network.index();
        let old: Vec<(BitSet, u64)> = self.samples.drain(..).zip(self.counts.drain(..)).collect();
        self.seen.clear();
        let mut dying: Vec<(BitSet, u64)> = Vec::new();
        for (inst, count) in old {
            if inst.contains(candidate) == approved {
                self.seen.insert(inst.clone(), self.samples.len());
                self.samples.push(inst);
                self.counts.push(count);
            } else {
                dying.push((inst, count));
            }
        }
        if !approved {
            for (mut inst, count) in dying {
                inst.remove(candidate);
                if index.is_maximal(&inst, feedback.disapproved()) && !self.seen.contains_key(&inst)
                {
                    // the shrunken instance inherits its ancestor's weight
                    self.seen.insert(inst.clone(), self.samples.len());
                    self.samples.push(inst);
                    self.counts.push(count);
                }
            }
        }
        if !self.exhausted && self.samples.len() < self.config.n_min {
            self.fill(network, feedback);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    fn small_config() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 7 }
    }

    #[test]
    fn finds_all_fig1_instances_and_exhausts() {
        let net = fig1_network();
        let fb = Feedback::new(5);
        let store = SampleStore::new(&net, &fb, small_config());
        // only 4 instances exist < n_min → store must detect exhaustion
        assert!(store.is_exhausted());
        assert_eq!(store.len(), 4, "all four maximal instances found");
        for s in store.samples() {
            assert!(net.index().is_consistent(s));
            assert!(net.index().is_maximal(s, fb.disapproved()));
        }
    }

    #[test]
    fn samples_are_distinct() {
        let net = fig1_network();
        let store = SampleStore::new(&net, &Feedback::new(5), small_config());
        let mut seen = std::collections::HashSet::new();
        for s in store.samples() {
            assert!(seen.insert(s.clone()), "duplicate sample");
        }
    }

    #[test]
    fn maintain_approval_keeps_only_containing() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        let mut store = SampleStore::new(&net, &fb, small_config());
        fb.approve(CandidateId(2));
        store.maintain(&net, &fb, CandidateId(2), true);
        for s in store.samples() {
            assert!(s.contains(CandidateId(2)));
        }
        // instances containing c2: {c0,c1,c2} and {c2,c3}
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn maintain_disapproval_keeps_only_excluding_and_remaximizes() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        let mut store = SampleStore::new(&net, &fb, small_config());
        fb.disapprove(CandidateId(0));
        store.maintain(&net, &fb, CandidateId(0), false);
        for s in store.samples() {
            assert!(!s.contains(CandidateId(0)));
            assert!(net.index().is_maximal(s, fb.disapproved()));
        }
        // without c0: {c1,c2}, {c1,c4}, {c2,c3}, {c3,c4}
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn respects_feedback_in_fresh_sampling() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        fb.approve(CandidateId(0));
        fb.disapprove(CandidateId(3));
        let store = SampleStore::new(&net, &fb, small_config());
        assert!(!store.is_empty());
        for s in store.samples() {
            assert!(s.contains(CandidateId(0)));
            assert!(!s.contains(CandidateId(3)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = fig1_network();
        let fb = Feedback::new(5);
        let a = SampleStore::new(&net, &fb, small_config());
        let b = SampleStore::new(&net, &fb, small_config());
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn empty_network_is_trivially_exhausted() {
        use smn_constraints::ConstraintConfig;
        use smn_schema::{CandidateSet, CatalogBuilder, InteractionGraph};
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["x"]).unwrap();
        b.add_schema_with_attributes("B", ["y"]).unwrap();
        let cat = b.build();
        let cs = CandidateSet::new(&cat);
        let net = MatchingNetwork::new(
            cat,
            InteractionGraph::complete(2),
            cs,
            ConstraintConfig::default(),
        );
        let store = SampleStore::new(&net, &Feedback::new(0), small_config());
        assert!(store.is_exhausted());
        assert!(store.is_empty());
    }

    #[test]
    fn larger_network_reaches_n_min() {
        let (net, _truth) = crate::testutil::perturbed_network(4, 8, 0.7, 0.9, 3);
        let store = SampleStore::new(&net, &Feedback::new(net.candidate_count()), small_config());
        assert!(
            store.is_exhausted() || store.len() >= 50,
            "either exhausted or reached n_min, got {}",
            store.len()
        );
    }
}
