//! Non-uniform sampling of matching instances (Algorithm 3) and the
//! view-maintained sample store (§III-B).
//!
//! The sampler explores the instance space with a random walk: from the
//! current instance, a random unasserted candidate is added, the resulting
//! violations are repaired (Algorithm 4), and the instance is re-maximized
//! (Definition 1 demands maximality; see DESIGN.md). The jump is *accepted*
//! with probability `1 − e^{−Δ}` where `Δ` is the symmetric difference to
//! the previous instance — the simulated-annealing rule of the paper that
//! prefers long jumps and so escapes high-density regions.
//!
//! The walk state lives in reusable [`Scratch`] buffers (no per-step
//! clones), and [`SamplerConfig::chains`] > 1 runs that many independent
//! chains across scoped threads per fill pass, merging discoveries in
//! chain order so the result is deterministic given the config.
//!
//! The store is split copy-on-write: the per-sample state (instances,
//! counts, matrix, cached weights) lives in an immutable `Arc`-shared
//! snapshot, while the walk machinery (RNG, scratch buffers) is a thin
//! mutable overlay. Cloning a store — the engine of
//! [`ProbabilisticNetwork::fork`](crate::ProbabilisticNetwork::fork) —
//! copies a pointer plus the overlay; the snapshot is copied only by the
//! first mutation after a fork (`Arc::make_mut`).
//!
//! [`SampleStore`] keeps the *distinct* instances found (Ω\*) twice: as a
//! list of instance bitsets and as a transposed candidate×sample bit
//! matrix ([`SampleMatrix`]) that turns probability recomputation and the
//! co-occurrence pass of information gain into row-AND popcounts. Under a
//! new assertion the store is view-maintained rather than resampled:
//! approval of `c` retains the instances containing `c`, disapproval those
//! without it. (The paper prints the same right-hand side for both cases —
//! an obvious typo; we implement the semantically correct filter.) When
//! fewer than `n_min` samples survive, the store is refilled; if two
//! consecutive refills both fail to reach `n_min`, the store concludes
//! `Ω* = Ω` and marks itself *exhausted* — probabilities are then exact
//! (Eq. 1).

use crate::feedback::Feedback;
use crate::instance::{maximize_in, repair_in, Scratch};
use crate::network::MatchingNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smn_constraints::{kernels, BitSet, ConflictIndex};
use smn_schema::CandidateId;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the Algorithm 3 sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Number of sample emissions per (re)fill (`n` of Algorithm 3).
    pub n_samples: usize,
    /// Random-walk steps per emission (`k` of Algorithm 3).
    pub walk_steps: usize,
    /// Tolerance threshold: refill when fewer distinct samples survive view
    /// maintenance.
    pub n_min: usize,
    /// RNG seed (sampling is deterministic given the seed and the
    /// assertion sequence).
    pub seed: u64,
    /// Simulated-annealing acceptance (`1 − e^{−Δ}`). Disabling it accepts
    /// every jump — a pure random walk; ablation benches quantify what the
    /// acceptance rule buys.
    pub anneal: bool,
    /// Independent walk chains per fill pass (≥ 1). Chains run across
    /// scoped threads, each seeded `seed + chain_id`, and split the
    /// `n_samples` emission budget; discovered instances are merged in
    /// chain order, so the store content is deterministic given the
    /// config regardless of thread scheduling. `1` keeps the classic
    /// single-chain walk on the caller thread.
    pub chains: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { n_samples: 1000, walk_steps: 4, n_min: 200, seed: 0xC0FFEE, anneal: true, chains: 1 }
    }
}

/// Transposed sample matrix: one bit row per candidate, one column per
/// distinct sample, maintained by [`SampleStore`].
///
/// Row-AND popcounts replace the per-instance membership scans of
/// probability recomputation and the O(S·k̄²) co-occurrence pass of
/// information gain with word-parallel operations.
#[derive(Debug, Clone)]
pub struct SampleMatrix {
    /// Row-major membership words: row `c` occupies
    /// `words[c·stride .. c·stride + cols.div_ceil(64)]`, the rest of each
    /// stride is zero padding. One contiguous allocation keeps the
    /// copy-on-write clone of a store a single `memcpy` instead of one
    /// heap allocation per candidate row, and row scans pointer-free.
    words: Vec<u64>,
    /// Words allocated per row (doubles as columns grow).
    stride: usize,
    /// Number of candidate rows.
    n: usize,
    /// Number of sample columns.
    cols: usize,
}

impl SampleMatrix {
    fn new(n: usize) -> Self {
        Self { words: Vec::new(), stride: 0, n, cols: 0 }
    }

    /// Words of each row currently holding live columns.
    #[inline]
    fn used_words(&self) -> usize {
        self.cols.div_ceil(64)
    }

    fn push_sample(&mut self, inst: &BitSet) {
        let (w, b) = (self.cols / 64, self.cols % 64);
        if b == 0 && w == self.stride {
            // grow the per-row capacity geometrically and re-stride: one
            // O(n·stride) copy per doubling keeps pushes amortized O(n/64)
            let new_stride = (self.stride * 2).max(1);
            let mut words = vec![0u64; self.n * new_stride];
            for c in 0..self.n {
                words[c * new_stride..c * new_stride + self.stride]
                    .copy_from_slice(&self.words[c * self.stride..(c + 1) * self.stride]);
            }
            self.words = words;
            self.stride = new_stride;
        }
        for c in inst.iter() {
            self.words[c.index() * self.stride + w] |= 1 << b;
        }
        self.cols += 1;
    }

    /// Appends the given instances as new columns in one batched pass:
    /// each 64-sample group is turned into per-candidate column words by a
    /// 64×64 bit transpose and OR-merged at the current column offset.
    ///
    /// Equivalent to `push_sample` per instance but touches each candidate
    /// row O(groups) times instead of once per set bit — the per-bit
    /// scatter of `push_sample` (one random-access RMW per instance member)
    /// is what dominated sampling fills once instances grew past a few
    /// hundred members.
    fn append_samples(&mut self, new: &[BitSet]) {
        if new.is_empty() {
            return;
        }
        let total = self.cols + new.len();
        let needed = total.div_ceil(64);
        if needed > self.stride {
            let mut new_stride = self.stride.max(1);
            while new_stride < needed {
                new_stride *= 2;
            }
            let mut words = vec![0u64; self.n * new_stride];
            for c in 0..self.n {
                words[c * new_stride..c * new_stride + self.stride]
                    .copy_from_slice(&self.words[c * self.stride..(c + 1) * self.stride]);
            }
            self.words = words;
            self.stride = new_stride;
        }
        let row_words = self.n.div_ceil(64);
        let mut block = [0u64; 64];
        for (g, chunk) in new.chunks(64).enumerate() {
            let p = self.cols + g * 64;
            let (q, r) = (p / 64, p % 64);
            for wi in 0..row_words {
                for (j, inst) in chunk.iter().enumerate() {
                    block[j] = inst.words()[wi];
                }
                block[chunk.len()..].fill(0);
                kernels::transpose64(&mut block);
                let lanes = (self.n - wi * 64).min(64);
                for (b, &v) in block[..lanes].iter().enumerate() {
                    if v == 0 {
                        continue;
                    }
                    let row = (wi * 64 + b) * self.stride;
                    self.words[row + q] |= v << r;
                    if r != 0 {
                        let hi = v >> (64 - r);
                        if hi != 0 {
                            self.words[row + q + 1] |= hi;
                        }
                    }
                }
            }
        }
        self.cols = total;
    }

    /// Number of candidates (rows).
    pub fn candidate_count(&self) -> usize {
        self.n
    }

    /// Number of samples (columns).
    pub fn sample_count(&self) -> usize {
        self.cols
    }

    /// Raw membership row of candidate `c`; bits beyond
    /// [`sample_count`](SampleMatrix::sample_count) are zero.
    #[inline]
    pub fn row(&self, c: CandidateId) -> &[u64] {
        let start = c.index() * self.stride;
        &self.words[start..start + self.used_words()]
    }

    /// In how many samples `c` appears (one wide popcount pass).
    #[inline]
    pub fn membership_count(&self, c: CandidateId) -> usize {
        kernels::count(self.row(c))
    }

    /// In how many samples `a` and `b` co-occur (one AND+popcount pass).
    #[inline]
    pub fn co_count(&self, a: CandidateId, b: CandidateId) -> usize {
        row_and_count(self.row(a), self.row(b))
    }

    /// Keeps only the columns whose bit is set in `mask` (one word per 64
    /// columns, like the rows themselves), compacting every row in place
    /// and preserving column order.
    ///
    /// This is the view-maintenance kernel: filtering the store on an
    /// assertion reduces to one row-wise bit-compaction pass (sequential
    /// word operations) instead of re-inserting every surviving sample
    /// column by column (scattered single-bit writes across all rows).
    fn filter_columns(&mut self, mask: &[u64]) {
        debug_assert_eq!(mask.len(), self.used_words());
        let keep = kernels::count(mask);
        if keep == self.cols {
            return; // full-survival mask: the compaction is the identity
        }
        let used = self.used_words();
        if keep == 0 {
            for c in 0..self.n {
                let start = c * self.stride;
                self.words[start..start + used].fill(0);
            }
            self.cols = 0;
            return;
        }
        let kept_words = keep.div_ceil(64);
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("bmi2") {
            // SAFETY: the bmi2 feature was just confirmed at runtime
            unsafe {
                compact_rows_bmi2(&mut self.words, self.stride, used, kept_words, mask);
            }
            self.cols = keep;
            return;
        }
        compact_rows(&mut self.words, self.stride, used, kept_words, mask, pext64);
        self.cols = keep;
    }
}

/// The row-compaction loop of [`SampleMatrix::filter_columns`], generic
/// over the bit-extract primitive so the BMI2 and portable paths share one
/// implementation. `words` is the strided row buffer; each row's live
/// words `[..used]` are compacted through `mask` and the tail up to
/// `kept_words..used` re-zeroed.
#[inline(always)]
fn compact_rows(
    words: &mut [u64],
    stride: usize,
    used: usize,
    kept_words: usize,
    mask: &[u64],
    pext: impl Fn(u64, u64) -> u64,
) {
    for row in words.chunks_exact_mut(stride) {
        let row = &mut row[..used];
        let mut out = 0u64;
        let mut filled: u32 = 0;
        let mut write = 0usize;
        for i in 0..row.len() {
            let v = pext(row[i], mask[i]);
            let k = mask[i].count_ones();
            out |= v << filled;
            if filled + k >= 64 {
                // output words never outrun input words, so `write ≤ i`
                // at the time of reading `row[i]` — in-place is safe
                row[write] = out;
                write += 1;
                let consumed = 64 - filled;
                out = if consumed < 64 { v >> consumed } else { 0 };
                filled = filled + k - 64;
            } else {
                filled += k;
            }
        }
        if filled > 0 {
            row[write] = out;
        }
        // bits beyond the new column count must stay zero
        row[kept_words..].fill(0);
    }
}

/// [`compact_rows`] with the hardware PEXT instruction — an order of
/// magnitude over the 6-round software compress, and the difference
/// between the column filter and the snapshot copy dominating a
/// view-maintenance assertion.
///
/// # Safety
/// The caller must have verified `bmi2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
#[allow(unused_unsafe)]
unsafe fn compact_rows_bmi2(
    words: &mut [u64],
    stride: usize,
    used: usize,
    kept_words: usize,
    mask: &[u64],
) {
    compact_rows(words, stride, used, kept_words, mask, |x, m| unsafe {
        core::arch::x86_64::_pext_u64(x, m)
    });
}

/// Software PEXT (parallel bit extract): gathers the bits of `x` selected
/// by `mask` into the low bits of the result, preserving order. Hacker's
/// Delight §7-4 "compress", 64-bit (6 rounds).
fn pext64(x: u64, mask: u64) -> u64 {
    let mut x = x & mask;
    let mut m = mask;
    let mut mk = !m << 1;
    for i in 0..6 {
        let mut mp = mk ^ (mk << 1);
        mp ^= mp << 2;
        mp ^= mp << 4;
        mp ^= mp << 8;
        mp ^= mp << 16;
        mp ^= mp << 32;
        let mv = mp & m;
        m = (m ^ mv) | (mv >> (1 << i));
        let t = x & mv;
        x = (x ^ t) | (t >> (1 << i));
        mk &= !mp;
    }
    x
}

/// AND+popcount of two raw matrix rows (wide kernel).
#[inline]
pub fn row_and_count(a: &[u64], b: &[u64]) -> usize {
    kernels::and_count(a, b)
}

/// The view-maintained set Ω\* of distinct sampled matching instances,
/// with per-instance visit counts kept as a mixing diagnostic.
///
/// Probability estimation treats the discovered instances uniformly (see
/// [`weights`](SampleStore::weights)); once the store is
/// [exhausted](SampleStore::is_exhausted) — `Ω* = Ω` — that estimate is
/// exactly Eq. 1.
#[derive(Debug, Clone)]
pub struct SampleStore {
    /// The immutable sample snapshot, shared across forks; every mutation
    /// goes through `Arc::make_mut`, so the first write after a fork
    /// copy-on-writes exactly this block and nothing before that.
    data: Arc<SampleData>,
    exhausted: bool,
    config: SamplerConfig,
    rng: StdRng,
    scratch: Scratch,
    walk_buf: BitSet,
    /// Monotone pass counter seeding multi-chain passes (advances across
    /// refills so chains never replay earlier trajectories).
    pass_epoch: u64,
}

/// The snapshot half of a [`SampleStore`]: the distinct instances Ω\*,
/// their visit counts and dedup map, the transposed sample matrix and the
/// cached uniform weight slice — everything whose copy cost scales with
/// the number of samples.
///
/// A store clone (and with it
/// [`ProbabilisticNetwork::fork`](crate::ProbabilisticNetwork::fork))
/// copies one `Arc` pointer instead of this block; the thin mutable
/// overlay that *is* cloned per fork (RNG, scratch buffers, config,
/// exhaustion flag) is O(candidates), independent of the sample count.
#[derive(Debug, Clone)]
struct SampleData {
    samples: Vec<BitSet>,
    counts: Vec<u64>,
    seen: HashMap<BitSet, usize>,
    matrix: SampleMatrix,
    uniform: Vec<f64>,
}

impl SampleStore {
    /// Creates an empty store and fills it for the given network/feedback.
    pub fn new(network: &MatchingNetwork, feedback: &Feedback, config: SamplerConfig) -> Self {
        Self::with_index(network.index(), feedback, config)
    }

    /// Index-level form of [`SampleStore::new`]: everything the sampler
    /// needs is the conflict structure, so per-shard stores of the
    /// component-sharded model can run on a restricted sub-index.
    /// `feedback` must be sized to `index.candidate_count()`.
    pub fn with_index(index: &ConflictIndex, feedback: &Feedback, config: SamplerConfig) -> Self {
        let mut store = Self::empty(index.candidate_count(), config);
        store.fill(index, feedback);
        store.sync_weights();
        store
    }

    /// Builds an already-*exhausted* store directly from a complete
    /// enumeration of the matching instances (the exact path of small
    /// shards): probabilities derived from it are exact (Eq. 1) and view
    /// maintenance never triggers a refill.
    pub fn from_instances(
        candidate_count: usize,
        instances: impl IntoIterator<Item = BitSet>,
        config: SamplerConfig,
    ) -> Self {
        let mut store = Self::empty(candidate_count, config);
        for inst in instances {
            store.record(&inst);
        }
        store.exhausted = true;
        store.sync_weights();
        store
    }

    /// Builds a store pre-seeded with *carried-over* instances — matching
    /// instances salvaged from the stores of merged or split shards during
    /// network evolution — then fills normally. Every carried instance
    /// must already be a valid matching instance of `index` under
    /// `feedback`; duplicates collapse. Unlike
    /// [`from_instances`](SampleStore::from_instances) the carried set
    /// makes no completeness claim, so the store is *not* exhausted unless
    /// the fill pass concludes so (§III-B's two-failed-refills rule).
    pub fn with_carried(
        index: &ConflictIndex,
        feedback: &Feedback,
        config: SamplerConfig,
        carried: impl IntoIterator<Item = BitSet>,
    ) -> Self {
        let mut store = Self::empty(index.candidate_count(), config);
        for inst in carried {
            debug_assert!(index.is_consistent(&inst), "carried instance inconsistent");
            debug_assert!(feedback.respected_by(&inst), "carried instance breaks feedback");
            debug_assert!(
                index.is_maximal(&inst, feedback.disapproved()),
                "carried instance not maximal"
            );
            store.record(&inst);
        }
        store.fill(index, feedback);
        store.sync_weights();
        store
    }

    /// Extracts the serializable state of this store — the distinct
    /// instances in discovery order with their visit counts, plus the
    /// config and exhaustion/epoch flags. The transposed matrix, the dedup
    /// map and the cached weights are all derived and are *not* part of
    /// the state: [`from_state`](SampleStore::from_state) re-records the
    /// instances in the same order, which rebuilds them bit-for-bit.
    pub fn to_state(&self) -> crate::persist::StoreState {
        crate::persist::StoreState {
            config: self.config,
            candidate_count: self.data.matrix.candidate_count(),
            exhausted: self.exhausted,
            pass_epoch: self.pass_epoch,
            samples: self.data.samples.iter().map(|s| s.iter().map(|c| c.0).collect()).collect(),
            counts: self.data.counts.clone(),
        }
    }

    /// Rebuilds a store from [`to_state`](SampleStore::to_state) output:
    /// the instances are re-recorded in their stored order, so the sample
    /// list, visit counts and transposed matrix come back bit-identical
    /// and no re-sampling happens on load.
    ///
    /// The walk RNG is *not* serializable (the vendored `StdRng` exposes
    /// no state) and is freshly reseeded from `config.seed`; a store that
    /// refills after recovery may therefore walk differently than the
    /// uninterrupted run. Exhausted stores — the exact-enumeration regime
    /// of small shards — never refill, which is why the crash-recovery
    /// differential is certified there.
    pub fn from_state(state: &crate::persist::StoreState) -> Result<Self, String> {
        let n = state.candidate_count;
        if state.counts.len() != state.samples.len() {
            return Err(format!(
                "sample/count length mismatch: {} vs {}",
                state.samples.len(),
                state.counts.len()
            ));
        }
        let mut store = Self::empty(n, state.config);
        for (ids, &count) in state.samples.iter().zip(&state.counts) {
            if ids.iter().any(|&i| i as usize >= n) {
                return Err(format!("sample member out of range (candidate_count {n})"));
            }
            let inst = BitSet::from_ids(n, ids.iter().map(|&i| CandidateId(i)));
            if !store.record_with_count(&inst, count) {
                return Err("duplicate instance in serialized sample store".into());
            }
        }
        store.exhausted = state.exhausted;
        store.pass_epoch = state.pass_epoch;
        store.sync_weights();
        Ok(store)
    }

    fn empty(n: usize, config: SamplerConfig) -> Self {
        Self {
            data: Arc::new(SampleData {
                samples: Vec::new(),
                counts: Vec::new(),
                seen: HashMap::new(),
                matrix: SampleMatrix::new(n),
                uniform: Vec::new(),
            }),
            exhausted: false,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            scratch: Scratch::new(n),
            walk_buf: BitSet::new(n),
            pass_epoch: 0,
        }
    }

    /// Records `count` emissions of `inst`. Returns whether it was new.
    fn record_with_count(&mut self, inst: &BitSet, count: u64) -> bool {
        let data = Arc::make_mut(&mut self.data);
        // the matrix deliberately lags here: sync_weights() appends all
        // columns recorded since the last sync in one transpose pass
        dedup_record(&mut data.seen, &mut data.samples, &mut data.counts, inst, count)
    }

    /// Records one emission of `inst`. Returns whether it was new.
    fn record(&mut self, inst: &BitSet) -> bool {
        self.record_with_count(inst, 1)
    }

    /// Restores the derived-state invariants: the transposed matrix covers
    /// every recorded sample (columns recorded since the last sync are
    /// appended in one batched transpose pass) and the cached weight slice
    /// matches (`uniform.len() == samples.len()`, all 1.0). Every mutation
    /// path ends here before the store is readable again. A no-op (no
    /// copy-on-write) when the invariants already hold.
    fn sync_weights(&mut self) {
        if self.data.matrix.sample_count() != self.data.samples.len()
            || self.data.uniform.len() != self.data.samples.len()
        {
            let data = Arc::make_mut(&mut self.data);
            let from = data.matrix.sample_count();
            data.matrix.append_samples(&data.samples[from..]);
            data.uniform.resize(data.samples.len(), 1.0);
        }
    }

    /// The distinct sampled instances.
    pub fn samples(&self) -> &[BitSet] {
        &self.data.samples
    }

    /// The transposed candidate×sample membership matrix, aligned with
    /// [`samples`](SampleStore::samples).
    pub fn matrix(&self) -> &SampleMatrix {
        &self.data.matrix
    }

    /// The sampling weight of each instance, aligned with
    /// [`samples`](SampleStore::samples).
    ///
    /// Weights are uniform: Eq. 1 targets the *uniform* distribution over
    /// matching instances, and empirically the walk's occupancy frequencies
    /// deviate from it far more than the discovered-set uniform does (the
    /// annealing rule promotes coverage, not uniform occupancy). Visit
    /// counts are still tracked — see [`visit_counts`](SampleStore::visit_counts)
    /// — as a mixing diagnostic. The slice is cached; no allocation per
    /// query.
    pub fn weights(&self) -> &[f64] {
        &self.data.uniform
    }

    /// How often each distinct instance was emitted by the walk (mixing
    /// diagnostic; aligned with [`samples`](SampleStore::samples)).
    pub fn visit_counts(&self) -> &[u64] {
        &self.data.counts
    }

    /// Number of distinct samples `|Ω*|`.
    pub fn len(&self) -> usize {
        self.data.samples.len()
    }

    /// Whether the store holds no samples (only possible for empty
    /// networks or contradictory feedback).
    pub fn is_empty(&self) -> bool {
        self.data.samples.is_empty()
    }

    /// Whether this store still shares its sample snapshot with another
    /// (forked) store — diagnostic for the copy-on-write tests and benches.
    pub fn shares_snapshot(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Whether the store has concluded `Ω* = Ω` (all matching instances
    /// enumerated; probabilities are exact and resampling is pointless).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Runs one single-chain sampling pass (`n_samples` emissions) on the
    /// caller thread, inserting distinct instances. Returns how many new
    /// distinct instances were found.
    fn sample_pass(&mut self, index: &ConflictIndex, feedback: &Feedback) -> usize {
        // the scratch frontier tracks whatever instance the previous pass
        // ended on; this pass starts from a different one
        self.scratch.invalidate_frontier();
        // start from a surviving sample if any, else from maximized F+
        let mut current = match self.data.samples.last() {
            Some(s) => s.clone(),
            None => {
                let mut seed_inst = feedback.approved().clone();
                debug_assert!(index.is_consistent(&seed_inst), "approved set must be consistent");
                maximize_in(
                    index,
                    &mut seed_inst,
                    feedback.disapproved(),
                    &mut self.rng,
                    &mut self.scratch,
                );
                seed_inst
            }
        };
        let mut found = 0usize;
        // the chain start is itself a valid instance — record it
        if self.record(&current) {
            found += 1;
        }
        for _ in 0..self.config.n_samples {
            walk(
                index,
                feedback,
                &self.config,
                &mut self.rng,
                &mut current,
                &mut self.walk_buf,
                &mut self.scratch,
            );
            if self.record(&current) {
                found += 1;
            }
        }
        found
    }

    /// Runs one multi-chain pass: `config.chains` independent walks across
    /// the persistent work-stealing pool ([`crate::pool`]), each with
    /// `n_samples / chains` (rounded up) emissions, merged in chain order
    /// (the pool returns results in submission order). Returns how many
    /// new distinct instances were found.
    fn parallel_pass(&mut self, index: &ConflictIndex, feedback: &Feedback) -> usize {
        let chains = self.config.chains.max(1);
        let per_chain = self.config.n_samples.div_ceil(chains);
        let config = self.config;
        // every pass — across fills and refills — advances the epoch, so
        // refill chains explore fresh trajectories instead of replaying
        // the previous fill's (the multi-chain analogue of the persistent
        // single-chain RNG); still deterministic given the assertion
        // sequence
        let epoch = self.pass_epoch;
        self.pass_epoch += 1;
        let tasks: Vec<crate::pool::Task<'_, (Vec<BitSet>, Vec<u64>)>> = (0..chains as u64)
            .map(|chain| {
                Box::new(move || {
                    run_chain(
                        index,
                        feedback,
                        config,
                        chain_seed(config.seed, chain, epoch),
                        per_chain,
                    )
                }) as crate::pool::Task<'_, (Vec<BitSet>, Vec<u64>)>
            })
            .collect();
        let results: Vec<(Vec<BitSet>, Vec<u64>)> = crate::pool::global().run(tasks);
        let mut found = 0usize;
        for (instances, counts) in results {
            for (inst, count) in instances.iter().zip(counts) {
                if self.record_with_count(inst, count) {
                    found += 1;
                }
            }
        }
        found
    }

    /// Fills the store until `n_min` distinct samples exist or two
    /// consecutive passes fail to reach it (→ exhausted).
    fn fill(&mut self, index: &ConflictIndex, feedback: &Feedback) {
        if self.exhausted {
            return;
        }
        if index.candidate_count() == 0 {
            self.exhausted = true;
            return;
        }
        for _pass in 0..2u64 {
            if self.data.samples.len() >= self.config.n_min {
                return;
            }
            if self.config.chains > 1 {
                self.parallel_pass(index, feedback);
            } else {
                self.sample_pass(index, feedback);
            }
        }
        if self.data.samples.len() < self.config.n_min {
            // two consecutive passes could not reach n_min: per §III-B the
            // store concludes that all matching instances were generated
            self.exhausted = true;
        }
    }

    /// View maintenance for a new assertion: filters the surviving samples
    /// and refills if necessary.
    ///
    /// Filtering is *exact* for approvals: every instance of the new Ω
    /// contains the candidate, was an instance before, and thus survives.
    ///
    /// For disapprovals, plain filtering (what the paper describes)
    /// under-approximates: an instance that was non-maximal solely because
    /// the now-disapproved `c` was addable becomes a matching instance yet
    /// is absent from the store. Such instances are, however, exactly the
    /// sets `J \ {c}` for dying instances `J ∋ c` that are maximal under
    /// the new feedback — any other newly-maximal `I` would have a legal
    /// single-candidate extension inside `J \ {c}`, contradicting its
    /// maximality. Re-inserting those keeps disapproval maintenance exact
    /// too (an improvement over the paper's filter; see DESIGN.md), so an
    /// exhausted store stays exhausted.
    pub fn maintain(
        &mut self,
        network: &MatchingNetwork,
        feedback: &Feedback,
        candidate: CandidateId,
        approved: bool,
    ) {
        self.maintain_with_index(network.index(), feedback, candidate, approved);
    }

    /// Index-level form of [`SampleStore::maintain`] (see
    /// [`SampleStore::with_index`]).
    pub fn maintain_with_index(
        &mut self,
        index: &ConflictIndex,
        feedback: &Feedback,
        candidate: CandidateId,
        approved: bool,
    ) {
        // the matrix row of `candidate` is exactly the survivor mask
        // (complemented for disapprovals): filter columns row-wise. The
        // whole filter runs on a copy-on-write overlay of the snapshot, so
        // forked stores sharing the old snapshot are untouched.
        {
            let data = Arc::make_mut(&mut self.data);
            let cols = data.matrix.sample_count();
            let mask = if approved {
                data.matrix.row(candidate).to_vec()
            } else {
                let mut mask = vec![0u64; data.matrix.row(candidate).len()];
                kernels::not_into(&mut mask, data.matrix.row(candidate), cols);
                mask
            };
            data.matrix.filter_columns(&mask);
            // survivors compact in place (order preserved, no clones) and
            // the dedup map keeps its entries via a position remap — the
            // old drain-and-rebuild re-hashed and re-cloned every
            // surviving instance on every assertion, which dominated the
            // whole assert path once stores grew past a few hundred samples
            let total = data.samples.len();
            let mut remap: Vec<usize> = Vec::with_capacity(total);
            let mut dying: Vec<(BitSet, u64)> = Vec::new();
            let mut write = 0usize;
            for read in 0..total {
                if data.samples[read].contains(candidate) == approved {
                    remap.push(write);
                    if write != read {
                        data.samples.swap(write, read);
                        data.counts.swap(write, read);
                    }
                    write += 1;
                } else {
                    remap.push(usize::MAX);
                    if !approved {
                        // the slot's content is dead either way; keep it
                        // only when disapproval re-insertion needs it
                        dying.push((
                            std::mem::replace(&mut data.samples[read], BitSet::new(0)),
                            data.counts[read],
                        ));
                    }
                }
            }
            data.samples.truncate(write);
            data.counts.truncate(write);
            data.seen.retain(|_, pos| {
                let new_pos = remap[*pos];
                *pos = new_pos;
                new_pos != usize::MAX
            });
            debug_assert_eq!(data.matrix.sample_count(), data.samples.len());
            if !approved {
                for (mut inst, count) in dying {
                    inst.remove(candidate);
                    if index.is_maximal_in(&inst, feedback.disapproved(), &mut self.walk_buf)
                        && !data.seen.contains_key(&inst)
                    {
                        // the shrunken instance inherits its ancestor's weight
                        data.seen.insert(inst.clone(), data.samples.len());
                        data.matrix.push_sample(&inst);
                        data.samples.push(inst);
                        data.counts.push(count);
                    }
                }
            }
        }
        if !self.exhausted && self.data.samples.len() < self.config.n_min {
            self.fill(index, feedback);
        }
        self.sync_weights();
    }
}

/// Order-preserving distinct-instance recording: merges `count` into the
/// existing entry or appends a new one. The single implementation behind
/// both [`SampleStore::record`] and the per-chain accumulators of
/// [`run_chain`], so the dedup/count-merge invariant cannot drift between
/// the single- and multi-chain paths.
fn dedup_record(
    seen: &mut HashMap<BitSet, usize>,
    instances: &mut Vec<BitSet>,
    counts: &mut Vec<u64>,
    inst: &BitSet,
    count: u64,
) -> bool {
    if let Some(&pos) = seen.get(inst) {
        counts[pos] += count;
        false
    } else {
        seen.insert(inst.clone(), instances.len());
        instances.push(inst.clone());
        counts.push(count);
        true
    }
}

/// Per-chain RNG seed: `seed + chain_id`, with each pass epoch spread by a
/// golden-ratio stride so refills explore new trajectories.
fn chain_seed(seed: u64, chain: u64, epoch: u64) -> u64 {
    seed.wrapping_add(chain).wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One emission of Algorithm 3: `walk_steps` random-walk steps from
/// `current`, each adding a random candidate, repairing, re-maximizing,
/// and accepting with probability `1 − e^{−Δ}`. `next` and `scratch` are
/// reusable buffers; no allocation per step.
fn walk(
    index: &ConflictIndex,
    feedback: &Feedback,
    config: &SamplerConfig,
    rng: &mut StdRng,
    current: &mut BitSet,
    next: &mut BitSet,
    scratch: &mut Scratch,
) {
    let n = index.candidate_count();
    for _ in 0..config.walk_steps {
        // `Rand(C \ F− \ I_i)`: rejection-sample a few times (cheap when
        // most candidates qualify), then fall back to a counted scan
        let valid = |c: CandidateId| !feedback.disapproved().contains(c) && !current.contains(c);
        let mut pick: Option<CandidateId> = None;
        for _ in 0..24 {
            let c = CandidateId::from_index(rng.random_range(0..n));
            if valid(c) {
                pick = Some(c);
                break;
            }
        }
        if pick.is_none() {
            let covered = current.count() + feedback.disapproved().count()
                - current.intersection_count(feedback.disapproved());
            let eligible = n - covered;
            if eligible > 0 {
                let k = rng.random_range(0..eligible);
                pick = (0..n).map(CandidateId::from_index).filter(|&c| valid(c)).nth(k);
            }
        }
        let Some(c) = pick else {
            return; // instance already covers every assertable candidate
        };
        // `next` starts as a copy of `current`, whose content the tracked
        // frontier (if valid) already matches
        next.copy_from(current);
        next.insert(c);
        scratch.note_insert(index, next, c);
        repair_in(index, next, c, feedback.approved(), rng, scratch);
        maximize_in(index, next, feedback.disapproved(), rng, scratch);
        let accept = if config.anneal {
            let delta = current.symmetric_difference_count(next);
            1.0 - (-(delta as f64)).exp()
        } else {
            1.0
        };
        if rng.random_bool(accept.clamp(0.0, 1.0)) {
            // the frontier matches `next`, which becomes `current`
            std::mem::swap(current, next);
        } else {
            // the frontier matches the rejected state — unwind the step's
            // mutation trail so it matches `current` again, which is far
            // cheaper than the full rebuild an invalidation would force
            scratch.unwind_step(index, next, c);
            debug_assert_eq!(next, current);
        }
    }
}

/// Runs one independent sampling chain: its own RNG, scratch buffers and
/// walk state, starting from the maximized approved set. Returns the
/// distinct instances in discovery order with their emission counts.
fn run_chain(
    index: &ConflictIndex,
    feedback: &Feedback,
    config: SamplerConfig,
    chain_seed: u64,
    emissions: usize,
) -> (Vec<BitSet>, Vec<u64>) {
    let n = index.candidate_count();
    let mut rng = StdRng::seed_from_u64(chain_seed);
    let mut scratch = Scratch::new(n);
    let mut next = BitSet::new(n);
    let mut current = feedback.approved().clone();
    debug_assert!(index.is_consistent(&current), "approved set must be consistent");
    maximize_in(index, &mut current, feedback.disapproved(), &mut rng, &mut scratch);
    let mut seen: HashMap<BitSet, usize> = HashMap::new();
    let mut instances: Vec<BitSet> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    dedup_record(&mut seen, &mut instances, &mut counts, &current, 1);
    for _ in 0..emissions {
        walk(index, feedback, &config, &mut rng, &mut current, &mut next, &mut scratch);
        dedup_record(&mut seen, &mut instances, &mut counts, &current, 1);
    }
    (instances, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    fn small_config() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 7, chains: 1 }
    }

    #[test]
    fn finds_all_fig1_instances_and_exhausts() {
        let net = fig1_network();
        let fb = Feedback::new(5);
        let store = SampleStore::new(&net, &fb, small_config());
        // only 4 instances exist < n_min → store must detect exhaustion
        assert!(store.is_exhausted());
        assert_eq!(store.len(), 4, "all four maximal instances found");
        for s in store.samples() {
            assert!(net.index().is_consistent(s));
            assert!(net.index().is_maximal(s, fb.disapproved()));
        }
    }

    #[test]
    fn samples_are_distinct() {
        let net = fig1_network();
        let store = SampleStore::new(&net, &Feedback::new(5), small_config());
        let mut seen = std::collections::HashSet::new();
        for s in store.samples() {
            assert!(seen.insert(s.clone()), "duplicate sample");
        }
    }

    #[test]
    fn matrix_transposes_membership() {
        let net = fig1_network();
        let store = SampleStore::new(&net, &Feedback::new(5), small_config());
        let m = store.matrix();
        assert_eq!(m.sample_count(), store.len());
        assert_eq!(m.candidate_count(), 5);
        for c in (0..5).map(CandidateId::from_index) {
            let by_scan = store.samples().iter().filter(|s| s.contains(c)).count();
            assert_eq!(m.membership_count(c), by_scan);
            for d in (0..5).map(CandidateId::from_index) {
                let co = store.samples().iter().filter(|s| s.contains(c) && s.contains(d)).count();
                assert_eq!(m.co_count(c, d), co);
            }
        }
    }

    #[test]
    fn pext_gathers_masked_bits() {
        // naive reference: collect bits of x at mask positions
        let naive = |x: u64, mask: u64| -> u64 {
            let mut out = 0u64;
            let mut pos = 0;
            for b in 0..64 {
                if mask & (1 << b) != 0 {
                    out |= ((x >> b) & 1) << pos;
                    pos += 1;
                }
            }
            out
        };
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let (x, mask) = (next(), next());
            assert_eq!(pext64(x, mask), naive(x, mask));
        }
        assert_eq!(pext64(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(pext64(u64::MAX, 0), 0);
    }

    #[test]
    fn filter_columns_matches_column_rebuild() {
        // push 150 pseudo-random sample columns over 90 candidates, filter
        // by a pseudo-random mask, and compare against a from-scratch
        // rebuild of the surviving columns
        let n = 90usize;
        let cols = 150usize;
        let mut state = 7u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let samples: Vec<BitSet> = (0..cols)
            .map(|_| {
                BitSet::from_ids(n, (0..n).filter(|_| next() % 3 == 0).map(CandidateId::from_index))
            })
            .collect();
        let mut matrix = SampleMatrix::new(n);
        for s in &samples {
            matrix.push_sample(s);
        }
        let mut mask = vec![0u64; cols.div_ceil(64)];
        let survivors: Vec<usize> = (0..cols).filter(|_| next() % 2 == 0).collect();
        for &j in &survivors {
            mask[j / 64] |= 1 << (j % 64);
        }
        matrix.filter_columns(&mask);
        let mut expect = SampleMatrix::new(n);
        for &j in &survivors {
            expect.push_sample(&samples[j]);
        }
        assert_eq!(matrix.sample_count(), survivors.len());
        for c in (0..n).map(CandidateId::from_index) {
            assert_eq!(matrix.row(c), expect.row(c));
        }
    }

    #[test]
    fn append_samples_matches_per_column_push() {
        // batched transpose appends must land bit-identically to the
        // per-column scatter path, at every column-offset alignment
        let n = 90usize;
        let mut state = 11u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let samples: Vec<BitSet> = (0..200)
            .map(|_| {
                BitSet::from_ids(n, (0..n).filter(|_| next() % 3 == 0).map(CandidateId::from_index))
            })
            .collect();
        // splits exercising: empty batch, sub-word batch, word-straddling
        // offsets (r != 0), exact 64-sample blocks, multi-block batches
        for split in [0usize, 1, 17, 63, 64, 65, 128, 150, 200] {
            let mut batched = SampleMatrix::new(n);
            batched.append_samples(&samples[..split]);
            batched.append_samples(&samples[split..]);
            let mut scatter = SampleMatrix::new(n);
            for s in &samples {
                scatter.push_sample(s);
            }
            assert_eq!(batched.sample_count(), scatter.sample_count(), "split={split}");
            for c in (0..n).map(CandidateId::from_index) {
                assert_eq!(batched.row(c), scatter.row(c), "split={split} c={c:?}");
            }
        }
    }

    #[test]
    fn matrix_follows_view_maintenance() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        let mut store = SampleStore::new(&net, &fb, small_config());
        fb.approve(CandidateId(2));
        store.maintain(&net, &fb, CandidateId(2), true);
        let m = store.matrix();
        assert_eq!(m.sample_count(), store.len());
        assert_eq!(m.membership_count(CandidateId(2)), store.len(), "every survivor contains c2");
        for c in (0..5).map(CandidateId::from_index) {
            let by_scan = store.samples().iter().filter(|s| s.contains(c)).count();
            assert_eq!(m.membership_count(c), by_scan);
        }
    }

    #[test]
    fn weights_are_cached_and_uniform() {
        let net = fig1_network();
        let store = SampleStore::new(&net, &Feedback::new(5), small_config());
        assert_eq!(store.weights().len(), store.len());
        assert!(store.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn maintain_approval_keeps_only_containing() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        let mut store = SampleStore::new(&net, &fb, small_config());
        fb.approve(CandidateId(2));
        store.maintain(&net, &fb, CandidateId(2), true);
        for s in store.samples() {
            assert!(s.contains(CandidateId(2)));
        }
        // instances containing c2: {c0,c1,c2} and {c2,c3}
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn maintain_disapproval_keeps_only_excluding_and_remaximizes() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        let mut store = SampleStore::new(&net, &fb, small_config());
        fb.disapprove(CandidateId(0));
        store.maintain(&net, &fb, CandidateId(0), false);
        for s in store.samples() {
            assert!(!s.contains(CandidateId(0)));
            assert!(net.index().is_maximal(s, fb.disapproved()));
        }
        // without c0: {c1,c2}, {c1,c4}, {c2,c3}, {c3,c4}
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn respects_feedback_in_fresh_sampling() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        fb.approve(CandidateId(0));
        fb.disapprove(CandidateId(3));
        let store = SampleStore::new(&net, &fb, small_config());
        assert!(!store.is_empty());
        for s in store.samples() {
            assert!(s.contains(CandidateId(0)));
            assert!(!s.contains(CandidateId(3)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = fig1_network();
        let fb = Feedback::new(5);
        let a = SampleStore::new(&net, &fb, small_config());
        let b = SampleStore::new(&net, &fb, small_config());
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn multi_chain_is_deterministic_and_complete() {
        let net = fig1_network();
        let fb = Feedback::new(5);
        let config = SamplerConfig { chains: 4, ..small_config() };
        let a = SampleStore::new(&net, &fb, config);
        let b = SampleStore::new(&net, &fb, config);
        assert_eq!(a.samples(), b.samples(), "chain-order merge must be deterministic");
        assert_eq!(a.visit_counts(), b.visit_counts());
        assert!(a.is_exhausted());
        assert_eq!(a.len(), 4, "all four maximal instances found across chains");
        for s in a.samples() {
            assert!(net.index().is_consistent(s));
            assert!(net.index().is_maximal(s, fb.disapproved()));
        }
    }

    #[test]
    fn multi_chain_respects_feedback() {
        let net = fig1_network();
        let mut fb = Feedback::new(5);
        fb.approve(CandidateId(0));
        fb.disapprove(CandidateId(3));
        let store = SampleStore::new(&net, &fb, SamplerConfig { chains: 3, ..small_config() });
        assert!(!store.is_empty());
        for s in store.samples() {
            assert!(s.contains(CandidateId(0)));
            assert!(!s.contains(CandidateId(3)));
        }
    }

    #[test]
    fn multi_chain_matches_single_chain_distinct_set_when_exhaustive() {
        // on the tiny fig1 space both settings must discover all of Ω
        let net = fig1_network();
        let fb = Feedback::new(5);
        let single = SampleStore::new(&net, &fb, small_config());
        let multi = SampleStore::new(&net, &fb, SamplerConfig { chains: 2, ..small_config() });
        let mut a: Vec<_> = single.samples().to_vec();
        let mut b: Vec<_> = multi.samples().to_vec();
        a.sort_by_key(|s| s.to_vec());
        b.sort_by_key(|s| s.to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_network_is_trivially_exhausted() {
        use smn_constraints::ConstraintConfig;
        use smn_schema::{CandidateSet, CatalogBuilder, InteractionGraph};
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["x"]).unwrap();
        b.add_schema_with_attributes("B", ["y"]).unwrap();
        let cat = b.build();
        let cs = CandidateSet::new(&cat);
        let net = MatchingNetwork::new(
            cat,
            InteractionGraph::complete(2),
            cs,
            ConstraintConfig::default(),
        );
        let store = SampleStore::new(&net, &Feedback::new(0), small_config());
        assert!(store.is_exhausted());
        assert!(store.is_empty());
    }

    #[test]
    fn larger_network_reaches_n_min() {
        let (net, _truth) = crate::testutil::perturbed_network(4, 8, 0.7, 0.9, 3);
        let store = SampleStore::new(&net, &Feedback::new(net.candidate_count()), small_config());
        assert!(
            store.is_exhausted() || store.len() >= 50,
            "either exhausted or reached n_min, got {}",
            store.len()
        );
    }
}
