//! Instance-level primitives: the greedy repair of Algorithm 4 and the
//! maximization pass that upgrades consistent sets to matching instances
//! (Definition 1).
//!
//! Both primitives run thousands of times per reconciliation step inside
//! the Algorithm 3 walk and the Algorithm 2 local search, so they operate
//! on reusable [`Scratch`] buffers: no per-call allocation, word-parallel
//! blocked-set derivation instead of full `0..n` scans, and a
//! per-candidate counter array instead of the quadratic
//! count-per-violation argmax.

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;
use smn_constraints::{BitSet, ConflictIndex};
use smn_schema::CandidateId;

/// Reusable buffers for [`repair_in`] / [`maximize_in`], including the
/// *incremental addable frontier*.
///
/// The frontier tracks, per candidate, how many conflicts currently block
/// it from joining the tracked instance (`frontier_count`), plus the
/// blocked set as a bitset. Counter updates cost O(conflict degree) per
/// instance change, so `maximize` draws its candidates from
/// `¬(instance ∪ forbidden ∪ blocked)` without rescanning `0..n` or
/// re-deriving the blocked mask from scratch each call.
///
/// One `Scratch` per walker/search thread; sized once for the network's
/// candidate count and reused across calls.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Generic mask buffer (frontier assembly, maximality checks).
    blocked: BitSet,
    /// Insertion-order buffer (maximize).
    order: Vec<CandidateId>,
    /// Repair work list: inline members, member count, live flag.
    work: Vec<([CandidateId; 3], u8, bool)>,
    /// Per-candidate involvement counters (repair argmax).
    counts: Vec<u32>,
    /// Candidates with nonzero counters, in first-occurrence order.
    touched: Vec<CandidateId>,
    /// Current argmax set (repair tie-breaking).
    argmax: Vec<CandidateId>,
    /// Candidates removed by the last [`repair_in`] call.
    removed: Vec<CandidateId>,
    /// Candidates inserted by the last [`maximize_in`] call.
    inserted: Vec<CandidateId>,
    /// Per-candidate blocker counts of the tracked instance.
    frontier_count: Vec<u32>,
    /// `{c | frontier_count[c] > 0}` as a bitset.
    frontier_blocked: BitSet,
    /// Whether the frontier matches the instance being operated on.
    frontier_valid: bool,
}

impl Scratch {
    /// Creates buffers for a network with `n` candidates.
    pub fn new(n: usize) -> Self {
        Self {
            blocked: BitSet::new(n),
            order: Vec::new(),
            work: Vec::new(),
            counts: vec![0; n],
            touched: Vec::new(),
            argmax: Vec::new(),
            removed: Vec::new(),
            inserted: Vec::new(),
            frontier_count: vec![0; n],
            frontier_blocked: BitSet::new(n),
            frontier_valid: false,
        }
    }

    /// Candidates removed by the last [`repair_in`] call, in removal order.
    pub fn removed(&self) -> &[CandidateId] {
        &self.removed
    }

    /// Candidates inserted by the last [`maximize_in`] call, in insertion
    /// order.
    pub fn inserted(&self) -> &[CandidateId] {
        &self.inserted
    }

    /// Declares the tracked frontier stale: the next [`maximize_in`] call
    /// rebuilds it from its instance. Call after mutating or replacing an
    /// instance outside [`note_insert`](Scratch::note_insert) /
    /// [`repair_in`] / [`maximize_in`].
    pub fn invalidate_frontier(&mut self) {
        self.frontier_valid = false;
    }

    /// Notifies the frontier that `c` was just inserted into `instance`
    /// (`instance` already contains `c`). No-op while the frontier is
    /// stale.
    pub fn note_insert(&mut self, index: &ConflictIndex, instance: &BitSet, c: CandidateId) {
        if !self.frontier_valid {
            return;
        }
        for &y in index.pair_conflicts(c) {
            self.frontier_bump_up(y);
        }
        for &[a, b] in index.other_pairs(c) {
            if instance.contains(a) {
                self.frontier_bump_up(b);
            }
            if instance.contains(b) {
                self.frontier_bump_up(a);
            }
        }
    }

    /// Notifies the frontier that `c` was just removed from `instance`
    /// (`instance` no longer contains `c`). No-op while the frontier is
    /// stale.
    pub fn note_remove(&mut self, index: &ConflictIndex, instance: &BitSet, c: CandidateId) {
        if !self.frontier_valid {
            return;
        }
        for &y in index.pair_conflicts(c) {
            self.frontier_bump_down(y);
        }
        for &[a, b] in index.other_pairs(c) {
            if instance.contains(a) {
                self.frontier_bump_down(b);
            }
            if instance.contains(b) {
                self.frontier_bump_down(a);
            }
        }
    }

    /// Rolls `instance` and the tracked frontier back over one walk step's
    /// mutation trail — the exact inverse of "insert `added`, then the
    /// last [`repair_in`]'s removals, then the last [`maximize_in`]'s
    /// insertions". Undoing newest-first reproduces, at each inverse
    /// operation, precisely the membership state its forward twin saw, so
    /// the counter updates cancel exactly and the frontier stays valid —
    /// at O(trail × conflict degree) cost instead of the O(|I| × degree)
    /// full rebuild an invalidated frontier pays on the next maximize.
    pub fn unwind_step(
        &mut self,
        index: &ConflictIndex,
        instance: &mut BitSet,
        added: CandidateId,
    ) {
        let inserted = std::mem::take(&mut self.inserted);
        for &c in inserted.iter().rev() {
            instance.remove(c);
            self.note_remove(index, instance, c);
        }
        self.inserted = inserted;
        self.inserted.clear();
        let removed = std::mem::take(&mut self.removed);
        for &c in removed.iter().rev() {
            instance.insert(c);
            self.note_insert(index, instance, c);
        }
        self.removed = removed;
        self.removed.clear();
        instance.remove(added);
        self.note_remove(index, instance, added);
    }

    /// Recomputes the frontier for `instance` from the posting lists:
    /// `frontier_count[c]` = pair conflicts of `c` inside `instance` plus
    /// triples of `c` whose other two members lie inside `instance` —
    /// zero exactly when `can_add(instance, c)` for `c ∉ instance`.
    fn frontier_rebuild(&mut self, index: &ConflictIndex, instance: &BitSet) {
        self.frontier_count.fill(0);
        self.frontier_blocked.clear();
        for c in instance.iter() {
            for &y in index.pair_conflicts(c) {
                self.frontier_bump_up(y);
            }
            // each in-instance pair {c, a} of a triple bumps the third
            // member exactly once: only the smaller of the pair triggers
            for &[a, b] in index.other_pairs(c) {
                if a > c && instance.contains(a) {
                    self.frontier_bump_up(b);
                }
                if b > c && instance.contains(b) {
                    self.frontier_bump_up(a);
                }
            }
        }
        self.frontier_valid = true;
    }

    #[inline]
    fn frontier_bump_up(&mut self, c: CandidateId) {
        let k = &mut self.frontier_count[c.index()];
        *k += 1;
        if *k == 1 {
            self.frontier_blocked.insert(c);
        }
    }

    #[inline]
    fn frontier_bump_down(&mut self, c: CandidateId) {
        let k = &mut self.frontier_count[c.index()];
        debug_assert!(*k > 0, "frontier counter underflow");
        *k -= 1;
        if *k == 0 {
            self.frontier_blocked.remove(c);
        }
    }
}

/// Algorithm 4: repairs `instance` after `added` was inserted into a
/// previously consistent set. Allocating convenience wrapper around
/// [`repair_in`]; returns the removed candidates.
pub fn repair(
    index: &ConflictIndex,
    instance: &mut BitSet,
    added: CandidateId,
    approved: &BitSet,
    rng: &mut impl Rng,
) -> Vec<CandidateId> {
    let mut scratch = Scratch::new(index.candidate_count());
    repair_in(index, instance, added, approved, rng, &mut scratch);
    scratch.removed
}

/// Algorithm 4 on scratch buffers: repairs `instance` after `added` was
/// inserted into a previously consistent set. The removed candidates are
/// left in [`Scratch::removed`].
///
/// Because the set was consistent before, every violation involves `added`;
/// the work list is computed once and shrinks monotonically. The
/// correspondence participating in the most remaining violations is removed
/// greedily — tracked by a per-candidate counter array updated as
/// violations retire, rather than recounting the work list per candidate.
/// Ties are broken *uniformly at random*. (The paper leaves tie handling
/// unspecified. Random tie-breaking matters for the Algorithm 3 walk: with
/// a deterministic rule, instances whose only entry paths require the
/// non-preferred victim have zero in-degree in the walk's transition graph
/// and are never sampled — we observed exactly that coverage gap before
/// randomizing; see DESIGN.md.)
///
/// Approved correspondences and `added` itself are never removal
/// candidates — if at some point only they participate in remaining
/// violations, `added` itself is removed as a fallback (the paper's
/// Algorithm 4 would otherwise not terminate).
pub fn repair_in(
    index: &ConflictIndex,
    instance: &mut BitSet,
    added: CandidateId,
    approved: &BitSet,
    rng: &mut impl Rng,
    s: &mut Scratch,
) {
    debug_assert!(instance.contains(added));
    s.removed.clear();
    s.work.clear();
    index.for_each_violation_involving(instance, added, |members| {
        let mut m = [added; 3];
        m[..members.len()].copy_from_slice(members);
        s.work.push((m, members.len() as u8, true));
    });
    s.touched.clear();
    for &(m, len, _) in &s.work {
        for &c in &m[..len as usize] {
            if s.counts[c.index()] == 0 {
                s.touched.push(c);
            }
            s.counts[c.index()] += 1;
        }
    }
    let mut alive = s.work.len();
    while alive > 0 {
        // argmax over removable candidates still involved in live violations
        let mut best = 0u32;
        s.argmax.clear();
        for &c in &s.touched {
            if c == added || approved.contains(c) {
                continue;
            }
            let k = s.counts[c.index()];
            if k == 0 {
                continue;
            }
            match k.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = k;
                    s.argmax.clear();
                    s.argmax.push(c);
                }
                std::cmp::Ordering::Equal => s.argmax.push(c),
                std::cmp::Ordering::Less => {}
            }
        }
        let victim = match s.argmax.as_slice() {
            [] => added, // only `added` and approved members remain
            list => *list.choose(rng).expect("non-empty"),
        };
        instance.remove(victim);
        s.removed.push(victim);
        s.note_remove(index, instance, victim);
        for (m, len, live) in s.work.iter_mut() {
            if !*live {
                continue;
            }
            let members = &m[..*len as usize];
            if members.contains(&victim) {
                *live = false;
                alive -= 1;
                for &c in members {
                    s.counts[c.index()] -= 1;
                }
            }
        }
        if victim == added {
            debug_assert_eq!(alive, 0);
            break;
        }
    }
    for &c in &s.touched {
        s.counts[c.index()] = 0;
    }
    debug_assert!(index.is_consistent(instance));
}

/// Completes `instance` to a *maximal* consistent set. Allocating
/// convenience wrapper around [`maximize_in`].
pub fn maximize(
    index: &ConflictIndex,
    instance: &mut BitSet,
    forbidden: &BitSet,
    rng: &mut impl Rng,
) {
    let mut scratch = Scratch::new(index.candidate_count());
    maximize_in(index, instance, forbidden, rng, &mut scratch);
}

/// Completes `instance` to a *maximal* consistent set on scratch buffers:
/// candidates are drawn from the addable frontier — the complement of
/// `instance ∪ forbidden ∪ blocked`, with `blocked` taken from the
/// incrementally-maintained counter array (rebuilt here only if stale) —
/// and tried in random order; a candidate is inserted when its blocker
/// count is still zero at its turn, updating the counters of its conflict
/// neighborhood. Constraints are monotone (adding candidates only ever
/// adds violations), so one pass over the initial frontier suffices for
/// maximality; candidates outside it could never have been added at all.
///
/// Precondition: the scratch frontier either matches `instance`'s current
/// content (kept in sync via [`Scratch::note_insert`] / [`repair_in`] /
/// earlier `maximize_in` calls on the same instance) or has been
/// [invalidated](Scratch::invalidate_frontier).
pub fn maximize_in(
    index: &ConflictIndex,
    instance: &mut BitSet,
    forbidden: &BitSet,
    rng: &mut impl Rng,
    s: &mut Scratch,
) {
    if !s.frontier_valid {
        s.frontier_rebuild(index, instance);
    }
    s.blocked.copy_from(&s.frontier_blocked);
    s.blocked.union_with(instance);
    s.blocked.union_with(forbidden);
    s.order.clear();
    s.order.extend(s.blocked.iter_unset());
    s.order.shuffle(rng);
    s.inserted.clear();
    for i in 0..s.order.len() {
        let c = s.order[i];
        if s.frontier_count[c.index()] == 0 {
            instance.insert(c);
            s.inserted.push(c);
            s.note_insert(index, instance, c);
        }
    }
    debug_assert!(index.is_maximal(instance, forbidden));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(v: &[u32]) -> impl Iterator<Item = CandidateId> + '_ {
        v.iter().map(|&i| CandidateId(i))
    }

    #[test]
    fn repair_resolves_one_to_one() {
        let net = fig1_network();
        let n = net.candidate_count();
        // {c0, c1} + add c3 (1-1 conflict with c1)
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 3]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(3), &BitSet::new(n), &mut rng);
        assert_eq!(removed, vec![CandidateId(1)], "c1 is the only removable participant");
        assert!(inst.contains(CandidateId(3)));
        assert!(net.index().is_consistent(&inst));
    }

    #[test]
    fn repair_respects_approved() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut approved = BitSet::new(n);
        approved.insert(CandidateId(1));
        // adding c3 conflicts with approved c1 → c3 itself must go
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 3]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(3), &approved, &mut rng);
        assert_eq!(removed, vec![CandidateId(3)]);
        assert!(inst.contains(CandidateId(1)));
    }

    #[test]
    fn repair_resolves_cycle_violation() {
        let net = fig1_network();
        let n = net.candidate_count();
        // {c1, c4} is consistent; adding c0 completes the open cycle
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 4]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(0), &BitSet::new(n), &mut rng);
        assert_eq!(removed.len(), 1);
        assert!(net.index().is_consistent(&inst));
        assert!(inst.contains(CandidateId(0)), "added candidate preferred over others");
    }

    #[test]
    fn repair_on_already_consistent_is_noop() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 2]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(2), &BitSet::new(n), &mut rng);
        assert!(removed.is_empty());
        assert_eq!(inst.count(), 3);
    }

    #[test]
    fn repair_leaves_scratch_counters_clean() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut s = Scratch::new(n);
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..8u64 {
            let mut inst = BitSet::from_ids(n, ids(&[0, 1, 4]));
            repair_in(net.index(), &mut inst, CandidateId(0), &BitSet::new(n), &mut rng, &mut s);
            assert!(net.index().is_consistent(&inst), "trial {trial}");
            assert!(s.counts.iter().all(|&k| k == 0), "counters must reset between calls");
        }
    }

    #[test]
    fn maximize_reaches_known_instances() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            let mut inst = BitSet::new(n);
            maximize(net.index(), &mut inst, &BitSet::new(n), &mut rng);
            assert!(net.index().is_consistent(&inst));
            assert!(net.index().is_maximal(&inst, &BitSet::new(n)));
            seen.insert(inst.to_vec());
        }
        // all four maximal instances of the Fig. 1 network are reachable
        assert!(seen.len() >= 3, "expected to see several distinct instances, got {seen:?}");
    }

    #[test]
    fn maximize_respects_forbidden() {
        let net = fig1_network();
        let n = net.candidate_count();
        let forbidden = BitSet::from_ids(n, ids(&[0]));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let mut inst = BitSet::new(n);
            maximize(net.index(), &mut inst, &forbidden, &mut rng);
            assert!(!inst.contains(CandidateId(0)));
            assert!(net.index().is_maximal(&inst, &forbidden));
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // same rng seed + same inputs ⇒ identical results whether scratch
        // buffers are fresh or reused across calls (with the frontier
        // invalidated between unrelated instances)
        let net = fig1_network();
        let n = net.candidate_count();
        let forbidden = BitSet::new(n);
        let mut reused = Scratch::new(n);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let mut a = BitSet::new(n);
            let mut b = BitSet::new(n);
            reused.invalidate_frontier();
            maximize_in(net.index(), &mut a, &forbidden, &mut rng_a, &mut reused);
            maximize_in(net.index(), &mut b, &forbidden, &mut rng_b, &mut Scratch::new(n));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn incremental_frontier_matches_rebuilt_frontier() {
        // drive a long repair/maximize sequence on one evolving instance
        // and check the incrementally-maintained blocker counts against a
        // from-scratch rebuild after every step
        let (net, _) = crate::testutil::perturbed_network(4, 8, 0.6, 0.9, 5);
        let n = net.candidate_count();
        let index = net.index();
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = Scratch::new(n);
        let mut inst = BitSet::new(n);
        maximize_in(index, &mut inst, &BitSet::new(n), &mut rng, &mut s);
        for step in 0..40 {
            let c = (0..n)
                .map(CandidateId::from_index)
                .find(|&c| !inst.contains(c))
                .expect("some candidate outside the instance");
            inst.insert(c);
            s.note_insert(index, &inst, c);
            repair_in(index, &mut inst, c, &BitSet::new(n), &mut rng, &mut s);
            maximize_in(index, &mut inst, &BitSet::new(n), &mut rng, &mut s);
            let mut fresh = Scratch::new(n);
            fresh.frontier_rebuild(index, &inst);
            assert_eq!(s.frontier_count, fresh.frontier_count, "step {step}");
            assert_eq!(s.frontier_blocked, fresh.frontier_blocked, "step {step}");
        }
    }
}
