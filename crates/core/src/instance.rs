//! Instance-level primitives: the greedy repair of Algorithm 4 and the
//! maximization pass that upgrades consistent sets to matching instances
//! (Definition 1).

use rand::seq::{IndexedRandom, SliceRandom};
use rand::Rng;
use smn_constraints::{BitSet, ConflictIndex, Violation};
use smn_schema::CandidateId;

/// Algorithm 4: repairs `instance` after `added` was inserted into a
/// previously consistent set.
///
/// Because the set was consistent before, every violation involves `added`;
/// the work list is computed once and shrinks monotonically. The
/// correspondence participating in the most remaining violations is removed
/// greedily; ties are broken *uniformly at random*. (The paper leaves tie
/// handling unspecified. Random tie-breaking matters for the Algorithm 3
/// walk: with a deterministic rule, instances whose only entry paths
/// require the non-preferred victim have zero in-degree in the walk's
/// transition graph and are never sampled — we observed exactly that
/// coverage gap before randomizing; see DESIGN.md.)
///
/// Approved correspondences and `added` itself are never removal
/// candidates — if at some point only they participate in remaining
/// violations, `added` itself is removed as a fallback (the paper's
/// Algorithm 4 would otherwise not terminate).
///
/// Returns the removed candidates.
pub fn repair(
    index: &ConflictIndex,
    instance: &mut BitSet,
    added: CandidateId,
    approved: &BitSet,
    rng: &mut impl Rng,
) -> Vec<CandidateId> {
    debug_assert!(instance.contains(added));
    let mut violations: Vec<Violation> = index.violations_involving(instance, added);
    let mut removed = Vec::new();
    let mut candidates: Vec<CandidateId> = Vec::new();
    while !violations.is_empty() {
        // count involvement per removable candidate; collect the argmax set
        let mut best_count = 0usize;
        candidates.clear();
        let mut seen: Vec<CandidateId> = Vec::new();
        for v in &violations {
            for &m in &v.members {
                if m == added || approved.contains(m) || seen.contains(&m) {
                    continue;
                }
                seen.push(m);
                let count = violations.iter().filter(|w| w.involves(m)).count();
                match count.cmp(&best_count) {
                    std::cmp::Ordering::Greater => {
                        best_count = count;
                        candidates.clear();
                        candidates.push(m);
                    }
                    std::cmp::Ordering::Equal => candidates.push(m),
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        let victim = match candidates.as_slice() {
            [] => added, // only `added` and approved members remain
            list => *list.choose(rng).expect("non-empty"),
        };
        instance.remove(victim);
        removed.push(victim);
        violations.retain(|v| !v.involves(victim));
        if victim == added {
            debug_assert!(violations.is_empty());
            break;
        }
    }
    debug_assert!(index.is_consistent(instance));
    removed
}

/// Completes `instance` to a *maximal* consistent set: candidates outside
/// `instance ∪ forbidden` are tried in random order and inserted when they
/// introduce no violation. Constraints are monotone (adding candidates only
/// ever adds violations), so one pass suffices for maximality.
pub fn maximize(
    index: &ConflictIndex,
    instance: &mut BitSet,
    forbidden: &BitSet,
    rng: &mut impl Rng,
) {
    let mut order: Vec<CandidateId> = (0..index.candidate_count())
        .map(CandidateId::from_index)
        .filter(|&c| !instance.contains(c) && !forbidden.contains(c))
        .collect();
    order.shuffle(rng);
    for c in order {
        if index.can_add(instance, c) {
            instance.insert(c);
        }
    }
    debug_assert!(index.is_maximal(instance, forbidden));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(v: &[u32]) -> impl Iterator<Item = CandidateId> + '_ {
        v.iter().map(|&i| CandidateId(i))
    }

    #[test]
    fn repair_resolves_one_to_one() {
        let net = fig1_network();
        let n = net.candidate_count();
        // {c0, c1} + add c3 (1-1 conflict with c1)
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 3]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(3), &BitSet::new(n), &mut rng);
        assert_eq!(removed, vec![CandidateId(1)], "c1 is the only removable participant");
        assert!(inst.contains(CandidateId(3)));
        assert!(net.index().is_consistent(&inst));
    }

    #[test]
    fn repair_respects_approved() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut approved = BitSet::new(n);
        approved.insert(CandidateId(1));
        // adding c3 conflicts with approved c1 → c3 itself must go
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 3]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(3), &approved, &mut rng);
        assert_eq!(removed, vec![CandidateId(3)]);
        assert!(inst.contains(CandidateId(1)));
    }

    #[test]
    fn repair_resolves_cycle_violation() {
        let net = fig1_network();
        let n = net.candidate_count();
        // {c1, c4} is consistent; adding c0 completes the open cycle
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 4]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(0), &BitSet::new(n), &mut rng);
        assert_eq!(removed.len(), 1);
        assert!(net.index().is_consistent(&inst));
        assert!(inst.contains(CandidateId(0)), "added candidate preferred over others");
    }

    #[test]
    fn repair_on_already_consistent_is_noop() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut inst = BitSet::from_ids(n, ids(&[0, 1, 2]));
        let mut rng = StdRng::seed_from_u64(0);
        let removed = repair(net.index(), &mut inst, CandidateId(2), &BitSet::new(n), &mut rng);
        assert!(removed.is_empty());
        assert_eq!(inst.count(), 3);
    }

    #[test]
    fn maximize_reaches_known_instances() {
        let net = fig1_network();
        let n = net.candidate_count();
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            let mut inst = BitSet::new(n);
            maximize(net.index(), &mut inst, &BitSet::new(n), &mut rng);
            assert!(net.index().is_consistent(&inst));
            assert!(net.index().is_maximal(&inst, &BitSet::new(n)));
            seen.insert(inst.to_vec());
        }
        // all four maximal instances of the Fig. 1 network are reachable
        assert!(seen.len() >= 3, "expected to see several distinct instances, got {seen:?}");
    }

    #[test]
    fn maximize_respects_forbidden() {
        let net = fig1_network();
        let n = net.candidate_count();
        let forbidden = BitSet::from_ids(n, ids(&[0]));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let mut inst = BitSet::new(n);
            maximize(net.index(), &mut inst, &forbidden, &mut rng);
            assert!(!inst.contains(CandidateId(0)));
            assert!(net.index().is_maximal(&inst, &forbidden));
        }
    }
}
