//! A Fenwick (binary-indexed) tree over per-candidate weights, used as an
//! incrementally-updatable roulette wheel.
//!
//! Algorithm 2's fitness-proportionate proposal previously recomputed the
//! eligible-weight total and rescanned the probability vector on every
//! iteration — two O(n) passes per proposal. The Fenwick tree supports
//! O(log n) point updates as candidates enter/leave the instance or the
//! tabu queue, and O(log n) inverse-CDF sampling, so the local search pays
//! logarithmic instead of linear cost per proposed insertion.

/// Fenwick-tree roulette wheel over `n` non-negative weights.
#[derive(Debug, Clone)]
pub struct FenwickSampler {
    /// 1-based partial sums (`tree[0]` unused).
    tree: Vec<f64>,
    /// Current weight per index (for delta updates and zero-weight fixups).
    weight: Vec<f64>,
    /// Largest power of two ≤ `n` (descent start mask).
    mask: usize,
}

impl FenwickSampler {
    /// Creates a wheel of `n` zero weights.
    pub fn new(n: usize) -> Self {
        let mask = if n == 0 { 0 } else { 1usize << (usize::BITS - 1 - n.leading_zeros()) };
        Self { tree: vec![0.0; n + 1], weight: vec![0.0; n], mask }
    }

    /// Creates a wheel initialized from `weights`.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut s = Self::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            s.set(i, w);
        }
        s
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// Whether the wheel has no slots.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// Current weight of slot `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weight[i]
    }

    /// Sets the weight of slot `i` (non-negative), in O(log n).
    pub fn set(&mut self, i: usize, w: f64) {
        debug_assert!(w >= 0.0);
        let delta = w - self.weight[i];
        if delta == 0.0 {
            return;
        }
        self.weight[i] = w;
        let mut pos = i + 1;
        while pos < self.tree.len() {
            self.tree[pos] += delta;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// Total weight (the wheel circumference), in O(log n).
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        let mut pos = self.weight.len();
        while pos > 0 {
            sum += self.tree[pos];
            pos &= pos - 1;
        }
        sum
    }

    /// Inverse-CDF sampling: returns the slot whose cumulative-weight
    /// interval contains `u ∈ [0, total)`, or `None` if all weights are
    /// zero. Accumulated floating-point error is absorbed by snapping to
    /// the nearest positive-weight slot.
    pub fn sample(&self, mut u: f64) -> Option<usize> {
        let n = self.weight.len();
        let mut pos = 0usize; // 1-based prefix position
        let mut bit = self.mask;
        while bit != 0 {
            let next = pos + bit;
            if next <= n && self.tree[next] <= u {
                u -= self.tree[next];
                pos = next;
            }
            bit >>= 1;
        }
        // `pos` slots have cumulative weight ≤ u → candidate index `pos`
        let idx = pos.min(n.saturating_sub(1));
        if self.weight.get(idx).copied().unwrap_or(0.0) > 0.0 {
            return Some(idx);
        }
        // float round-off landed on a zero-weight slot: snap forward, then
        // backward, to the nearest positive weight
        for j in idx + 1..n {
            if self.weight[j] > 0.0 {
                return Some(j);
            }
        }
        (0..idx).rev().find(|&j| self.weight[j] > 0.0)
    }
}

/// Scalar reference wheel — the two-pass linear scan the Fenwick tree
/// replaces — retained as the oracle for the differential property tests.
#[cfg(test)]
pub fn linear_sample(weights: &[f64], u: f64) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut spin = u;
    let mut last = None;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        last = Some(i);
        spin -= w;
        if spin < 0.0 {
            return Some(i);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_zero_wheels_yield_none() {
        assert_eq!(FenwickSampler::new(0).sample(0.0), None);
        assert_eq!(FenwickSampler::new(5).sample(0.0), None);
        assert_eq!(FenwickSampler::from_weights(&[0.0, 0.0]).sample(0.0), None);
    }

    #[test]
    fn samples_respect_cumulative_intervals() {
        let f = FenwickSampler::from_weights(&[1.0, 0.0, 2.0, 1.0]);
        assert_eq!(f.total(), 4.0);
        assert_eq!(f.sample(0.0), Some(0));
        assert_eq!(f.sample(0.999), Some(0));
        assert_eq!(f.sample(1.0), Some(2));
        assert_eq!(f.sample(2.5), Some(2));
        assert_eq!(f.sample(3.0), Some(3));
        assert_eq!(f.sample(3.999), Some(3));
    }

    #[test]
    fn set_updates_total_and_sampling() {
        let mut f = FenwickSampler::from_weights(&[1.0, 1.0, 1.0]);
        f.set(1, 0.0);
        assert_eq!(f.total(), 2.0);
        assert_eq!(f.sample(1.5), Some(2), "slot 1 is now skipped");
        f.set(1, 5.0);
        assert_eq!(f.total(), 7.0);
        assert_eq!(f.sample(1.5), Some(1));
        assert_eq!(f.weight(1), 5.0);
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in 1..40usize {
            let weights: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
            let f = FenwickSampler::from_weights(&weights);
            let total: f64 = weights.iter().sum();
            assert!((f.total() - total).abs() < 1e-12, "n={n}");
            if total > 0.0 {
                let got = f.sample(total - 0.25).expect("in range");
                assert!(weights[got] > 0.0);
            }
        }
    }

    proptest! {
        /// Differential: on integer-valued weights (exact in f64) and
        /// half-integer spins, the Fenwick descent and the scalar linear
        /// scan select the same slot.
        #[test]
        fn fenwick_matches_linear_scan(
            raw in prop::collection::vec(0u32..4, 1..50),
            spin_numer in any::<u32>(),
        ) {
            let weights: Vec<f64> = raw.iter().map(|&w| w as f64).collect();
            let total: f64 = weights.iter().sum();
            let f = FenwickSampler::from_weights(&weights);
            prop_assert_eq!(f.total(), total);
            if total > 0.0 {
                let steps = (2.0 * total) as u32;
                let u = (spin_numer % steps) as f64 * 0.5;
                prop_assert_eq!(f.sample(u), linear_sample(&weights, u));
            } else {
                prop_assert_eq!(f.sample(0.0), None);
            }
        }

        /// Differential under incremental updates: a Fenwick wheel mutated
        /// by point updates agrees with a freshly built scalar wheel.
        #[test]
        fn incremental_updates_match_rebuild(
            raw in prop::collection::vec(0u32..4, 2..40),
            update_slots in prop::collection::vec(0usize..40, 0..20),
            update_vals in prop::collection::vec(0u32..4, 0..20),
            spin_numer in any::<u32>(),
        ) {
            let mut weights: Vec<f64> = raw.iter().map(|&w| w as f64).collect();
            let mut f = FenwickSampler::from_weights(&weights);
            for (&i, &w) in update_slots.iter().zip(&update_vals) {
                let i = i % weights.len();
                weights[i] = w as f64;
                f.set(i, w as f64);
            }
            let total: f64 = weights.iter().sum();
            prop_assert_eq!(f.total(), total);
            if total > 0.0 {
                let steps = (2.0 * total) as u32;
                let u = (spin_numer % steps) as f64 * 0.5;
                prop_assert_eq!(f.sample(u), linear_sample(&weights, u));
            }
        }
    }
}
