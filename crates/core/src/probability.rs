//! The probabilistic matching network `⟨N, P⟩` (§III).
//!
//! [`ProbabilisticNetwork`] is the single mutable state of reconciliation:
//! it owns the network, the accumulated feedback, the view-maintained
//! sample representation and the derived probabilities. Every user
//! assertion flows through [`ProbabilisticNetwork::assert_candidate`],
//! which updates all of them consistently — the probabilistic model "acts
//! as a black-box … it contains all the information given by matchers and
//! user assertions".
//!
//! Two internal representations back the same public API:
//!
//! * **monolithic** ([`ProbabilisticNetwork::new`]) — one [`SampleStore`]
//!   over the whole candidate set, the classic Algorithm 3 setup;
//! * **component-sharded** ([`ProbabilisticNetwork::new_sharded`]) — one
//!   independent store per conflict component (see [`crate::shard`]).
//!   Because the distribution factorizes exactly over components, the two
//!   representations agree on probabilities, entropy and information gain
//!   (bit-for-bit on exhausted stores), while assertions and gain scans
//!   cost per-shard instead of per-network.

use crate::entropy::{binary_entropy, entropy_of};
use crate::feedback::{Assertion, Feedback};
use crate::gains::{GainCache, GainSource};
use crate::network::MatchingNetwork;
use crate::pool;
use crate::reconcile::StepOutcome;
use crate::sampling::{row_and_count, SampleMatrix, SampleStore, SamplerConfig};
use crate::shard::{ShardSet, ShardingConfig};
use smn_constraints::BitSet;
use smn_schema::{AttributeId, CandidateId, SchemaError};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why [`ProbabilisticNetwork::assert_candidate`] (and with it
/// [`Session::answer`](crate::Session::answer)) rejected an assertion.
/// Rejections never mutate the model; re-asserting a candidate the *same*
/// way is a successful no-op, not an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertError {
    /// Approving the candidate contradicts earlier approvals under the
    /// integrity constraints — no matching instance can contain all of
    /// them, so the probabilistic model would become empty.
    InconsistentApproval(CandidateId),
    /// The candidate was already asserted the other way. The paper assumes
    /// "user assertions are always right", so flips are refused rather
    /// than integrated.
    Contradictory {
        /// The re-asserted candidate.
        candidate: CandidateId,
        /// The standing verdict (`true` = it is approved, and the rejected
        /// assertion tried to disapprove it).
        previously_approved: bool,
    },
}

impl fmt::Display for AssertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssertError::InconsistentApproval(c) => {
                write!(f, "approving {c} contradicts earlier approvals under the constraints")
            }
            AssertError::Contradictory { candidate, previously_approved } => {
                let standing = if *previously_approved { "approved" } else { "disapproved" };
                write!(f, "{candidate} is already {standing}; assertions cannot be flipped")
            }
        }
    }
}

impl std::error::Error for AssertError {}

/// How [`ProbabilisticNetwork::commit_batch`] executes its per-shard
/// commit lanes. All variants produce byte-identical results — execution
/// is pure wall-clock (see `docs/SERVING.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CommitExec {
    /// One lane after another on the calling thread.
    #[default]
    Sequential,
    /// Lanes fan out on the global [`pool`] through its high-priority
    /// lane, overtaking queued background work.
    Pool,
    /// One scoped thread per lane — the reference implementation for the
    /// differential suites.
    Scoped,
}

/// What [`ProbabilisticNetwork::commit_batch`] did with one requested
/// assertion, in request order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitOutcome {
    /// The candidate the request named.
    pub candidate: CandidateId,
    /// The verdict actually standing after the commit: the requested one
    /// for [`StepOutcome::Integrated`], `false` for
    /// [`StepOutcome::Flipped`], the (rejected) requested one for
    /// [`StepOutcome::Skipped`].
    pub approved: bool,
    /// Integrated as requested, flipped to a disapproval, or skipped.
    pub outcome: StepOutcome,
    /// The shard that owns the candidate (0 for monolithic networks).
    pub shard: usize,
    /// Whether the model actually changed: `false` for skips *and* for
    /// same-way re-assertions that resolved as no-op integrations.
    pub mutated: bool,
}

/// The sample representation behind the probability vector.
#[derive(Debug, Clone)]
enum Repr {
    /// One store over the whole network.
    Monolithic(SampleStore),
    /// One independent store per conflict component.
    Sharded(ShardSet),
}

/// The probabilistic matching network: network + feedback + samples + `P`.
#[derive(Debug, Clone)]
pub struct ProbabilisticNetwork {
    network: MatchingNetwork,
    feedback: Feedback,
    repr: Repr,
    probs: Vec<f64>,
    initial_entropy: f64,
    /// The sampler configuration the network was built with — evolution
    /// ([`extend`](Self::extend) / [`retire`](Self::retire)) reuses it for
    /// shard rebuilds.
    sampler: SamplerConfig,
    /// The sharding configuration (`None` for the monolithic
    /// representation), kept for the same reason.
    sharding: Option<ShardingConfig>,
    /// Monotone mutation counter: bumped on every call that actually
    /// changes the model (integrated assertion, extend, retire) and
    /// *not* on no-ops or rejected assertions. Snapshot publishers
    /// compare generations to skip re-forking an unchanged base. Not
    /// serialized — a restored network restarts at 0.
    generation: u64,
    /// Per-shard mutation epochs for the gain cache: globally unique
    /// values from [`crate::gains::next_epoch`], re-stamped whenever the
    /// shard's state actually changes. Indexed by shard id (one entry
    /// for the monolithic representation).
    shard_epochs: Vec<u64>,
    /// The structural epoch: refreshed wholesale by extend / retire,
    /// which renumber shards. See [`crate::gains`].
    structure_epoch: u64,
    /// The shared Eq. 5 gain cache — shared across forks on purpose
    /// (epoch uniqueness makes stale hits impossible), never serialized.
    gain_cache: Arc<Mutex<GainCache>>,
}

impl ProbabilisticNetwork {
    /// Builds the probabilistic network with a monolithic sample store:
    /// samples matching instances and derives initial probabilities.
    pub fn new(network: MatchingNetwork, config: SamplerConfig) -> Self {
        let feedback = Feedback::new(network.candidate_count());
        let store = SampleStore::new(&network, &feedback, config);
        Self::finish(network, feedback, Repr::Monolithic(store), config, None)
    }

    /// Builds the probabilistic network sharded by conflict component
    /// (shard `k` is seeded `config.seed + k`; components at or below
    /// [`ShardingConfig::exact_threshold`] candidates get exact, exhausted
    /// posteriors). With `sharding.enabled == false` this is
    /// [`ProbabilisticNetwork::new`].
    pub fn new_sharded(
        network: MatchingNetwork,
        config: SamplerConfig,
        sharding: ShardingConfig,
    ) -> Self {
        if !sharding.enabled {
            return Self::new(network, config);
        }
        let feedback = Feedback::new(network.candidate_count());
        let set = ShardSet::build(network.index(), config, &sharding);
        Self::finish(network, feedback, Repr::Sharded(set), config, Some(sharding))
    }

    fn finish(
        network: MatchingNetwork,
        feedback: Feedback,
        repr: Repr,
        sampler: SamplerConfig,
        sharding: Option<ShardingConfig>,
    ) -> Self {
        let n = network.candidate_count();
        let mut probs = vec![0.0; n];
        match &repr {
            Repr::Monolithic(store) => recompute_monolithic(store, &feedback, &mut probs),
            Repr::Sharded(set) => set.write_all_probabilities(&mut probs),
        }
        let epoch = crate::gains::next_epoch();
        let shards = match &repr {
            Repr::Monolithic(_) => 1,
            Repr::Sharded(set) => set.components.count(),
        };
        let mut pn = Self {
            network,
            feedback,
            repr,
            probs,
            initial_entropy: 0.0,
            sampler,
            sharding,
            generation: 0,
            shard_epochs: vec![epoch; shards],
            structure_epoch: epoch,
            gain_cache: Arc::new(Mutex::new(GainCache::default())),
        };
        pn.initial_entropy = pn.entropy();
        pn
    }

    /// The underlying network `N`.
    pub fn network(&self) -> &MatchingNetwork {
        &self.network
    }

    /// Extracts the full serializable image of this network — see
    /// [`crate::persist`]. Only primary data is captured: the conflict
    /// index contributes its posting lists and triple table, shards their
    /// member lists, local feedback and sample state; every derived
    /// structure (dense masks, sub-indices, matrices, probabilities) is
    /// rebuilt by [`from_state`](Self::from_state).
    pub fn to_state(&self) -> crate::persist::NetworkState {
        use crate::persist::*;
        let repr = match &self.repr {
            Repr::Monolithic(store) => ReprState::Monolithic(store.to_state()),
            Repr::Sharded(set) => ReprState::Sharded {
                members: (0..set.components.count())
                    .map(|k| set.components.members(k).iter().map(|c| c.0).collect())
                    .collect(),
                shards: set
                    .shards
                    .iter()
                    .map(|s| ShardState {
                        feedback: FeedbackState::of(&s.feedback),
                        store: s.store.to_state(),
                    })
                    .collect(),
            },
        };
        let mut state = network_to_structure(&self.network, self.sampler, self.sharding);
        state.feedback = FeedbackState::of(&self.feedback);
        state.initial_entropy = self.initial_entropy;
        state.repr = repr;
        state
    }

    /// Rebuilds a network from [`to_state`](Self::to_state) output without
    /// re-sampling: catalog, graph and candidates are reconstructed in id
    /// order, the conflict index reassembled from its primary data
    /// ([`smn_constraints::ConflictIndex::from_parts`]), shard sub-indices
    /// re-derived from the partition, and the stored samples re-recorded —
    /// after which probabilities are *recomputed* through the same kernels
    /// the live path uses, making them bit-identical to the saved run.
    ///
    /// Every structural inconsistency in the input is a typed error;
    /// this never panics on untrusted (length/id-validated) state.
    pub fn from_state(state: &crate::persist::NetworkState) -> Result<Self, String> {
        use crate::persist::ReprState;
        let network = network_from_state(state)?;
        let n = network.candidate_count();
        let feedback = state.feedback.build(n)?;
        let repr = match &state.repr {
            ReprState::Monolithic(store) => {
                if store.candidate_count != n {
                    return Err(format!(
                        "store sized for {} candidates, network has {n}",
                        store.candidate_count
                    ));
                }
                Repr::Monolithic(SampleStore::from_state(store)?)
            }
            ReprState::Sharded { members, shards } => {
                if members.len() != shards.len() {
                    return Err(format!(
                        "{} component lists for {} shards",
                        members.len(),
                        shards.len()
                    ));
                }
                let mut covered = vec![false; n];
                for list in members {
                    for &c in list {
                        if c as usize >= n || covered[c as usize] {
                            return Err("component partition does not partition".into());
                        }
                        covered[c as usize] = true;
                    }
                }
                if !covered.iter().all(|&c| c) {
                    return Err("component partition does not cover all candidates".into());
                }
                let components = smn_constraints::Components::from_members(
                    n,
                    members.iter().map(|l| l.iter().map(|&c| CandidateId(c)).collect()).collect(),
                );
                let sub_indices = network.index().shard(&components);
                let shards = shards
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        let m = components.members(k).len();
                        if s.store.candidate_count != m {
                            return Err(format!(
                                "shard {k} store sized for {} of {m} members",
                                s.store.candidate_count
                            ));
                        }
                        Ok(std::sync::Arc::new(crate::shard::ShardSnapshot {
                            index: sub_indices[k].clone(),
                            feedback: s.feedback.build(m)?,
                            store: SampleStore::from_state(&s.store)?,
                        }))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Repr::Sharded(ShardSet { components: std::sync::Arc::new(components), shards })
            }
        };
        let mut probs = vec![0.0; n];
        match &repr {
            Repr::Monolithic(store) => recompute_monolithic(store, &feedback, &mut probs),
            Repr::Sharded(set) => set.write_all_probabilities(&mut probs),
        }
        let epoch = crate::gains::next_epoch();
        let shards = match &repr {
            Repr::Monolithic(_) => 1,
            Repr::Sharded(set) => set.components.count(),
        };
        Ok(Self {
            network,
            feedback,
            repr,
            probs,
            initial_entropy: state.initial_entropy,
            sampler: state.sampler,
            sharding: state.sharding,
            generation: 0,
            shard_epochs: vec![epoch; shards],
            structure_epoch: epoch,
            gain_cache: Arc::new(Mutex::new(GainCache::default())),
        })
    }

    /// The mutation generation: bumped exactly when the model actually
    /// changed (an integrated or flipped assertion, an extend, a retire) —
    /// never by no-op re-assertions or rejected events. The serving
    /// layer's snapshot publisher compares this against the generation it
    /// last published to skip redundant `fork` + `Arc` swaps.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The accumulated feedback `F`.
    pub fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    /// The distinct sampled matching instances Ω\* of the *monolithic*
    /// store. The sharded representation never materializes global
    /// samples — that is the point of factorizing — so it returns an
    /// empty slice; use
    /// [`distinct_sample_count`](ProbabilisticNetwork::distinct_sample_count)
    /// for coverage diagnostics that work for both.
    pub fn samples(&self) -> &[BitSet] {
        match &self.repr {
            Repr::Monolithic(store) => store.samples(),
            Repr::Sharded(_) => &[],
        }
    }

    /// Distinct stored instances: `|Ω*|` for the monolithic store, the sum
    /// of per-shard counts for the sharded one (whose factorized coverage
    /// is the *product* of the per-shard counts).
    pub fn distinct_sample_count(&self) -> usize {
        match &self.repr {
            Repr::Monolithic(store) => store.len(),
            Repr::Sharded(set) => set.distinct_samples(),
        }
    }

    /// Number of independent sample stores: 1 for the monolithic
    /// representation, the conflict-component count for the sharded one.
    pub fn shard_count(&self) -> usize {
        match &self.repr {
            Repr::Monolithic(_) => 1,
            Repr::Sharded(set) => set.shards.len(),
        }
    }

    /// Whether this network uses the component-sharded representation.
    pub fn is_sharded(&self) -> bool {
        matches!(self.repr, Repr::Sharded(_))
    }

    /// Whether Ω\* provably equals Ω (probabilities are exact) — for the
    /// sharded representation, whether *every* shard is exhausted.
    pub fn is_exhausted(&self) -> bool {
        match &self.repr {
            Repr::Monolithic(store) => store.is_exhausted(),
            Repr::Sharded(set) => set.is_exhausted(),
        }
    }

    /// The probability vector `P`, indexed by candidate id.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of one candidate (Eq. 2).
    pub fn probability(&self, c: CandidateId) -> f64 {
        self.probs[c.index()]
    }

    /// Network uncertainty `H(C, P)` in bits (Eq. 3). For the sharded
    /// representation this equals the sum of per-shard entropies — entropy
    /// is additive over independent components.
    pub fn entropy(&self) -> f64 {
        entropy_of(&self.probs)
    }

    /// Uncertainty normalized by the initial (pre-feedback) uncertainty;
    /// in `[0, 1]` for monotone reconciliation, 0 when fully reconciled.
    pub fn normalized_entropy(&self) -> f64 {
        if self.initial_entropy == 0.0 {
            0.0
        } else {
            self.entropy() / self.initial_entropy
        }
    }

    /// The uncertain candidates `{c | 0 < p_c < 1}` — the selection pool of
    /// Algorithm 1.
    pub fn uncertain_candidates(&self) -> Vec<CandidateId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0 && p < 1.0)
            .map(|(i, _)| CandidateId::from_index(i))
            .collect()
    }

    /// User-effort fraction `E = |F| / |C|`.
    pub fn effort(&self) -> f64 {
        self.feedback.effort(self.network.candidate_count())
    }

    /// Forks the network into an independent copy-on-write branch.
    ///
    /// The fork shares every immutable snapshot with `self` by pointer:
    /// the underlying [`MatchingNetwork`] (catalog, candidates, conflict
    /// index), the component partition and every shard snapshot (sub-index
    /// + sample matrix + cached weights). Cost is `O(#shards)` pointer
    /// copies plus the `O(|C|)` probability vector and feedback bitsets —
    /// **no sample matrix or conflict index is copied** until one side
    /// writes, and a write copies exactly the one shard it touches
    /// (`Arc::make_mut`). `Clone` has the same semantics; `fork` is the
    /// intent-revealing name the what-if / undo / multi-worker machinery
    /// uses.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Exact what-if analysis: the network uncertainty `H(C, P)` (bits)
    /// that integrating the assertion `(c, approved)` would produce,
    /// without touching `self`.
    ///
    /// Unlike the sampled split of [`conditional_entropy`](Self::conditional_entropy)
    /// — which estimates the *expected* post-assertion entropy from the
    /// Eq. 4 branch split of the current store — this runs the real
    /// integration (view maintenance, disapproval re-insertion, refill) on
    /// a throwaway [`fork`](Self::fork) and reads the entropy off it, so
    /// it is exactly the value [`assert_candidate`](Self::assert_candidate)
    /// would leave behind. The copy-on-write snapshot layer prices that at
    /// one shard copy per call.
    ///
    /// An assertion the model would reject (a contradiction of standing
    /// feedback, or an approval that conflicts with earlier approvals)
    /// leaves a real model unchanged, so its what-if uncertainty is the
    /// current entropy.
    pub fn what_if(&self, candidate: CandidateId, approved: bool) -> f64 {
        let mut branch = self.fork();
        match branch.assert_candidate(Assertion { candidate, approved }) {
            Ok(()) => branch.entropy(),
            Err(_) => self.entropy(),
        }
    }

    /// Batched what-if analysis: the post-assertion uncertainties of many
    /// hypothetical assertions at once, aligned with `queries` — each
    /// value equals the corresponding [`what_if`](Self::what_if) call (to
    /// floating-point association, within `1e-12` on realistic sizes).
    ///
    /// `what_if` prices every query at a full network fork plus a global
    /// entropy pass — `O(|C|)` per query even when the assertion touches a
    /// ten-candidate component. The batch path exploits the component
    /// factorization instead: entropy is additive over shards, so a query
    /// on candidate `c` re-evaluates only `c`'s own shard,
    /// `H' = H − H_k + H'_k`, with the current entropy computed once for
    /// the whole batch and each touched shard's standing entropy `H_k`
    /// computed once and shared across every query of that shard. The
    /// monolithic representation has no locality to exploit; it still
    /// shares one scratch probability buffer across all queries instead of
    /// forking the surrounding network per candidate.
    ///
    /// Assertions the model would reject (contradictions, inconsistent
    /// approvals) and same-way re-assertions leave a real model unchanged
    /// and evaluate to the current entropy, exactly as in `what_if`.
    pub fn what_if_batch(&self, queries: &[(CandidateId, bool)]) -> Vec<f64> {
        let h_current = self.entropy();
        match &self.repr {
            Repr::Monolithic(store) => {
                let mut scratch = Vec::new();
                queries
                    .iter()
                    .map(|&(c, approved)| {
                        if self.assertion_is_inert(c, approved) {
                            return h_current;
                        }
                        let mut feedback = self.feedback.clone();
                        feedback.assert(Assertion { candidate: c, approved });
                        let mut branch = store.clone();
                        branch.maintain(&self.network, &feedback, c, approved);
                        recompute_monolithic(&branch, &feedback, &mut scratch);
                        entropy_of(&scratch)
                    })
                    .collect()
            }
            Repr::Sharded(set) => {
                let mut out = vec![0.0; queries.len()];
                // bucket query positions by owning shard so the standing
                // per-shard entropy H_k is computed once per shard
                let mut by_shard: HashMap<usize, Vec<usize>> = HashMap::new();
                for (pos, &(c, approved)) in queries.iter().enumerate() {
                    if self.assertion_is_inert(c, approved) {
                        out[pos] = h_current;
                    } else {
                        by_shard.entry(set.components.component_of(c)).or_default().push(pos);
                    }
                }
                for (k, positions) in by_shard {
                    let members = set.components.members(k);
                    let h_k: f64 =
                        members.iter().map(|&g| binary_entropy(self.probs[g.index()])).sum();
                    for pos in positions {
                        let (c, approved) = queries[pos];
                        let lc = CandidateId::from_index(set.components.local_index(c));
                        out[pos] = (h_current - h_k + set.entropy_after(k, lc, approved)).max(0.0);
                    }
                }
                out
            }
        }
    }

    /// Whether integrating `(candidate, approved)` would leave the model
    /// untouched: a re-assertion (same way: successful no-op; other way:
    /// rejected as contradictory) or an approval that conflicts with
    /// earlier approvals. Mirrors the guard clauses of
    /// [`assert_candidate`](Self::assert_candidate).
    fn assertion_is_inert(&self, candidate: CandidateId, approved: bool) -> bool {
        self.feedback.is_asserted(candidate)
            || (approved && !self.approval_is_consistent(candidate))
    }

    /// Which shard owns `c`: its conflict-component id in the sharded
    /// representation, `0` in the monolithic one (a single store owns
    /// everything). The service-layer dispatcher uses this to spread
    /// concurrent questions across distinct shards.
    pub fn shard_of(&self, c: CandidateId) -> usize {
        match &self.repr {
            Repr::Monolithic(_) => 0,
            Repr::Sharded(set) => set.components.component_of(c),
        }
    }

    /// The candidates shard `k` owns, ascending id — every candidate for
    /// the monolithic representation (its single store owns everything).
    /// The serving layer uses this to overlay exactly the shards a
    /// session echoed answers into.
    pub fn shard_members(&self, k: usize) -> Vec<CandidateId> {
        match &self.repr {
            Repr::Monolithic(_) => {
                (0..self.network.candidate_count()).map(CandidateId::from_index).collect()
            }
            Repr::Sharded(set) => set.components.members(k).to_vec(),
        }
    }

    /// Integrates a user assertion: checks it against the standing
    /// feedback and the approval constraints, then updates the feedback,
    /// view-maintains the samples and recomputes `P` — only the owning
    /// shard in the sharded representation.
    ///
    /// Re-asserting a candidate the *same* way is a successful no-op (no
    /// maintenance, no recompute). Asserting it the *other* way, or
    /// approving a candidate that conflicts with earlier approvals,
    /// returns an [`AssertError`] and leaves the model untouched — this
    /// method never panics on any input.
    pub fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), AssertError> {
        if !self.validate_assertion(assertion)? {
            return Ok(()); // same-way re-assertion: successful no-op
        }
        let Assertion { candidate, approved } = assertion;
        let k = self.shard_of(candidate);
        self.feedback.assert(assertion);
        match &mut self.repr {
            Repr::Monolithic(store) => {
                store.maintain(&self.network, &self.feedback, candidate, approved);
                recompute_monolithic(store, &self.feedback, &mut self.probs);
            }
            Repr::Sharded(set) => set.assert(candidate, approved, &mut self.probs),
        }
        self.generation += 1;
        self.shard_epochs[k] = crate::gains::next_epoch();
        Ok(())
    }

    /// Checks an assertion against the standing feedback and the approval
    /// constraints *without touching the model*: `Ok(true)` means
    /// integrating it would mutate, `Ok(false)` means it is a same-way
    /// re-assertion (a successful no-op), and `Err` is exactly the error
    /// [`assert_candidate`](Self::assert_candidate) would return. Commit
    /// paths call this before allocating a fork or cloning a shard, so a
    /// redundant or rejected event never pays a copy-on-write.
    pub fn validate_assertion(&self, assertion: Assertion) -> Result<bool, AssertError> {
        let Assertion { candidate, approved } = assertion;
        if self.feedback.is_asserted(candidate) {
            let previously_approved = self.feedback.approved().contains(candidate);
            return if previously_approved == approved {
                Ok(false)
            } else {
                Err(AssertError::Contradictory { candidate, previously_approved })
            };
        }
        if approved && !self.approval_is_consistent(candidate) {
            // the approved set must stay consistent or Ω becomes empty
            return Err(AssertError::InconsistentApproval(candidate));
        }
        Ok(true)
    }

    /// Commits a batch of decided assertions through per-shard lanes and
    /// returns one [`CommitOutcome`] per request, in request order.
    ///
    /// Each request walks the serving ladder: integrate as requested; on
    /// rejection fall back to a disapproval; skip when even that
    /// contradicts standing feedback. Requests of the same shard apply in
    /// request order against that shard's single working copy (at most one
    /// copy-on-write per touched shard per batch, none for all-redundant
    /// lanes); disjoint shards are independent, so with
    /// [`CommitExec::Pool`] / [`CommitExec::Scoped`] the lanes run
    /// concurrently — on the pool's high-priority lane in the former case
    /// — and the result is byte-identical to [`CommitExec::Sequential`]
    /// because lanes are installed (and the mutation
    /// [`generation`](Self::generation) advanced) in ascending shard
    /// order either way. Monolithic networks have a single lane and always
    /// commit sequentially.
    pub fn commit_batch(&mut self, requests: &[Assertion], exec: CommitExec) -> Vec<CommitOutcome> {
        if requests.is_empty() {
            return Vec::new();
        }
        if !matches!(self.repr, Repr::Sharded(_)) {
            return requests.iter().map(|&req| self.commit_one(req, 0)).collect();
        }
        // bucket request positions by owning shard; BTreeMap fixes the
        // lane install order (ascending shard id) independent of exec
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (pos, req) in requests.iter().enumerate() {
            by_shard.entry(self.shard_of(req.candidate)).or_default().push(pos);
        }
        let lanes: Vec<(usize, Vec<Assertion>)> = by_shard
            .iter()
            .map(|(&k, positions)| (k, positions.iter().map(|&p| requests[p]).collect()))
            .collect();
        let Repr::Sharded(set) = &self.repr else { unreachable!() };
        type LaneResult = (Option<crate::shard::ShardSnapshot>, Vec<(bool, StepOutcome, bool)>);
        let run_lane = |(k, events): &(usize, Vec<Assertion>)| set.commit_lane(*k, events);
        let lane_results: Vec<LaneResult> = if lanes.len() <= 1 {
            lanes.iter().map(run_lane).collect()
        } else {
            match exec {
                CommitExec::Sequential => lanes.iter().map(run_lane).collect(),
                CommitExec::Pool => pool::global().run_high(
                    lanes
                        .iter()
                        .map(|lane| Box::new(move || run_lane(lane)) as pool::Task<'_, LaneResult>)
                        .collect(),
                ),
                CommitExec::Scoped => pool::run_scoped(
                    lanes
                        .iter()
                        .map(|lane| Box::new(move || run_lane(lane)) as pool::Task<'_, LaneResult>)
                        .collect(),
                ),
            }
        };
        // install lanes in ascending shard order and scatter outcomes back
        let mut out: Vec<Option<CommitOutcome>> = vec![None; requests.len()];
        for (((k, _), positions), (snapshot, results)) in
            lanes.iter().zip(by_shard.values()).zip(lane_results)
        {
            if let Some(snap) = snapshot {
                let Repr::Sharded(set) = &mut self.repr else { unreachable!() };
                set.shards[*k] = std::sync::Arc::new(snap);
                let Repr::Sharded(set) = &self.repr else { unreachable!() };
                set.write_shard_probabilities(*k, &mut self.probs);
            }
            for (&pos, &(approved, outcome, mutated)) in positions.iter().zip(&results) {
                let candidate = requests[pos].candidate;
                if mutated {
                    // mirror the lane-local assertion into the global
                    // feedback so effort / is_asserted stay coherent
                    self.feedback.assert(Assertion { candidate, approved });
                    self.generation += 1;
                    self.shard_epochs[*k] = crate::gains::next_epoch();
                }
                out[pos] = Some(CommitOutcome { candidate, approved, outcome, shard: *k, mutated });
            }
        }
        out.into_iter().map(|o| o.expect("every request routed to a lane")).collect()
    }

    /// The sequential ladder behind the monolithic [`commit_batch`]
    /// arm: validate (no fork, no clone), integrate or fall back, report.
    fn commit_one(&mut self, req: Assertion, shard: usize) -> CommitOutcome {
        let ladder = match self.validate_assertion(req) {
            Ok(m) => Some((req.approved, StepOutcome::Integrated, m)),
            Err(_) => {
                let fallback = Assertion { candidate: req.candidate, approved: false };
                match self.validate_assertion(fallback) {
                    Ok(m) => Some((false, StepOutcome::Flipped, m)),
                    Err(_) => None,
                }
            }
        };
        let (approved, outcome, mutated) =
            ladder.unwrap_or((req.approved, StepOutcome::Skipped, false));
        if mutated {
            self.assert_candidate(Assertion { candidate: req.candidate, approved })
                .expect("validated assertion integrates");
        }
        CommitOutcome { candidate: req.candidate, approved, outcome, shard, mutated }
    }

    /// Whether approving `candidate` (currently unasserted) keeps the
    /// approved set consistent. Conflicts never span components, so the
    /// sharded check runs on the owning shard only.
    fn approval_is_consistent(&self, candidate: CandidateId) -> bool {
        match &self.repr {
            Repr::Monolithic(_) => {
                self.network.index().can_add(self.feedback.approved(), candidate)
            }
            Repr::Sharded(set) => set.approval_is_consistent(candidate),
        }
    }

    /// Admits a new candidate correspondence online and returns its id
    /// (the next dense id).
    ///
    /// The network is patched incrementally:
    /// [`MatchingNetwork::extend`] grows the conflict index from the
    /// arrival's neighbourhood, and the sharded representation merges only
    /// the conflict components the arrival couples — carrying over
    /// still-consistent samples and refilling (or exactly re-enumerating)
    /// just the merged shard, while every other shard and probability is
    /// untouched. The monolithic representation has no locality to
    /// exploit; its store is refilled under the accumulated feedback.
    ///
    /// Errors (duplicate pair, non-edge, bad confidence, …) leave the
    /// model untouched.
    pub fn extend(
        &mut self,
        x: AttributeId,
        y: AttributeId,
        confidence: f64,
    ) -> Result<CandidateId, SchemaError> {
        let id = self.network.extend(x, y, confidence)?;
        self.feedback.grow();
        match &mut self.repr {
            Repr::Monolithic(store) => {
                *store =
                    SampleStore::with_index(self.network.index(), &self.feedback, self.sampler);
                recompute_monolithic(store, &self.feedback, &mut self.probs);
            }
            Repr::Sharded(set) => {
                self.probs.push(0.0);
                let sharding = self.sharding.expect("sharded repr carries its sharding config");
                set.extend(self.network.index(), self.sampler, &sharding, &mut self.probs);
            }
        }
        self.generation += 1;
        self.bump_structure();
        self.refresh_entropy_baseline();
        Ok(id)
    }

    /// Retires candidate `c` online: it leaves the candidate set (every
    /// later id shifts down by one), any assertion on it is discarded, and
    /// the model re-derives the posterior over the survivors.
    ///
    /// As with [`extend`](Self::extend) the patch is incremental: only the
    /// retired candidate's conflict component is re-extracted — split into
    /// its surviving sub-components, their samples carried over and
    /// re-maximized — while every other shard survives verbatim. An
    /// unknown id is a typed error that leaves the model untouched.
    pub fn retire(&mut self, c: CandidateId) -> Result<(), SchemaError> {
        if c.index() >= self.network.candidate_count() {
            return Err(SchemaError::UnknownCandidate(c));
        }
        self.network.retire(c)?;
        match &mut self.repr {
            Repr::Monolithic(store) => {
                self.feedback.retire(c);
                *store =
                    SampleStore::with_index(self.network.index(), &self.feedback, self.sampler);
                recompute_monolithic(store, &self.feedback, &mut self.probs);
            }
            Repr::Sharded(set) => {
                self.probs.remove(c.index());
                let sharding = self.sharding.expect("sharded repr carries its sharding config");
                set.retire(self.network.index(), c, self.sampler, &sharding, &mut self.probs);
                self.feedback.retire(c);
            }
        }
        self.generation += 1;
        self.bump_structure();
        self.refresh_entropy_baseline();
        Ok(())
    }

    /// Re-stamps the structural epoch and every shard epoch after an
    /// evolution step: extend / retire renumber conflict components, so
    /// nothing previously cached may be trusted by shard id again.
    fn bump_structure(&mut self) {
        let epoch = crate::gains::next_epoch();
        let shards = match &self.repr {
            Repr::Monolithic(_) => 1,
            Repr::Sharded(set) => set.components.count(),
        };
        self.structure_epoch = epoch;
        self.shard_epochs = vec![epoch; shards];
    }

    /// Keeps [`normalized_entropy`](Self::normalized_entropy) meaningful
    /// across evolution: the baseline stays the construction-time
    /// uncertainty, except that a network whose baseline was zero (born
    /// certain, or fully reconciled before candidates arrived) adopts the
    /// current uncertainty as its new reference.
    fn refresh_entropy_baseline(&mut self) {
        if self.initial_entropy == 0.0 {
            self.initial_entropy = self.entropy();
        }
    }

    /// Conditional network uncertainty `H(C | c, P)` (Eq. 4): the expected
    /// entropy after the user asserts `c`, estimated by splitting Ω\* on
    /// membership of `c`.
    ///
    /// For certain candidates this equals `H(C, P)` (one branch is empty),
    /// making their information gain zero. Defined — for both
    /// representations — as `H(C, P) − IG(c)` over the single
    /// `gains_within` split kernel, so the Eq. 4/5 math lives in exactly
    /// one place.
    pub fn conditional_entropy(&self, c: CandidateId) -> f64 {
        (self.entropy() - self.information_gain(c)).max(0.0)
    }

    /// Information gain `IG(c) = H(C, P) − H(C | c, P)` (Eq. 5), clamped to
    /// zero against floating-point noise.
    ///
    /// Monolithic networks run the `gains_within` kernel on the global
    /// sample matrix; sharded ones on the owning shard only — candidates
    /// outside `c`'s component are independent of it, so their
    /// co-occurrence terms contribute zero gain. When the shared gain
    /// cache already holds `c`'s shard at the current epoch the value is
    /// served from it — bit-identical by construction (the cache is
    /// filled through the same kernel) — and a cold cache is left cold:
    /// this point query never triggers a batch refresh.
    pub fn information_gain(&self, c: CandidateId) -> f64 {
        if let Some(gain) = self.warm_cached_gain(c) {
            return gain;
        }
        match &self.repr {
            Repr::Monolithic(store) => gains_within(store.matrix(), &self.probs, &[c.index()])[0],
            Repr::Sharded(_) => self.sharded_gain(c),
        }
    }

    /// Within-shard information gain of `c` — exactly Eq. 5, because
    /// cross-component co-occurrence terms cancel.
    fn sharded_gain(&self, c: CandidateId) -> f64 {
        let Repr::Sharded(set) = &self.repr else {
            unreachable!("sharded_gain on monolithic representation")
        };
        let (k, lc) = set.locate(c);
        let shard = &set.shards[k];
        let members = set.components.members(k);
        let local_probs: Vec<f64> = members.iter().map(|&g| self.probs[g.index()]).collect();
        gains_within(shard.store.matrix(), &local_probs, &[lc.index()])[0]
    }

    /// Batch information gain for a pool of candidates; gains are aligned
    /// with `pool`.
    ///
    /// Both representations run the word-parallel kernel of
    /// `gains_within` kernel: co-occurrence masses are AND+popcounts of
    /// candidate rows and branch entropies come from per-denominator
    /// lookup tables. The monolithic scan costs `O(|pool|·n·S/64)` word
    /// operations; the sharded one evaluates each candidate against its
    /// own component only — cross-component candidates are independent, so
    /// their co-occurrence terms contribute zero gain — which turns the
    /// scan into a sum of per-shard costs.
    pub fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        match &self.repr {
            Repr::Monolithic(store) => {
                let locals: Vec<usize> = pool.iter().map(|c| c.index()).collect();
                // every candidate's gain is a pure function of (matrix,
                // probs), so contiguous pool chunks evaluate independently
                // on the worker pool and concatenate in chunk order — the
                // values are identical to the sequential scan no matter how
                // the chunks are scheduled. The denominator tables are
                // memoized per worker thread from the same closed form
                // (see ENTROPY_TABLES), so they cannot affect any value.
                let threads = crate::pool::global().threads();
                let work = locals.len() * store.matrix().candidate_count();
                if threads > 1 && locals.len() >= 2 && work > 1 << 16 {
                    let chunk = locals.len().div_ceil(threads);
                    let matrix = store.matrix();
                    let probs = &self.probs;
                    let tasks: Vec<crate::pool::Task<'_, Vec<f64>>> = locals
                        .chunks(chunk)
                        .map(|part| {
                            Box::new(move || gains_within(matrix, probs, part))
                                as crate::pool::Task<'_, _>
                        })
                        .collect();
                    crate::pool::global().run(tasks).into_iter().flatten().collect()
                } else {
                    gains_within(store.matrix(), &self.probs, &locals)
                }
            }
            Repr::Sharded(set) => {
                let mut out = vec![0.0; pool.len()];
                // bucket pool positions by owning shard, then run the
                // kernel once per touched shard
                let mut by_shard: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
                for (pos, &c) in pool.iter().enumerate() {
                    let (k, lc) = set.locate(c);
                    by_shard.entry(k).or_default().push((pos, lc.index()));
                }
                let groups: Vec<(usize, Vec<(usize, usize)>)> = by_shard.into_iter().collect();
                let shard_gains = |&(k, ref entries): &(usize, Vec<(usize, usize)>)| -> Vec<f64> {
                    let shard = &set.shards[k];
                    let members = set.components.members(k);
                    let local_probs: Vec<f64> =
                        members.iter().map(|&g| self.probs[g.index()]).collect();
                    let locals: Vec<usize> = entries.iter().map(|&(_, l)| l).collect();
                    gains_within(shard.store.matrix(), &local_probs, &locals)
                };
                // each shard's scan depends only on its own matrix, so big
                // multi-shard scans fan out across the worker pool — the
                // per-shard gain vectors are identical either way and each
                // lands in its own `out` positions, so the result does not
                // depend on scheduling; small scans stay on the caller to
                // dodge the handoff cost
                let work: usize =
                    groups.iter().map(|(k, e)| e.len() * set.components.members(*k).len()).sum();
                let per_group: Vec<Vec<f64>> =
                    if groups.len() > 1 && work > 1 << 14 && crate::pool::global().threads() > 1 {
                        let shard_gains = &shard_gains;
                        let tasks: Vec<crate::pool::Task<'_, Vec<f64>>> = groups
                            .iter()
                            .map(|g| Box::new(move || shard_gains(g)) as crate::pool::Task<'_, _>)
                            .collect();
                        crate::pool::global().run(tasks)
                    } else {
                        groups.iter().map(shard_gains).collect()
                    };
                for ((_, entries), gains) in groups.iter().zip(per_group) {
                    for (&(pos, _), g) in entries.iter().zip(gains) {
                        out[pos] = g;
                    }
                }
                out
            }
        }
    }

    /// The greedy initialization of Algorithm 2: the best stored sample by
    /// size (minimal repair distance), tie-broken by log-likelihood when
    /// `use_likelihood`. Both criteria decompose over independent
    /// components, so the sharded representation composes the per-shard
    /// argmaxes into the global argmax without ever materializing global
    /// samples. `None` when no sample exists (empty network).
    pub fn greedy_seed(&self, use_likelihood: bool) -> Option<BitSet> {
        match &self.repr {
            Repr::Monolithic(store) => {
                best_sample(store.samples(), &self.probs, use_likelihood).map(|(s, _)| s.clone())
            }
            Repr::Sharded(set) => {
                if set.shards.is_empty() {
                    return None;
                }
                let mut global = BitSet::new(self.network.candidate_count());
                for (k, shard) in set.shards.iter().enumerate() {
                    let members = set.components.members(k);
                    let local_probs: Vec<f64> =
                        members.iter().map(|&g| self.probs[g.index()]).collect();
                    // a shard store is never empty (every component admits
                    // at least one matching instance); bail defensively so
                    // callers fall back to the maximize path
                    let (local_best, _) =
                        best_sample(shard.store.samples(), &local_probs, use_likelihood)?;
                    for lc in local_best.iter() {
                        global.insert(members[lc.index()]);
                    }
                }
                Some(global)
            }
        }
    }
}

/// `ln u(I) = Σ_{c∈I} ln p_c` under `probs` (`f64::MIN_POSITIVE` floors
/// zero-probability members so the sum stays finite).
pub(crate) fn log_likelihood_of(probs: &[f64], inst: &BitSet) -> f64 {
    inst.iter().map(|c| probs[c.index()].max(f64::MIN_POSITIVE).ln()).sum()
}

/// Algorithm 2's lexicographic instance ordering: smaller repair distance
/// (= larger instance) first, then larger likelihood when enabled — the
/// single definition shared by the greedy seed (both representations) and
/// the local search of [`crate::instantiate`].
pub(crate) fn better_instance(
    cand: &BitSet,
    cand_ll: f64,
    best: &BitSet,
    best_ll: f64,
    use_likelihood: bool,
) -> bool {
    match cand.count().cmp(&best.count()) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => use_likelihood && cand_ll > best_ll,
    }
}

impl GainSource for ProbabilisticNetwork {
    fn gain_cache(&self) -> &Mutex<GainCache> {
        &self.gain_cache
    }

    fn gain_structure_epoch(&self) -> u64 {
        self.structure_epoch
    }

    fn gain_shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    fn gain_shard_of(&self, c: CandidateId) -> usize {
        self.shard_of(c)
    }

    fn gain_shard_uncertain(&self, k: usize) -> Vec<CandidateId> {
        match &self.repr {
            Repr::Monolithic(_) => self.uncertain_candidates(),
            Repr::Sharded(set) => set
                .components
                .members(k)
                .iter()
                .copied()
                .filter(|&c| {
                    let p = self.probs[c.index()];
                    p > 0.0 && p < 1.0
                })
                .collect(),
        }
    }

    fn compute_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        self.information_gains(pool)
    }
}

/// Best stored sample under [`better_instance`], with its log-likelihood
/// over `probs` (which must index the same id space as the samples).
fn best_sample<'a>(
    samples: &'a [BitSet],
    probs: &[f64],
    use_likelihood: bool,
) -> Option<(&'a BitSet, f64)> {
    let mut best: Option<(&BitSet, f64)> = None;
    for s in samples {
        let ll = log_likelihood_of(probs, s);
        match &best {
            None => best = Some((s, ll)),
            Some((b, bll)) => {
                if better_instance(s, ll, b, *bll, use_likelihood) {
                    best = Some((s, ll));
                }
            }
        }
    }
    best
}

/// Recomputes `P` from a monolithic store (Eq. 2): the fraction of sampled
/// instances containing each candidate (uniform weights over the
/// discovered set; exact Eq. 1 once the store is exhausted). One popcount
/// pass per candidate row of the transposed sample matrix.
/// The structural half of [`ProbabilisticNetwork::to_state`]: schemas,
/// graph, candidates and conflict index of a bare [`MatchingNetwork`],
/// with empty feedback, a zero entropy baseline and an empty monolithic
/// store standing in for the sample representation. This is the
/// *structure-only* image the distributed mode ships to bootstrap shard
/// servers — they rebuild their owned shards from it rather than
/// receiving sample state (see [`crate::remote`]).
pub(crate) fn network_to_structure(
    network: &MatchingNetwork,
    sampler: SamplerConfig,
    sharding: Option<ShardingConfig>,
) -> crate::persist::NetworkState {
    use crate::persist::*;
    let catalog = network.catalog();
    let index = network.index();
    let n = index.candidate_count();
    NetworkState {
        schemas: catalog
            .schemas()
            .iter()
            .map(|s| SchemaState {
                name: s.name.clone(),
                attributes: s
                    .attributes
                    .iter()
                    .map(|&a| catalog.attribute(a).name.clone())
                    .collect(),
            })
            .collect(),
        graph_vertices: network.graph().vertex_count(),
        graph_edges: network.graph().edges().iter().map(|&(a, b)| (a.0, b.0)).collect(),
        candidates: network
            .candidates()
            .candidates()
            .iter()
            .map(|c| {
                let [x, y] = c.corr.endpoints();
                CandidateState { a: x.0, b: y.0, confidence: c.confidence }
            })
            .collect(),
        constraints: index.config(),
        pair_conflicts: (0..n)
            .map(|i| index.pair_conflicts(CandidateId::from_index(i)).iter().map(|c| c.0).collect())
            .collect(),
        triples: index.triples().iter().map(|t| [t[0].0, t[1].0, t[2].0]).collect(),
        feedback: FeedbackState { len: n, approved: Vec::new(), disapproved: Vec::new() },
        sampler,
        sharding,
        initial_entropy: 0.0,
        repr: ReprState::Monolithic(StoreState {
            config: sampler,
            candidate_count: n,
            exhausted: false,
            pass_epoch: 0,
            samples: Vec::new(),
            counts: Vec::new(),
        }),
    }
}

/// The structural half of [`ProbabilisticNetwork::from_state`]: rebuilds
/// the [`MatchingNetwork`] (catalog, graph, candidates, conflict index)
/// from a state image, validating every id and length. Shared with the
/// remote shard host, which reconstructs structure from a bootstrap frame
/// and then builds its owned shards itself.
pub(crate) fn network_from_state(
    state: &crate::persist::NetworkState,
) -> Result<MatchingNetwork, String> {
    use smn_schema::{CandidateSet, CatalogBuilder, InteractionGraph, SchemaId};
    let mut builder = CatalogBuilder::new();
    for s in &state.schemas {
        builder
            .add_schema_with_attributes(s.name.clone(), s.attributes.iter().cloned())
            .map_err(|e| format!("catalog: {e}"))?;
    }
    let catalog = builder.build();
    let schema_count = catalog.schema_count();
    if state.graph_vertices != schema_count {
        return Err(format!(
            "graph sized for {} vertices, catalog has {schema_count} schemas",
            state.graph_vertices
        ));
    }
    if state
        .graph_edges
        .iter()
        .any(|&(a, b)| a as usize >= schema_count || b as usize >= schema_count)
    {
        return Err("graph edge endpoint out of range".into());
    }
    let graph = InteractionGraph::from_edges(
        state.graph_vertices,
        state.graph_edges.iter().map(|&(a, b)| (SchemaId(a), SchemaId(b))),
    );
    let mut candidates = CandidateSet::new(&catalog);
    for c in &state.candidates {
        candidates
            .add(&catalog, Some(&graph), AttributeId(c.a), AttributeId(c.b), c.confidence)
            .map_err(|e| format!("candidate: {e}"))?;
    }
    let n = candidates.len();
    if state.pair_conflicts.len() != n {
        return Err(format!("{} posting lists for {n} candidates", state.pair_conflicts.len()));
    }
    if state.pair_conflicts.iter().flatten().any(|&x| x as usize >= n)
        || state.triples.iter().flatten().any(|&x| x as usize >= n)
    {
        return Err("conflict member id out of range".into());
    }
    let index = smn_constraints::ConflictIndex::from_parts(
        state.constraints,
        n,
        state.pair_conflicts.iter().map(|l| l.iter().map(|&x| CandidateId(x)).collect()).collect(),
        state
            .triples
            .iter()
            .map(|t| [CandidateId(t[0]), CandidateId(t[1]), CandidateId(t[2])])
            .collect(),
    );
    Ok(MatchingNetwork::from_parts(catalog, graph, candidates, index))
}

fn recompute_monolithic(store: &SampleStore, feedback: &Feedback, probs: &mut Vec<f64>) {
    let matrix = store.matrix();
    let n = matrix.candidate_count();
    let total = matrix.sample_count();
    probs.clear();
    if total == 0 {
        // no instance (empty network): everything unasserted is 0
        probs.resize(n, 0.0);
        for c in feedback.approved().iter() {
            probs[c.index()] = 1.0;
        }
        return;
    }
    probs.extend(
        (0..n).map(|i| matrix.membership_count(CandidateId::from_index(i)) as f64 / total as f64),
    );
}

thread_local! {
    /// Memoized `H(k/w)` tables, indexed by denominator `w`: entry `w`
    /// holds `[H(0/w), …, H(w/w)]`. Each table is a pure function of `w`
    /// alone, so memoizing across gain scans (and across networks) can
    /// never change a value — it only stops every `information_gains`
    /// call from re-deriving the same logarithms. At 400-sample stores
    /// the rebuild was ~1 ms per call, the dominant cost of the scan at
    /// small `|C|`. Thread-local so pool workers warm their own copy
    /// without synchronization; worst-case footprint is O(S²) floats.
    static ENTROPY_TABLES: std::cell::RefCell<Vec<Option<std::rc::Rc<[f64]>>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The memoized `[H(k/w); k = 0..=w]` table for denominator `w`.
fn entropy_table(w: usize) -> std::rc::Rc<[f64]> {
    ENTROPY_TABLES.with(|cell| {
        let mut tables = cell.borrow_mut();
        if tables.len() <= w {
            tables.resize(w + 1, None);
        }
        tables[w]
            .get_or_insert_with(|| (0..=w).map(|k| binary_entropy(k as f64 / w as f64)).collect())
            .clone()
    })
}

/// The batch information-gain kernel over one sample matrix (Eq. 4/5):
/// for each pool candidate `c`, split the samples on membership of `c`
/// and measure the expected entropy drop across the matrix's *uncertain*
/// rows. `probs` is aligned with the matrix rows; `pool` holds row
/// indices; the returned gains align with `pool`.
///
/// Co-occurrence masses are AND+popcounts of candidate rows, and branch
/// entropies come from per-denominator lookup tables (`O(|pool|·S)`
/// `binary_entropy` evaluations instead of `O(|pool|·n)`) — the
/// difference between seconds and hours for the 50-run
/// uncertainty-reduction experiment (Fig. 9).
pub(crate) fn gains_within(matrix: &SampleMatrix, probs: &[f64], pool: &[usize]) -> Vec<f64> {
    let n = matrix.candidate_count();
    debug_assert_eq!(probs.len(), n);
    let s_total = matrix.sample_count();
    if s_total == 0 || pool.is_empty() {
        return vec![0.0; pool.len()];
    }
    // integer membership masses (weights are uniform)
    let totals: Vec<usize> =
        (0..n).map(|i| matrix.membership_count(CandidateId::from_index(i))).collect();
    // uncertain candidates only: certain rows contribute zero entropy
    // to both branches (plus ∈ {0, w_plus} exactly)
    let uncertain: Vec<usize> = (0..n).filter(|&i| totals[i] > 0 && totals[i] < s_total).collect();
    // H over the uncertain rows — certain rows add exactly 0 bits
    let h_total: f64 = uncertain.iter().map(|&i| binary_entropy(probs[i])).sum();
    // Process pool candidates in blocks: the inner pass streams every
    // uncertain row through the cache once per *block* instead of once per
    // candidate, which cuts the scan's memory traffic by the block width.
    //
    // Per (row, candidate) pair the scan does NOT look the branch
    // entropies up — it histograms the split masses instead (`plus` and
    // `t_x − plus` land in two small per-candidate count arrays, L1-hot
    // across the whole block) and contracts each histogram against its
    // entropy table once per candidate afterwards. The entropy of a
    // branch only depends on how *often* each mass occurs, not on which
    // row produced it, so the contraction computes the same sum with
    // O(S) table reads per candidate instead of O(|uncertain|) gathers —
    // the gathers were the bottleneck of the whole scan. Each candidate's
    // value is a pure function of `(matrix, probs, ci)` (counts contract
    // in ascending-mass order), so results are independent of pool order,
    // blocking and scheduling.
    const BLOCK: usize = 8;
    let mut out = vec![0.0; pool.len()];
    let mut active: Vec<usize> = Vec::with_capacity(BLOCK); // positions into `pool`
                                                            // histogram arena: per active slot, `t_c + 1` plus-mass counters
                                                            // followed by `s_total − t_c + 1` minus-mass counters
    let mut hist: Vec<u32> = Vec::new();
    let slot_span = s_total + 2;
    for (chunk_idx, chunk) in pool.chunks(BLOCK).enumerate() {
        active.clear();
        for (j, &ci) in chunk.iter().enumerate() {
            let w_plus = totals[ci];
            // certain candidate: one branch is empty, the gain is 0
            if w_plus > 0 && w_plus < s_total {
                active.push(chunk_idx * BLOCK + j);
            }
        }
        if active.is_empty() {
            continue;
        }
        // hoist per-candidate rows, totals and arena offsets out of the
        // row loop — the inner pass must be loads, an AND+popcount and two
        // counter increments only
        let slots: Vec<(&[u64], usize, usize)> = active
            .iter()
            .enumerate()
            .map(|(slot, &pos)| {
                let ci = pool[pos];
                (matrix.row(CandidateId::from_index(ci)), totals[ci], slot * slot_span)
            })
            .collect();
        hist.clear();
        hist.resize(active.len() * slot_span, 0);
        for &x in &uncertain {
            let row_x = matrix.row(CandidateId::from_index(x));
            let t_x = totals[x];
            for &(row_c, t_c, base) in &slots {
                let plus = row_and_count(row_x, row_c);
                hist[base + plus] += 1;
                // `plus ≥ t_x + t_c − s_total`, so `t_x − plus` stays
                // within the minus-branch sub-array
                hist[base + t_c + 1 + (t_x - plus)] += 1;
            }
        }
        for (slot, &pos) in active.iter().enumerate() {
            let ci = pool[pos];
            let t_c = totals[ci];
            let base = slot * slot_span;
            let t_plus = entropy_table(t_c);
            let t_minus = entropy_table(s_total - t_c);
            let mut h_plus = 0.0f64;
            for (k, &cnt) in hist[base..base + t_c + 1].iter().enumerate() {
                if cnt != 0 {
                    h_plus += cnt as f64 * t_plus[k];
                }
            }
            let mut h_minus = 0.0f64;
            for (k, &cnt) in hist[base + t_c + 1..base + slot_span].iter().enumerate() {
                if cnt != 0 {
                    h_minus += cnt as f64 * t_minus[k];
                }
            }
            let p = probs[ci];
            out[pos] = (h_total - (p * h_plus + (1.0 - p) * h_minus)).max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    fn sampler() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 5, chains: 1 }
    }

    fn pn() -> ProbabilisticNetwork {
        ProbabilisticNetwork::new(fig1_network(), sampler())
    }

    fn sharded_pn() -> ProbabilisticNetwork {
        ProbabilisticNetwork::new_sharded(fig1_network(), sampler(), ShardingConfig::default())
    }

    #[test]
    fn warm_information_gain_matches_the_batch_path() {
        // satellite regression: once the cache is warm, the singular
        // information_gain(c) must serve the cached value, and that value
        // must stay ≡ the batch path within 1e-12 (bit-identical in fact:
        // the cache is filled through the same kernel)
        for pn in [pn(), sharded_pn()] {
            let pool = pn.uncertain_candidates();
            let fresh = pn.information_gains(&pool);
            // cold: the point query must not warm the cache by itself
            assert_eq!(pn.warm_cached_gain(pool[0]), None, "point queries leave a cold cache cold");
            let cold: Vec<f64> = pool.iter().map(|&c| pn.information_gain(c)).collect();
            pn.refresh_gain_cache();
            for (i, &c) in pool.iter().enumerate() {
                let warm = pn.information_gain(c);
                assert_eq!(
                    pn.warm_cached_gain(c),
                    Some(warm),
                    "after a refresh the cache must hold {c}"
                );
                assert!((warm - fresh[i]).abs() <= 1e-12, "warm {warm} vs batch {}", fresh[i]);
                assert_eq!(warm.to_bits(), fresh[i].to_bits(), "cache fills through the kernel");
                assert_eq!(warm.to_bits(), cold[i].to_bits(), "cold and warm point paths agree");
            }
        }
    }

    #[test]
    fn gain_cache_invalidates_per_shard_and_on_evolution() {
        let mut pn = sharded_pn();
        pn.refresh_gain_cache();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        // the cached window after the mutation must equal a fresh scan
        let pool = pn.uncertain_candidates();
        let fresh = pn.information_gains(&pool);
        let (window, gains) = pn.cached_gain_window();
        let max = fresh.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (&c, &g) in window.iter().zip(&gains) {
            let pos = pool.iter().position(|&p| p == c).expect("window ⊆ uncertain pool");
            assert_eq!(g.to_bits(), fresh[pos].to_bits());
            assert!(g >= max - 2e-12, "window holds only near-maximal gains");
        }
        // every near-maximal pool candidate is in the window
        for (i, &c) in pool.iter().enumerate() {
            if fresh[i] >= max - 2e-12 {
                assert!(window.contains(&c), "{c} (gain {}) missing from window", fresh[i]);
            }
        }
        // evolution renumbers shards: the cache must survive via the
        // structure epoch and keep matching fresh scans (fig1 is fully
        // populated, so free a pair by retirement before re-extending it)
        let freed = pn.network().corr(CandidateId(0));
        pn.retire(CandidateId(0)).unwrap();
        let pool = pn.uncertain_candidates();
        let fresh = pn.information_gains(&pool);
        let cached = pn.cached_gains(&pool);
        for (f, c) in fresh.iter().zip(&cached) {
            assert_eq!(f.to_bits(), c.to_bits(), "post-retire cache must re-derive");
        }
        pn.extend(freed.a(), freed.b(), 0.6).unwrap();
        let pool = pn.uncertain_candidates();
        let fresh = pn.information_gains(&pool);
        let cached = pn.cached_gains(&pool);
        for (f, c) in fresh.iter().zip(&cached) {
            assert_eq!(f.to_bits(), c.to_bits(), "post-extend cache must re-derive");
        }
    }

    #[test]
    fn generation_counts_only_real_mutations() {
        for mut pn in [pn(), sharded_pn()] {
            assert_eq!(pn.generation(), 0);
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            assert_eq!(pn.generation(), 1, "an integrated assertion bumps the generation");
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            assert_eq!(pn.generation(), 1, "a same-way no-op must not bump it");
            let _ = pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: false });
            assert_eq!(pn.generation(), 1, "a rejected assertion must not bump it");
            let fork = pn.fork();
            assert_eq!(fork.generation(), 1, "forks inherit the generation");
        }
    }

    #[test]
    fn commit_batch_walks_the_ladder_and_flags_mutations() {
        for mut pn in [pn(), sharded_pn()] {
            pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: false }).unwrap();
            let g = pn.generation();
            let out = pn.commit_batch(
                &[
                    Assertion { candidate: CandidateId(2), approved: true }, // fresh → integrated
                    Assertion { candidate: CandidateId(2), approved: true }, // re-assert → no-op
                    Assertion { candidate: CandidateId(4), approved: true }, // contradiction → flip-no-op
                ],
                CommitExec::Sequential,
            );
            assert_eq!(out[0].outcome, StepOutcome::Integrated);
            assert!(out[0].mutated && out[0].approved);
            assert_eq!(out[1].outcome, StepOutcome::Integrated);
            assert!(!out[1].mutated, "same-way re-assertion resolves as a no-op integration");
            assert_eq!(out[2].outcome, StepOutcome::Flipped);
            assert!(!out[2].mutated && !out[2].approved);
            assert_eq!(pn.generation(), g + 1, "exactly one event actually mutated");
            assert_eq!(pn.probability(CandidateId(2)), 1.0);
            assert_eq!(pn.probability(CandidateId(4)), 0.0);
        }
    }

    #[test]
    fn commit_batch_is_exec_invariant() {
        use crate::testutil::perturbed_network;
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let requests: Vec<Assertion> = (0..n)
            .step_by(2)
            .map(|i| Assertion { candidate: CandidateId::from_index(i), approved: i % 4 == 0 })
            .collect();
        let run = |exec: CommitExec| {
            let mut pn = ProbabilisticNetwork::new_sharded(
                net.clone(),
                sampler(),
                ShardingConfig::default(),
            );
            let out = pn.commit_batch(&requests, exec);
            (out, pn.probabilities().to_vec(), pn.generation(), pn.effort())
        };
        let sequential = run(CommitExec::Sequential);
        assert_eq!(sequential, run(CommitExec::Pool), "pool lanes diverged from sequential");
        assert_eq!(sequential, run(CommitExec::Scoped), "scoped lanes diverged from sequential");
        // and the sequential lanes agree with one-at-a-time asserts
        let mut reference =
            ProbabilisticNetwork::new_sharded(net.clone(), sampler(), ShardingConfig::default());
        for req in &requests {
            if reference.validate_assertion(*req).is_err() {
                let fallback = Assertion { candidate: req.candidate, approved: false };
                if reference.validate_assertion(fallback).is_ok() {
                    reference.assert_candidate(fallback).unwrap();
                }
            } else {
                reference.assert_candidate(*req).unwrap();
            }
        }
        assert_eq!(sequential.1, reference.probabilities(), "lanes diverged from direct asserts");
    }

    #[test]
    fn fig1_probabilities_are_exact_half() {
        let pn = pn();
        assert!(pn.is_exhausted(), "4 instances < n_min");
        for c in 0..5 {
            assert!(
                (pn.probability(CandidateId(c)) - 0.5).abs() < 1e-12,
                "p(c{c}) = {}",
                pn.probability(CandidateId(c))
            );
        }
        assert!((pn.entropy() - 5.0).abs() < 1e-12);
        assert!((pn.normalized_entropy() - 1.0).abs() < 1e-12);
        assert_eq!(pn.uncertain_candidates().len(), 5);
    }

    #[test]
    fn approval_collapses_probabilities() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        // instances containing c2: {c0,c1,c2}, {c2,c3} → p(c0)=p(c1)=0.5,
        // p(c2)=1, p(c3)=0.5, p(c4)=0
        assert_eq!(pn.probability(CandidateId(2)), 1.0);
        assert_eq!(pn.probability(CandidateId(4)), 0.0);
        assert!((pn.probability(CandidateId(0)) - 0.5).abs() < 1e-12);
        assert!((pn.entropy() - 3.0).abs() < 1e-12);
        assert!((pn.effort() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn conflicting_approval_is_rejected() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: true }).unwrap();
        let err = pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true });
        assert_eq!(err, Err(AssertError::InconsistentApproval(CandidateId(3))));
        // state unchanged by the rejected assertion
        assert_eq!(pn.probability(CandidateId(1)), 1.0);
        assert!(!pn.feedback().is_asserted(CandidateId(3)));
    }

    #[test]
    fn same_way_reassertion_is_a_true_noop() {
        for mut pn in [pn(), sharded_pn()] {
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            let snapshot = pn.probabilities().to_vec();
            let effort = pn.effort();
            // re-approving must succeed without touching the model
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            assert_eq!(pn.probabilities(), &snapshot[..]);
            assert_eq!(pn.effort(), effort, "no-op must not double-count effort");
            // same for re-disapproving a disapproved candidate
            pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: false }).unwrap();
            let snapshot = pn.probabilities().to_vec();
            pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: false }).unwrap();
            assert_eq!(pn.probabilities(), &snapshot[..]);
        }
    }

    #[test]
    fn contradictory_reassertion_errors_without_panicking() {
        for mut pn in [pn(), sharded_pn()] {
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: false }).unwrap();
            let snapshot = pn.probabilities().to_vec();
            assert_eq!(
                pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: false }),
                Err(AssertError::Contradictory {
                    candidate: CandidateId(2),
                    previously_approved: true
                })
            );
            assert_eq!(
                pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }),
                Err(AssertError::Contradictory {
                    candidate: CandidateId(0),
                    previously_approved: false
                })
            );
            // rejected flips leave the model untouched
            assert_eq!(pn.probabilities(), &snapshot[..]);
            assert!(pn.feedback().approved().contains(CandidateId(2)));
            assert!(pn.feedback().disapproved().contains(CandidateId(0)));
        }
    }

    #[test]
    fn information_gain_of_certain_candidates_is_zero() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        assert_eq!(pn.information_gain(CandidateId(2)), 0.0);
        assert_eq!(pn.information_gain(CandidateId(4)), 0.0);
        assert!(pn.information_gain(CandidateId(0)) >= 0.0);
    }

    #[test]
    fn example1_ordering_effect() {
        // The paper's Example 1: asserting the correspondence shared by the
        // closed triangles (our c0) is less informative than asserting one
        // that discriminates between them (our c2). With the two mixed
        // instances present the effect persists: IG(c2) > IG(c0)?
        // Splitting on c0: plus = {012, 034} (H+ = 4·h(0.5) = wait, within
        // plus: c1,c2 at 0.5, c3,c4 at 0.5 → H+ = 4·1? No: in {012,034}
        // p(c1)=0.5, p(c2)=0.5, p(c3)=0.5, p(c4)=0.5 → H+ = 4.
        // minus = {14, 23}: same → H− = 4? p(c1)=0.5 … H− = 4.
        // H(C|c0) = 4 (no reduction beyond c0 itself: IG = 1).
        // Splitting on c2: plus = {012, 23}: p(c0)=0.5, p(c1)=0.5,
        // p(c3)=0.5, p(c4)=0 → H+ = 3. minus = {034, 14}: p(c0)=0.5,
        // p(c1)=0.5, p(c3)=0.5, p(c4)=1 → H− = 3. H(C|c2) = 3, IG = 2.
        let pn = pn();
        let ig0 = pn.information_gain(CandidateId(0));
        let ig2 = pn.information_gain(CandidateId(2));
        assert!((ig0 - 1.0).abs() < 1e-9, "IG(c0) = {ig0}");
        assert!((ig2 - 2.0).abs() < 1e-9, "IG(c2) = {ig2}");
        assert!(ig2 > ig0);
    }

    #[test]
    fn full_reconciliation_reaches_zero_entropy() {
        let mut pn = pn();
        // approving c3 and c4 pins the selective matching {c0, c3, c4}:
        // {c3, c4} alone is not maximal (c0 closes the triangle), so the
        // only remaining instance is {c0, c3, c4}
        pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: true }).unwrap();
        assert_eq!(pn.entropy(), 0.0, "approving c3 and c4 pins everything");
        assert_eq!(pn.probability(CandidateId(0)), 1.0);
        assert_eq!(pn.probability(CandidateId(1)), 0.0);
        assert_eq!(pn.probability(CandidateId(2)), 0.0);
        assert_eq!(pn.normalized_entropy(), 0.0);
        assert_eq!(pn.uncertain_candidates().len(), 0);
    }

    #[test]
    fn batch_gains_agree_with_single_candidate_gains() {
        let fresh = pn();
        let pool = fresh.uncertain_candidates();
        let batch = fresh.information_gains(&pool);
        for (&c, &g) in pool.iter().zip(&batch) {
            let single = fresh.information_gain(c);
            assert!((g - single).abs() < 1e-9, "{c}: batch {g} vs single {single}");
        }
        // and after an assertion
        let mut asserted = pn();
        asserted.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let pool = asserted.uncertain_candidates();
        let batch = asserted.information_gains(&pool);
        for (&c, &g) in pool.iter().zip(&batch) {
            assert!((g - asserted.information_gain(c)).abs() < 1e-9);
        }
        // certain candidates report zero gain in batch mode too
        let certain = vec![CandidateId(2), CandidateId(4)];
        assert_eq!(asserted.information_gains(&certain), vec![0.0, 0.0]);
    }

    #[test]
    fn probabilities_respect_feedback_invariant() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: false }).unwrap();
        assert_eq!(pn.probability(CandidateId(0)), 1.0);
        assert_eq!(pn.probability(CandidateId(1)), 0.0);
    }

    #[test]
    fn sharded_fig1_matches_monolithic_exactly() {
        let mono = pn();
        let sharded = sharded_pn();
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 1, "fig1's conflict graph is connected");
        assert!(sharded.is_exhausted());
        assert_eq!(sharded.probabilities(), mono.probabilities());
        assert_eq!(sharded.entropy(), mono.entropy());
        let pool = mono.uncertain_candidates();
        assert_eq!(sharded.uncertain_candidates(), pool);
        let (g_mono, g_sharded) = (mono.information_gains(&pool), sharded.information_gains(&pool));
        for (a, b) in g_mono.iter().zip(&g_sharded) {
            assert!((a - b).abs() < 1e-12, "gain mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn sharded_assertions_track_monolithic() {
        let mut mono = pn();
        let mut sharded = sharded_pn();
        for (c, approved) in [(CandidateId(2), true), (CandidateId(0), false)] {
            mono.assert_candidate(Assertion { candidate: c, approved }).unwrap();
            sharded.assert_candidate(Assertion { candidate: c, approved }).unwrap();
            assert_eq!(sharded.probabilities(), mono.probabilities());
            assert_eq!(sharded.entropy(), mono.entropy());
        }
    }

    #[test]
    fn greedy_seed_is_a_largest_instance_on_both_representations() {
        for pn in [pn(), sharded_pn()] {
            let seed = pn.greedy_seed(true).expect("fig1 has samples");
            assert_eq!(seed.count(), 3, "largest fig1 instances have 3 members");
            assert!(pn.network().index().is_consistent(&seed));
        }
    }

    /// Fig. 1 without its last candidate (c4 = a0–a3).
    fn fig1_without_c4() -> crate::network::MatchingNetwork {
        use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("EoverI", ["productionDate"]).unwrap();
        b.add_schema_with_attributes("BBC", ["date"]).unwrap();
        b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(3);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(1), 0.9).unwrap();
        cs.add(&cat, Some(&g), a(1), a(2), 0.8).unwrap();
        cs.add(&cat, Some(&g), a(0), a(2), 0.8).unwrap();
        cs.add(&cat, Some(&g), a(1), a(3), 0.7).unwrap();
        crate::network::MatchingNetwork::new(
            cat,
            g,
            cs,
            smn_constraints::ConstraintConfig::default(),
        )
    }

    #[test]
    fn extend_matches_a_from_scratch_build_on_both_representations() {
        use smn_schema::AttributeId;
        let partial_mono = ProbabilisticNetwork::new(fig1_without_c4(), sampler());
        let partial_sharded = ProbabilisticNetwork::new_sharded(
            fig1_without_c4(),
            sampler(),
            ShardingConfig::default(),
        );
        for (mut evolved, fresh) in [(partial_mono, pn()), (partial_sharded, sharded_pn())] {
            let id = evolved.extend(AttributeId(0), AttributeId(3), 0.7).unwrap();
            assert_eq!(id, CandidateId(4));
            // the patched conflict index equals the full fig1 build exactly
            assert_eq!(evolved.network().index(), fresh.network().index());
            // exact (exhausted) stores: identical posteriors
            assert!(evolved.is_exhausted());
            assert_eq!(evolved.probabilities(), fresh.probabilities());
            assert_eq!(evolved.entropy(), fresh.entropy());
            let pool = fresh.uncertain_candidates();
            assert_eq!(evolved.information_gains(&pool), fresh.information_gains(&pool));
        }
    }

    #[test]
    fn retire_matches_a_from_scratch_build_on_both_representations() {
        let fresh_mono = ProbabilisticNetwork::new(fig1_without_c4(), sampler());
        let fresh_sharded = ProbabilisticNetwork::new_sharded(
            fig1_without_c4(),
            sampler(),
            ShardingConfig::default(),
        );
        for (mut evolved, fresh) in [(pn(), fresh_mono), (sharded_pn(), fresh_sharded)] {
            evolved.retire(CandidateId(4)).unwrap();
            assert_eq!(evolved.network().candidate_count(), 4);
            assert_eq!(evolved.network().index(), fresh.network().index());
            assert!(evolved.is_exhausted());
            assert_eq!(evolved.probabilities(), fresh.probabilities());
            assert_eq!(evolved.entropy(), fresh.entropy());
        }
    }

    #[test]
    fn retire_drops_assertions_and_shifts_ids() {
        for mut pn in [pn(), sharded_pn()] {
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: false }).unwrap();
            // retiring c2 discards its approval; c4's disapproval becomes c3's
            pn.retire(CandidateId(2)).unwrap();
            assert_eq!(pn.network().candidate_count(), 4);
            assert!(pn.feedback().approved().is_empty());
            assert!(pn.feedback().disapproved().contains(CandidateId(3)));
            assert_eq!(pn.probability(CandidateId(3)), 0.0);
            // the survivors keep a well-formed posterior
            for &p in pn.probabilities() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn evolution_errors_leave_the_model_untouched() {
        use smn_schema::AttributeId;
        for mut pn in [pn(), sharded_pn()] {
            let snapshot = pn.probabilities().to_vec();
            // duplicate pair
            assert!(pn.extend(AttributeId(0), AttributeId(1), 0.5).is_err());
            // intra-schema pair
            assert!(pn.extend(AttributeId(2), AttributeId(3), 0.5).is_err());
            // unknown retiree
            assert_eq!(
                pn.retire(CandidateId(9)),
                Err(SchemaError::UnknownCandidate(CandidateId(9)))
            );
            assert_eq!(pn.probabilities(), &snapshot[..]);
            assert_eq!(pn.network().candidate_count(), 5);
        }
    }

    /// Two disjoint one-to-one conflict clusters over a 2-schema catalog:
    /// `{c0 = a0–b0, c1 = a0–b1}` and `{c2 = a1–b2, c3 = a1–b3}`.
    fn two_cluster_network() -> crate::network::MatchingNetwork {
        use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a0", "a1"]).unwrap();
        b.add_schema_with_attributes("B", ["b0", "b1", "b2", "b3"]).unwrap();
        let cat = b.build();
        let g = InteractionGraph::complete(2);
        let mut cs = CandidateSet::new(&cat);
        let a = AttributeId;
        cs.add(&cat, Some(&g), a(0), a(2), 0.9).unwrap(); // c0
        cs.add(&cat, Some(&g), a(0), a(3), 0.8).unwrap(); // c1
        cs.add(&cat, Some(&g), a(1), a(4), 0.8).unwrap(); // c2
        cs.add(&cat, Some(&g), a(1), a(5), 0.7).unwrap(); // c3
        crate::network::MatchingNetwork::new(
            cat,
            g,
            cs,
            smn_constraints::ConstraintConfig::default(),
        )
    }

    #[test]
    fn sharded_assert_errors_are_typed_and_leave_the_model_untouched() {
        // a *multi-shard* network (fig1 is a single component, so the PR 3
        // regression tests exercised the shard-local error paths only
        // through the trivial one-shard case)
        let mut pn = ProbabilisticNetwork::new_sharded(
            two_cluster_network(),
            sampler(),
            ShardingConfig::default(),
        );
        assert_eq!(pn.shard_count(), 2);
        // shard-local InconsistentApproval: c0 and c1 conflict inside the
        // first cluster
        pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
        let snapshot = pn.probabilities().to_vec();
        assert_eq!(
            pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: true }),
            Err(AssertError::InconsistentApproval(CandidateId(1)))
        );
        assert_eq!(pn.probabilities(), &snapshot[..]);
        assert!(!pn.feedback().is_asserted(CandidateId(1)));
        // an approval in the *other* shard is unaffected by shard-1 state
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        assert_eq!(pn.probability(CandidateId(2)), 1.0);
        // same-way re-assertions are true no-ops on both shards
        let snapshot = pn.probabilities().to_vec();
        pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        assert_eq!(pn.probabilities(), &snapshot[..]);
        assert!((pn.effort() - 0.5).abs() < 1e-12, "no-ops must not double-count effort");
        // contradictory flips are typed errors with the standing verdict
        assert_eq!(
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: false }),
            Err(AssertError::Contradictory {
                candidate: CandidateId(2),
                previously_approved: true
            })
        );
        assert_eq!(pn.probabilities(), &snapshot[..]);
    }

    #[test]
    fn fork_is_independent_and_copy_on_write() {
        for base in [pn(), sharded_pn()] {
            let branch = base.fork();
            assert_eq!(branch.probabilities(), base.probabilities());
            assert_eq!(branch.entropy(), base.entropy());
            // assert on the fork: the base must not move
            let mut branch = branch;
            let snapshot = base.probabilities().to_vec();
            branch
                .assert_candidate(Assertion { candidate: CandidateId(2), approved: true })
                .unwrap();
            assert_eq!(base.probabilities(), &snapshot[..]);
            assert_eq!(branch.probability(CandidateId(2)), 1.0);
            // and the other way around
            let mut base = base;
            let branch_snapshot = branch.probabilities().to_vec();
            base.assert_candidate(Assertion { candidate: CandidateId(0), approved: false })
                .unwrap();
            assert_eq!(branch.probabilities(), &branch_snapshot[..]);
        }
    }

    #[test]
    fn fork_of_a_multi_shard_network_copy_on_writes_one_shard() {
        let base = ProbabilisticNetwork::new_sharded(
            two_cluster_network(),
            sampler(),
            ShardingConfig::default(),
        );
        assert_eq!(base.shard_count(), 2);
        assert_eq!(base.shard_of(CandidateId(0)), base.shard_of(CandidateId(1)));
        assert_ne!(base.shard_of(CandidateId(0)), base.shard_of(CandidateId(2)));
        let mut branch = base.fork();
        branch.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
        // the untouched shard's snapshot is still pointer-shared
        let (Repr::Sharded(a), Repr::Sharded(b)) = (&base.repr, &branch.repr) else {
            unreachable!("both sharded")
        };
        let k_written = base.shard_of(CandidateId(0));
        let k_shared = 1 - k_written;
        assert!(
            std::sync::Arc::ptr_eq(&a.shards[k_shared], &b.shards[k_shared]),
            "foreign shard must stay shared after a fork write"
        );
        assert!(
            !std::sync::Arc::ptr_eq(&a.shards[k_written], &b.shards[k_written]),
            "written shard must have been copy-on-written"
        );
        // the sub-index inside the copied shard is still the same allocation
        assert!(std::sync::Arc::ptr_eq(&a.shards[k_written].index, &b.shards[k_written].index));
    }

    #[test]
    fn what_if_equals_fork_assert_entropy_and_leaves_self_untouched() {
        for base in [pn(), sharded_pn()] {
            let snapshot = base.probabilities().to_vec();
            for c in (0..5).map(CandidateId::from_index) {
                for approved in [true, false] {
                    let predicted = base.what_if(c, approved);
                    let mut replay = base.fork();
                    let expected =
                        match replay.assert_candidate(Assertion { candidate: c, approved }) {
                            Ok(()) => replay.entropy(),
                            Err(_) => base.entropy(),
                        };
                    assert!(
                        (predicted - expected).abs() < 1e-12,
                        "what_if({c}, {approved}) = {predicted} vs {expected}"
                    );
                }
            }
            assert_eq!(base.probabilities(), &snapshot[..], "what_if must not mutate");
            assert!(base.feedback().is_empty());
        }
    }

    #[test]
    fn what_if_of_a_rejected_assertion_is_the_current_entropy() {
        let mut base = pn();
        base.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let h = base.entropy();
        // flipping the approved c2 is contradictory: the model would
        // reject it, so the what-if entropy is the standing uncertainty
        assert_eq!(base.what_if(CandidateId(2), false), h);
    }

    #[test]
    fn what_if_batch_matches_per_candidate_what_if() {
        for mut base in [pn(), sharded_pn()] {
            // stand some feedback up so the batch contains every inert
            // flavour: same-way re-assertion, contradiction, inconsistent
            // approval — alongside live queries
            base.assert_candidate(Assertion { candidate: CandidateId(1), approved: true }).unwrap();
            let snapshot = base.probabilities().to_vec();
            let queries: Vec<(CandidateId, bool)> =
                (0..5).map(CandidateId::from_index).flat_map(|c| [(c, true), (c, false)]).collect();
            let batch = base.what_if_batch(&queries);
            for (&(c, approved), &got) in queries.iter().zip(&batch) {
                let expected = base.what_if(c, approved);
                assert!(
                    (got - expected).abs() < 1e-12,
                    "what_if_batch({c}, {approved}) = {got} vs what_if = {expected}"
                );
            }
            assert_eq!(base.probabilities(), &snapshot[..], "what_if_batch must not mutate");
        }
    }

    #[test]
    fn what_if_batch_agrees_across_representations_on_exhausted_stores() {
        // fig1's components are tiny, so both representations hold the
        // exact posterior; the hypothetical entropies must agree too
        let mono = pn();
        let shard = sharded_pn();
        let queries: Vec<(CandidateId, bool)> =
            (0..5).map(CandidateId::from_index).flat_map(|c| [(c, true), (c, false)]).collect();
        for (m, s) in mono.what_if_batch(&queries).iter().zip(shard.what_if_batch(&queries)) {
            assert!((m - s).abs() < 1e-12, "monolithic {m} vs sharded {s}");
        }
    }

    #[test]
    fn what_if_approval_on_exhausted_store_matches_the_eq4_plus_branch() {
        // on an exhausted store an approval's view maintenance keeps
        // exactly the instances containing the candidate — the Eq. 4
        // plus-branch — so the fork-measured entropy must equal the
        // entropy of that branch computed independently from the samples
        let base = pn();
        assert!(base.is_exhausted());
        for c in base.uncertain_candidates() {
            let plus: Vec<_> = base.samples().iter().filter(|s| s.contains(c)).cloned().collect();
            let n = base.network().candidate_count();
            let branch_probs: Vec<f64> = (0..n)
                .map(CandidateId::from_index)
                .map(|x| plus.iter().filter(|s| s.contains(x)).count() as f64 / plus.len() as f64)
                .collect();
            let h_plus = crate::entropy::entropy_of(&branch_probs);
            let measured = base.what_if(c, true);
            assert!(
                (measured - h_plus).abs() < 1e-12,
                "{c}: what_if {measured} vs plus-branch entropy {h_plus}"
            );
        }
    }

    #[test]
    fn arrival_coupling_two_components_merges_their_shards_and_retirement_splits() {
        use smn_schema::AttributeId;
        let mut pn = ProbabilisticNetwork::new_sharded(
            two_cluster_network(),
            sampler(),
            ShardingConfig::default(),
        );
        assert_eq!(pn.shard_count(), 2);
        let before = pn.probabilities().to_vec();
        assert_eq!(before, vec![0.5; 4]);
        // c4 = a1–b0 conflicts with c0 (shared b0) and with c2, c3 (shared
        // a1): the arrival couples both clusters into one shard
        let id = pn.extend(AttributeId(1), AttributeId(2), 0.6).unwrap();
        assert_eq!(pn.shard_count(), 1);
        // differential: the merged posterior equals a from-scratch build
        let fresh = ProbabilisticNetwork::new_sharded(
            pn.network().clone(),
            sampler(),
            ShardingConfig::default(),
        );
        assert_eq!(pn.probabilities(), fresh.probabilities());
        // instances: {c0,c2},{c0,c3},{c1,c2},{c1,c3},{c1,c4} → p(c4) = 1/5
        assert!((pn.probability(id) - 0.2).abs() < 1e-12);
        // retiring the bridge splits the shard back into the two clusters
        pn.retire(id).unwrap();
        assert_eq!(pn.shard_count(), 2);
        assert_eq!(pn.probabilities(), &before[..]);
    }
}
