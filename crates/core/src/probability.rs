//! The probabilistic matching network `⟨N, P⟩` (§III).
//!
//! [`ProbabilisticNetwork`] is the single mutable state of reconciliation:
//! it owns the network, the accumulated feedback, the view-maintained
//! sample store and the derived probabilities. Every user assertion flows
//! through [`ProbabilisticNetwork::assert_candidate`], which updates all
//! of them consistently — the probabilistic model "acts as a black-box …
//! it contains all the information given by matchers and user assertions".

use crate::entropy::{binary_entropy, entropy_of};
use crate::feedback::{Assertion, Feedback};
use crate::network::MatchingNetwork;
use crate::sampling::{row_and_count, SampleStore, SamplerConfig};
use smn_constraints::BitSet;
use smn_schema::CandidateId;
use std::fmt;

/// Error raised when an approval contradicts earlier approvals under the
/// integrity constraints — no matching instance can contain both, so the
/// probabilistic model would be empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InconsistentApproval(pub CandidateId);

impl fmt::Display for InconsistentApproval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "approving {} contradicts earlier approvals under the constraints", self.0)
    }
}

impl std::error::Error for InconsistentApproval {}

/// The probabilistic matching network: network + feedback + samples + `P`.
#[derive(Debug, Clone)]
pub struct ProbabilisticNetwork {
    network: MatchingNetwork,
    feedback: Feedback,
    store: SampleStore,
    probs: Vec<f64>,
    initial_entropy: f64,
}

impl ProbabilisticNetwork {
    /// Builds the probabilistic network: samples matching instances and
    /// derives initial probabilities.
    pub fn new(network: MatchingNetwork, config: SamplerConfig) -> Self {
        let feedback = Feedback::new(network.candidate_count());
        let store = SampleStore::new(&network, &feedback, config);
        let mut pn = Self { network, feedback, store, probs: Vec::new(), initial_entropy: 0.0 };
        pn.recompute_probabilities();
        pn.initial_entropy = pn.entropy();
        pn
    }

    /// The underlying network `N`.
    pub fn network(&self) -> &MatchingNetwork {
        &self.network
    }

    /// The accumulated feedback `F`.
    pub fn feedback(&self) -> &Feedback {
        &self.feedback
    }

    /// The distinct sampled matching instances Ω\*.
    pub fn samples(&self) -> &[BitSet] {
        self.store.samples()
    }

    /// Whether Ω\* provably equals Ω (probabilities are exact).
    pub fn is_exhausted(&self) -> bool {
        self.store.is_exhausted()
    }

    /// The probability vector `P`, indexed by candidate id.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of one candidate (Eq. 2).
    pub fn probability(&self, c: CandidateId) -> f64 {
        self.probs[c.index()]
    }

    /// Network uncertainty `H(C, P)` in bits (Eq. 3).
    pub fn entropy(&self) -> f64 {
        entropy_of(&self.probs)
    }

    /// Uncertainty normalized by the initial (pre-feedback) uncertainty;
    /// in `[0, 1]` for monotone reconciliation, 0 when fully reconciled.
    pub fn normalized_entropy(&self) -> f64 {
        if self.initial_entropy == 0.0 {
            0.0
        } else {
            self.entropy() / self.initial_entropy
        }
    }

    /// The uncertain candidates `{c | 0 < p_c < 1}` — the selection pool of
    /// Algorithm 1.
    pub fn uncertain_candidates(&self) -> Vec<CandidateId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0 && p < 1.0)
            .map(|(i, _)| CandidateId::from_index(i))
            .collect()
    }

    /// User-effort fraction `E = |F| / |C|`.
    pub fn effort(&self) -> f64 {
        self.feedback.effort(self.network.candidate_count())
    }

    /// Integrates a user assertion: checks approval consistency, updates
    /// the feedback, view-maintains the samples and recomputes `P`.
    pub fn assert_candidate(&mut self, assertion: Assertion) -> Result<(), InconsistentApproval> {
        let Assertion { candidate, approved } = assertion;
        if self.feedback.is_asserted(candidate) {
            // idempotent re-assertion is a no-op; contradiction panics in
            // Feedback::assert below, which we pre-empt here for approvals
        }
        if approved {
            // the approved set must stay consistent or Ω becomes empty
            let mut approved_set = self.feedback.approved().clone();
            if !approved_set.contains(candidate) {
                if !self.network.index().can_add(&approved_set, candidate) {
                    return Err(InconsistentApproval(candidate));
                }
                approved_set.insert(candidate);
            }
        }
        self.feedback.assert(assertion);
        self.store.maintain(&self.network, &self.feedback, candidate, approved);
        self.recompute_probabilities();
        Ok(())
    }

    /// Recomputes `P` from the sample store (Eq. 2): the fraction of
    /// sampled instances containing each candidate (uniform weights over
    /// the discovered set; exact Eq. 1 once the store is exhausted).
    ///
    /// One popcount pass per candidate row of the transposed sample
    /// matrix — no per-instance membership scan.
    fn recompute_probabilities(&mut self) {
        let n = self.network.candidate_count();
        let matrix = self.store.matrix();
        let total = matrix.sample_count();
        self.probs.clear();
        if total == 0 {
            // no instance (empty network): everything unasserted is 0
            self.probs.resize(n, 0.0);
            for c in self.feedback.approved().iter() {
                self.probs[c.index()] = 1.0;
            }
            return;
        }
        self.probs
            .extend((0..n).map(|i| {
                matrix.membership_count(CandidateId::from_index(i)) as f64 / total as f64
            }));
    }

    /// Conditional network uncertainty `H(C | c, P)` (Eq. 4): the expected
    /// entropy after the user asserts `c`, estimated by splitting Ω\* on
    /// membership of `c`.
    ///
    /// For certain candidates this equals `H(C, P)` (one branch is empty),
    /// making their information gain zero.
    pub fn conditional_entropy(&self, c: CandidateId) -> f64 {
        let p = self.probability(c);
        if p <= 0.0 || p >= 1.0 {
            return self.entropy();
        }
        let n = self.network.candidate_count();
        let matrix = self.store.matrix();
        let s_total = matrix.sample_count();
        let row_c = matrix.row(c);
        let w_plus = matrix.membership_count(c);
        let w_minus = s_total - w_plus;
        debug_assert!(w_plus > 0 && w_minus > 0);
        let (mut h_plus, mut h_minus) = (0.0, 0.0);
        for i in 0..n {
            let x = CandidateId::from_index(i);
            let total_x = matrix.membership_count(x);
            if total_x == 0 || total_x == s_total {
                continue; // certain candidate: both branch entropies are 0
            }
            let plus = row_and_count(matrix.row(x), row_c);
            let minus = total_x - plus;
            h_plus += binary_entropy(plus as f64 / w_plus as f64);
            h_minus += binary_entropy(minus as f64 / w_minus as f64);
        }
        p * h_plus + (1.0 - p) * h_minus
    }

    /// Information gain `IG(c) = H(C, P) − H(C | c, P)` (Eq. 5), clamped to
    /// zero against floating-point noise.
    pub fn information_gain(&self, c: CandidateId) -> f64 {
        (self.entropy() - self.conditional_entropy(c)).max(0.0)
    }

    /// Batch information gain for a pool of candidates.
    ///
    /// Works entirely on the transposed sample matrix: co-occurrence masses
    /// are AND+popcounts of candidate rows (cost `O(|pool|·n·S/64)` word
    /// operations instead of the former `O(S·k̄²)` element scan), and the
    /// branch entropies come from per-denominator lookup tables
    /// (`O(|pool|·S)` `binary_entropy` evaluations instead of
    /// `O(|pool|·n)`) — the difference between seconds and hours for the
    /// 50-run uncertainty-reduction experiment (Fig. 9). Returns gains
    /// aligned with `pool`.
    pub fn information_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        let n = self.network.candidate_count();
        let matrix = self.store.matrix();
        let s_total = matrix.sample_count();
        if s_total == 0 || pool.is_empty() {
            return vec![0.0; pool.len()];
        }
        // integer membership masses (weights are uniform)
        let totals: Vec<usize> =
            (0..n).map(|i| matrix.membership_count(CandidateId::from_index(i))).collect();
        // uncertain candidates only: certain rows contribute zero entropy
        // to both branches (plus ∈ {0, w_plus} exactly)
        let uncertain: Vec<usize> =
            (0..n).filter(|&i| totals[i] > 0 && totals[i] < s_total).collect();
        let h_total = self.entropy();
        // entropy_table[w][k] = H(k/w), built once per distinct denominator
        let mut entropy_tables: Vec<Option<Vec<f64>>> = vec![None; s_total + 1];
        let table = |w: usize, tables: &mut Vec<Option<Vec<f64>>>| {
            if tables[w].is_none() {
                tables[w] = Some((0..=w).map(|k| binary_entropy(k as f64 / w as f64)).collect());
            }
        };
        pool.iter()
            .map(|&c| {
                let w_plus = totals[c.index()];
                let w_minus = s_total - w_plus;
                if w_plus == 0 || w_minus == 0 {
                    return 0.0; // certain candidate: one branch is empty
                }
                table(w_plus, &mut entropy_tables);
                table(w_minus, &mut entropy_tables);
                let t_plus = entropy_tables[w_plus].as_deref().expect("built");
                let t_minus = entropy_tables[w_minus].as_deref().expect("built");
                let row_c = matrix.row(c);
                let (mut h_plus, mut h_minus) = (0.0, 0.0);
                for &x in &uncertain {
                    let plus = row_and_count(matrix.row(CandidateId::from_index(x)), row_c);
                    let minus = totals[x] - plus;
                    h_plus += t_plus[plus];
                    h_minus += t_minus[minus];
                }
                let p = self.probs[c.index()];
                (h_total - (p * h_plus + (1.0 - p) * h_minus)).max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    fn pn() -> ProbabilisticNetwork {
        ProbabilisticNetwork::new(
            fig1_network(),
            SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 3,
                n_min: 50,
                seed: 5,
                chains: 1,
            },
        )
    }

    #[test]
    fn fig1_probabilities_are_exact_half() {
        let pn = pn();
        assert!(pn.is_exhausted(), "4 instances < n_min");
        for c in 0..5 {
            assert!(
                (pn.probability(CandidateId(c)) - 0.5).abs() < 1e-12,
                "p(c{c}) = {}",
                pn.probability(CandidateId(c))
            );
        }
        assert!((pn.entropy() - 5.0).abs() < 1e-12);
        assert!((pn.normalized_entropy() - 1.0).abs() < 1e-12);
        assert_eq!(pn.uncertain_candidates().len(), 5);
    }

    #[test]
    fn approval_collapses_probabilities() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        // instances containing c2: {c0,c1,c2}, {c2,c3} → p(c0)=p(c1)=0.5,
        // p(c2)=1, p(c3)=0.5, p(c4)=0
        assert_eq!(pn.probability(CandidateId(2)), 1.0);
        assert_eq!(pn.probability(CandidateId(4)), 0.0);
        assert!((pn.probability(CandidateId(0)) - 0.5).abs() < 1e-12);
        assert!((pn.entropy() - 3.0).abs() < 1e-12);
        assert!((pn.effort() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn conflicting_approval_is_rejected() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: true }).unwrap();
        let err = pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true });
        assert_eq!(err, Err(InconsistentApproval(CandidateId(3))));
        // state unchanged by the rejected assertion
        assert_eq!(pn.probability(CandidateId(1)), 1.0);
        assert!(!pn.feedback().is_asserted(CandidateId(3)));
    }

    #[test]
    fn information_gain_of_certain_candidates_is_zero() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        assert_eq!(pn.information_gain(CandidateId(2)), 0.0);
        assert_eq!(pn.information_gain(CandidateId(4)), 0.0);
        assert!(pn.information_gain(CandidateId(0)) >= 0.0);
    }

    #[test]
    fn example1_ordering_effect() {
        // The paper's Example 1: asserting the correspondence shared by the
        // closed triangles (our c0) is less informative than asserting one
        // that discriminates between them (our c2). With the two mixed
        // instances present the effect persists: IG(c2) > IG(c0)?
        // Splitting on c0: plus = {012, 034} (H+ = 4·h(0.5) = wait, within
        // plus: c1,c2 at 0.5, c3,c4 at 0.5 → H+ = 4·1? No: in {012,034}
        // p(c1)=0.5, p(c2)=0.5, p(c3)=0.5, p(c4)=0.5 → H+ = 4.
        // minus = {14, 23}: same → H− = 4? p(c1)=0.5 … H− = 4.
        // H(C|c0) = 4 (no reduction beyond c0 itself: IG = 1).
        // Splitting on c2: plus = {012, 23}: p(c0)=0.5, p(c1)=0.5,
        // p(c3)=0.5, p(c4)=0 → H+ = 3. minus = {034, 14}: p(c0)=0.5,
        // p(c1)=0.5, p(c3)=0.5, p(c4)=1 → H− = 3. H(C|c2) = 3, IG = 2.
        let pn = pn();
        let ig0 = pn.information_gain(CandidateId(0));
        let ig2 = pn.information_gain(CandidateId(2));
        assert!((ig0 - 1.0).abs() < 1e-9, "IG(c0) = {ig0}");
        assert!((ig2 - 2.0).abs() < 1e-9, "IG(c2) = {ig2}");
        assert!(ig2 > ig0);
    }

    #[test]
    fn full_reconciliation_reaches_zero_entropy() {
        let mut pn = pn();
        // approving c3 and c4 pins the selective matching {c0, c3, c4}:
        // {c3, c4} alone is not maximal (c0 closes the triangle), so the
        // only remaining instance is {c0, c3, c4}
        pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: true }).unwrap();
        assert_eq!(pn.entropy(), 0.0, "approving c3 and c4 pins everything");
        assert_eq!(pn.probability(CandidateId(0)), 1.0);
        assert_eq!(pn.probability(CandidateId(1)), 0.0);
        assert_eq!(pn.probability(CandidateId(2)), 0.0);
        assert_eq!(pn.normalized_entropy(), 0.0);
        assert_eq!(pn.uncertain_candidates().len(), 0);
    }

    #[test]
    fn batch_gains_agree_with_single_candidate_gains() {
        let fresh = pn();
        let pool = fresh.uncertain_candidates();
        let batch = fresh.information_gains(&pool);
        for (&c, &g) in pool.iter().zip(&batch) {
            let single = fresh.information_gain(c);
            assert!((g - single).abs() < 1e-9, "{c}: batch {g} vs single {single}");
        }
        // and after an assertion
        let mut asserted = pn();
        asserted.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let pool = asserted.uncertain_candidates();
        let batch = asserted.information_gains(&pool);
        for (&c, &g) in pool.iter().zip(&batch) {
            assert!((g - asserted.information_gain(c)).abs() < 1e-9);
        }
        // certain candidates report zero gain in batch mode too
        let certain = vec![CandidateId(2), CandidateId(4)];
        assert_eq!(asserted.information_gains(&certain), vec![0.0, 0.0]);
    }

    #[test]
    fn probabilities_respect_feedback_invariant() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(1), approved: false }).unwrap();
        assert_eq!(pn.probability(CandidateId(0)), 1.0);
        assert_eq!(pn.probability(CandidateId(1)), 0.0);
    }
}
