//! The cross-round information-gain cache behind Eq. 5 question
//! selection.
//!
//! Every selection step of the pay-as-you-go loop is an argmax of
//! information gain over the uncertain pool, and a fresh scan prices
//! that at `O(|C|)` kernel work per question. The component
//! factorization (PR 3) proves more: a gain is a pure function of the
//! owning shard's sample matrix and probabilities, so an assertion
//! leaves every *other* shard's gains bit-identical. This module turns
//! that theorem into an incremental cache:
//!
//! * the network stamps each shard with a **mutation epoch** — a
//!   globally unique `u64` drawn from one process-wide counter, bumped
//!   whenever the shard's state actually changes (integrated assertion,
//!   commit-lane install) and reset wholesale on structural evolution
//!   (extend / retire, which renumber shards);
//! * [`GainCache`] holds, per shard, the uncertain members with their
//!   gains and the shard maximum, keyed by the epoch they were computed
//!   at;
//! * [`GainSource::refresh_gain_cache`] recomputes **only the dirty
//!   shards** (epoch mismatch) through the very same batch-gain kernel a
//!   fresh scan would use, so cached values are bit-identical to a fresh
//!   scan by construction;
//! * [`GainSource::cached_gain_window`] then materializes just the
//!   argmax *window* — every candidate within the selection kernel's
//!   tie tolerance of the global maximum — in ascending id order.
//!
//! Feeding that window to [`scored_argmax`](crate::selection::scored_argmax)
//! is provably equivalent to feeding it the full pool: the kernel's
//! running best only ever clears on a score more than `1e-12` above it,
//! so its final tie set is contained in
//! `{c | gain(c) ≥ max − 2·1e-12}` — exactly the window — and
//! filtering a pool to any order-preserving superset of the final tie
//! set that still contains the last "clearing" element reproduces the
//! identical tie set, best score and single RNG draw. Selection through
//! the cache therefore replays a fresh-scan selection **trace for
//! trace**, RNG stream included; the differential and property suites
//! certify exactly that.
//!
//! Epoch uniqueness is what makes sharing safe: the cache lives behind
//! an `Arc<Mutex<_>>` *shared by forks* (cheap `fork()` must not deep-
//! copy it), and because two diverged forks can never mint the same
//! epoch for the same shard, a hit is always a value computed against
//! precisely the reader's state — including a fork restored by
//! [`Session::undo`](crate::Session), whose old epochs simply re-match
//! the entries cached before the undone step. Epochs only ever decide
//! *hit or miss*, never a value, so determinism is unconditional.

use crate::selection::TIE_EPSILON;
use smn_schema::CandidateId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide epoch source. Starts at 1 so the default (empty) cache
/// epoch 0 can never match a live shard.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Draws a globally unique mutation epoch. Relaxed ordering suffices:
/// uniqueness is all the cache needs, cross-thread visibility of the
/// stamped state travels with the network itself.
pub fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// One shard's cached gains: the uncertain members (ascending id) with
/// their Eq. 5 gains, the shard maximum, and the epoch the values were
/// computed at (`0` = never filled).
#[derive(Debug, Clone, Default)]
struct ShardGains {
    epoch: u64,
    ids: Vec<CandidateId>,
    gains: Vec<f64>,
    max_gain: f64,
}

/// The per-network gain cache; see the module docs for the contract.
/// Shared across forks behind `Arc<Mutex<_>>` — epoch uniqueness makes
/// stale reads impossible, the mutex makes concurrent refreshes safe.
#[derive(Debug, Default)]
pub struct GainCache {
    /// The structure epoch the shard vector below belongs to (`0` =
    /// never filled). Evolution renumbers shards, so a mismatch drops
    /// everything.
    structure_epoch: u64,
    shards: Vec<ShardGains>,
}

impl GainCache {
    fn lookup(&self, k: usize, epoch: u64, c: CandidateId) -> Option<f64> {
        let s = self.shards.get(k)?;
        if s.epoch != epoch {
            return None;
        }
        s.ids.binary_search(&c).ok().map(|j| s.gains[j])
    }
}

/// Recovers the guarded value even if a panicking holder poisoned the
/// lock — the cache holds only derived data, always safe to reuse or
/// recompute.
fn lock(cache: &Mutex<GainCache>) -> std::sync::MutexGuard<'_, GainCache> {
    cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A model that can price Eq. 5 gains incrementally.
///
/// Implementors ([`ProbabilisticNetwork`](crate::ProbabilisticNetwork),
/// the distributed coordinator) supply the epoch bookkeeping and the
/// authoritative batch-gain kernel; the provided methods implement the
/// refresh / window / gather logic once, so every consumer — the core
/// selection strategy, the service dispatcher, the coordinator — shares
/// one definition of "cached selection".
pub trait GainSource {
    /// The shared cache. Must never be locked by the required methods
    /// below (the provided methods hold it across `compute_gains`).
    fn gain_cache(&self) -> &Mutex<GainCache>;

    /// The current structure epoch (reset by extend / retire).
    fn gain_structure_epoch(&self) -> u64;

    /// Per-shard mutation epochs, indexed by shard id.
    fn gain_shard_epochs(&self) -> &[u64];

    /// The shard owning `c` (component id; `0` for monolithic models).
    fn gain_shard_of(&self, c: CandidateId) -> usize;

    /// Shard `k`'s uncertain members (`0 < p < 1`), ascending id.
    fn gain_shard_uncertain(&self, k: usize) -> Vec<CandidateId>;

    /// The authoritative batch gains, aligned with `pool` — the same
    /// values a fresh scan computes, by definition.
    fn compute_gains(&self, pool: &[CandidateId]) -> Vec<f64>;

    /// Brings the cache up to date with this model: full rebuild on a
    /// structure-epoch mismatch, otherwise one batch-kernel call over
    /// the dirty shards' uncertain members only. Values land verbatim —
    /// gains are pure functions of shard state, and `compute_gains` is
    /// documented independent of pool composition, so a refreshed cache
    /// is bit-identical to a fresh scan.
    fn refresh_gain_cache(&self) {
        let structure = self.gain_structure_epoch();
        let epochs = self.gain_shard_epochs();
        let mut cache = lock(self.gain_cache());
        if cache.structure_epoch != structure {
            cache.structure_epoch = structure;
            cache.shards.clear();
            cache.shards.resize(epochs.len(), ShardGains::default());
        }
        let dirty: Vec<usize> =
            (0..epochs.len()).filter(|&k| cache.shards[k].epoch != epochs[k]).collect();
        if dirty.is_empty() {
            return;
        }
        let mut pool: Vec<CandidateId> = Vec::new();
        let mut ranges: Vec<(usize, usize, usize)> = Vec::with_capacity(dirty.len());
        for &k in &dirty {
            let start = pool.len();
            pool.extend(self.gain_shard_uncertain(k));
            ranges.push((k, start, pool.len()));
        }
        let gains = if pool.is_empty() { Vec::new() } else { self.compute_gains(&pool) };
        for (k, start, end) in ranges {
            let s = &mut cache.shards[k];
            s.ids = pool[start..end].to_vec();
            s.gains = gains[start..end].to_vec();
            s.max_gain = s.gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            s.epoch = epochs[k];
        }
    }

    /// The lazy argmax window: every uncertain candidate whose cached
    /// gain lies within `2·TIE_EPSILON` of the global maximum, in
    /// ascending id order, with its gain. Shards whose maximum falls
    /// below the cut are skipped wholesale — that is the
    /// `O(|C_dirty| + window)` selection. Empty iff no candidate is
    /// uncertain. Feeding the window to `scored_argmax` reproduces the
    /// full-pool result exactly (see the module docs for the proof
    /// sketch).
    fn cached_gain_window(&self) -> (Vec<CandidateId>, Vec<f64>) {
        self.refresh_gain_cache();
        let cache = lock(self.gain_cache());
        let m = cache.shards.iter().map(|s| s.max_gain).fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            return (Vec::new(), Vec::new());
        }
        let cut = m - 2.0 * TIE_EPSILON;
        let mut window: Vec<(CandidateId, f64)> = Vec::new();
        for s in &cache.shards {
            if s.max_gain < cut {
                continue;
            }
            for (&c, &g) in s.ids.iter().zip(&s.gains) {
                if g >= cut {
                    window.push((c, g));
                }
            }
        }
        window.sort_unstable_by_key(|&(c, _)| c);
        window.into_iter().unzip()
    }

    /// Batch gains for an arbitrary pool, served from the cache —
    /// values identical to [`compute_gains`](Self::compute_gains) by
    /// construction. Pool candidates outside the cache (not currently
    /// uncertain) fall back to one authoritative batch call, so the
    /// method is total either way.
    fn cached_gains(&self, pool: &[CandidateId]) -> Vec<f64> {
        self.refresh_gain_cache();
        let epochs = self.gain_shard_epochs();
        let mut out = vec![0.0; pool.len()];
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = lock(self.gain_cache());
            for (pos, &c) in pool.iter().enumerate() {
                let k = self.gain_shard_of(c);
                match epochs.get(k).and_then(|&e| cache.lookup(k, e, c)) {
                    Some(g) => out[pos] = g,
                    None => missing.push(pos),
                }
            }
        }
        if !missing.is_empty() {
            let stragglers: Vec<CandidateId> = missing.iter().map(|&p| pool[p]).collect();
            for (&pos, g) in missing.iter().zip(self.compute_gains(&stragglers)) {
                out[pos] = g;
            }
        }
        out
    }

    /// A warm-only point lookup: `Some(gain)` iff the cache already
    /// holds `c`'s shard at the current epoch. Never triggers a
    /// refresh — the single-candidate query path uses this so a cold
    /// read costs exactly what it always did.
    fn warm_cached_gain(&self, c: CandidateId) -> Option<f64> {
        let cache = lock(self.gain_cache());
        if cache.structure_epoch != self.gain_structure_epoch() {
            return None;
        }
        let k = self.gain_shard_of(c);
        let epoch = *self.gain_shard_epochs().get(k)?;
        cache.lookup(k, epoch, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_unique_and_nonzero() {
        let a = next_epoch();
        let b = next_epoch();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!(b > a);
    }

    #[test]
    fn empty_cache_misses_everything() {
        let cache = GainCache::default();
        assert_eq!(cache.lookup(0, 1, CandidateId(0)), None);
        assert_eq!(cache.lookup(7, 1, CandidateId(3)), None);
    }
}
