//! User feedback `F = ⟨F+, F−⟩`.

use smn_constraints::BitSet;
use smn_schema::CandidateId;

/// A single expert assertion on a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assertion {
    /// The asserted candidate.
    pub candidate: CandidateId,
    /// `true` = approved (`F+`), `false` = disapproved (`F−`).
    pub approved: bool,
}

/// The accumulated expert input: disjoint approved/disapproved sets.
///
/// Per the paper, "user assertions are assumed to be always right": `F+`
/// must be contained in and `F−` excluded from every matching instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    approved: BitSet,
    disapproved: BitSet,
}

impl Feedback {
    /// Empty feedback for a network with `n` candidates.
    pub fn new(n: usize) -> Self {
        Self { approved: BitSet::new(n), disapproved: BitSet::new(n) }
    }

    /// Records an assertion.
    ///
    /// # Panics
    /// Panics if the candidate was already asserted the other way (an
    /// expert cannot approve and disapprove the same correspondence).
    pub fn assert(&mut self, assertion: Assertion) {
        let Assertion { candidate, approved } = assertion;
        if approved {
            assert!(!self.disapproved.contains(candidate), "{candidate} already disapproved");
            self.approved.insert(candidate);
        } else {
            assert!(!self.approved.contains(candidate), "{candidate} already approved");
            self.disapproved.insert(candidate);
        }
    }

    /// Convenience for [`Feedback::assert`].
    pub fn approve(&mut self, c: CandidateId) {
        self.assert(Assertion { candidate: c, approved: true });
    }

    /// Convenience for [`Feedback::assert`].
    pub fn disapprove(&mut self, c: CandidateId) {
        self.assert(Assertion { candidate: c, approved: false });
    }

    /// Grows the candidate universe by one (a new arrival, initially
    /// unasserted).
    pub fn grow(&mut self) {
        let n = self.approved.capacity() + 1;
        self.approved.grow(n);
        self.disapproved.grow(n);
    }

    /// Drops candidate `c` from the universe, compacting ids (every later
    /// candidate shifts down by one). Returns the verdict that was
    /// discarded with it, if `c` had been asserted.
    pub fn retire(&mut self, c: CandidateId) -> Option<bool> {
        let approved = self.approved.collapse(c);
        let disapproved = self.disapproved.collapse(c);
        if approved {
            Some(true)
        } else if disapproved {
            Some(false)
        } else {
            None
        }
    }

    /// `F+` as a bitset.
    pub fn approved(&self) -> &BitSet {
        &self.approved
    }

    /// `F−` as a bitset.
    pub fn disapproved(&self) -> &BitSet {
        &self.disapproved
    }

    /// Whether `c` has been asserted either way.
    pub fn is_asserted(&self, c: CandidateId) -> bool {
        self.approved.contains(c) || self.disapproved.contains(c)
    }

    /// Whether an instance respects this feedback
    /// (`F+ ⊆ I ∧ F− ∩ I = ∅`).
    pub fn respected_by(&self, instance: &BitSet) -> bool {
        self.approved.is_subset(instance) && self.disapproved.is_disjoint(instance)
    }

    /// Number of assertions `|F+ ∪ F−|`.
    pub fn len(&self) -> usize {
        self.approved.count() + self.disapproved.count()
    }

    /// Whether no assertion has been made.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's user-effort measure `E = |F+ ∪ F−| / |C|`.
    pub fn effort(&self, candidate_count: usize) -> f64 {
        if candidate_count == 0 {
            0.0
        } else {
            self.len() as f64 / candidate_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approve_disapprove_disjoint() {
        let mut f = Feedback::new(10);
        f.approve(CandidateId(1));
        f.disapprove(CandidateId(2));
        assert!(f.is_asserted(CandidateId(1)));
        assert!(f.is_asserted(CandidateId(2)));
        assert!(!f.is_asserted(CandidateId(3)));
        assert_eq!(f.len(), 2);
        assert!((f.effort(10) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already disapproved")]
    fn conflicting_assertions_panic() {
        let mut f = Feedback::new(10);
        f.disapprove(CandidateId(4));
        f.approve(CandidateId(4));
    }

    #[test]
    fn repeated_same_assertion_is_idempotent() {
        let mut f = Feedback::new(10);
        f.approve(CandidateId(4));
        f.approve(CandidateId(4));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn respected_by_checks_both_sides() {
        let mut f = Feedback::new(5);
        f.approve(CandidateId(0));
        f.disapprove(CandidateId(1));
        let good = BitSet::from_ids(5, [CandidateId(0), CandidateId(2)]);
        let missing_approved = BitSet::from_ids(5, [CandidateId(2)]);
        let has_disapproved = BitSet::from_ids(5, [CandidateId(0), CandidateId(1)]);
        assert!(f.respected_by(&good));
        assert!(!f.respected_by(&missing_approved));
        assert!(!f.respected_by(&has_disapproved));
    }

    #[test]
    fn grow_and_retire_track_the_candidate_universe() {
        let mut f = Feedback::new(3);
        f.approve(CandidateId(0));
        f.disapprove(CandidateId(2));
        f.grow();
        f.approve(CandidateId(3));
        assert_eq!(f.len(), 3);
        // retiring the disapproved c2 shifts c3's approval down to id 2
        assert_eq!(f.retire(CandidateId(2)), Some(false));
        assert_eq!(f.len(), 2);
        assert!(f.approved().contains(CandidateId(0)));
        assert!(f.approved().contains(CandidateId(2)));
        assert_eq!(f.retire(CandidateId(1)), None, "unasserted candidates drop silently");
        assert_eq!(f.approved().capacity(), 2);
    }

    #[test]
    fn effort_handles_empty_network() {
        let f = Feedback::new(0);
        assert_eq!(f.effort(0), 0.0);
        assert!(f.is_empty());
    }
}
