//! Component shards of the probabilistic model.
//!
//! The integrity constraints only couple candidates that share a conflict,
//! so the distribution over matching instances factorizes exactly over the
//! connected components of the conflict graph
//! ([`smn_constraints::Components`]): `I` is a matching
//! instance of the network iff every per-component restriction is a
//! matching instance of that component. `ShardSet` materializes that
//! factorization — one independent [`SampleStore`] per component, running
//! on a restricted, locally renumbered
//! [`smn_constraints::ConflictIndex`] — and is the internal
//! representation behind
//! [`ProbabilisticNetwork::new_sharded`](crate::ProbabilisticNetwork::new_sharded).
//!
//! What the factorization buys:
//!
//! * **Local assertions** — integrating feedback on `c` view-maintains and
//!   recomputes only the shard owning `c`, not the whole store.
//! * **Local information gain** — candidates of different components are
//!   statistically independent, so their co-occurrence terms contribute
//!   zero gain; the batch gain scan shrinks from `O(|pool|·n·S/64)` to a
//!   sum of per-shard costs.
//! * **Exact small shards** — components at or below
//!   [`ShardingConfig::exact_threshold`] candidates are enumerated with
//!   [`crate::exact::enumerate_with_index`]
//!   instead of sampled: their stores are born exhausted and their
//!   posteriors exact (Eq. 1).
//! * **Parallel fill** — shard stores fill independently across
//!   `std::thread::scope` workers, each seeded `seed + shard_id` in the
//!   spirit of the multi-chain sampler, so the result is bit-deterministic
//!   for a fixed configuration regardless of scheduling.

use crate::exact;
use crate::feedback::{Assertion, Feedback};
use crate::sampling::{SampleStore, SamplerConfig};
use smn_constraints::{Components, ConflictIndex};
use smn_schema::CandidateId;
use std::sync::Mutex;

/// Configuration of the component-sharded representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Whether sharding is active at all;
    /// [`disabled`](ShardingConfig::disabled) keeps the classic monolithic
    /// store.
    pub enabled: bool,
    /// Components with at most this many candidates switch from sampling
    /// to exact enumeration (`0` samples everything).
    pub exact_threshold: usize,
    /// Instance cap for the exact-enumeration attempt; a small component
    /// that still exceeds it falls back to sampling.
    pub exact_cap: usize,
    /// Fill shard stores across scoped worker threads. Off, shards fill
    /// sequentially on the caller thread — same result either way.
    pub parallel: bool,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self { enabled: true, exact_threshold: 24, exact_cap: 4096, parallel: true }
    }
}

impl ShardingConfig {
    /// The monolithic (non-sharded) configuration.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// One conflict component: its restricted index, local feedback and
/// independent sample store. Candidate ids are shard-local; the
/// [`Components`] partition owns the global ↔ local mapping.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub(crate) index: ConflictIndex,
    pub(crate) feedback: Feedback,
    pub(crate) store: SampleStore,
}

/// The sharded sample representation: the component partition plus one
/// [`Shard`] per component.
#[derive(Debug, Clone)]
pub(crate) struct ShardSet {
    pub(crate) components: Components,
    pub(crate) shards: Vec<Shard>,
}

impl ShardSet {
    /// Partitions `index` into components and builds every shard store —
    /// in parallel when configured and worthwhile.
    pub(crate) fn build(
        index: &ConflictIndex,
        sampler: SamplerConfig,
        sharding: &ShardingConfig,
    ) -> Self {
        let components = Components::of_index(index);
        let sub_indices = index.shard(&components);
        // spawning a worker pool only pays when at least one shard must be
        // *sampled*; all-exact builds (every component at or below the
        // exact threshold) are microseconds of enumeration and run faster
        // sequentially than any thread spawn
        let any_sampled =
            sub_indices.iter().any(|s| s.candidate_count() > sharding.exact_threshold);
        let workers = if sharding.parallel && any_sampled {
            std::thread::available_parallelism().map_or(1, usize::from).min(sub_indices.len())
        } else {
            1
        };
        let shards = if workers > 1 {
            build_parallel(sub_indices, sampler, sharding, workers)
        } else {
            sub_indices
                .into_iter()
                .enumerate()
                .map(|(k, sub)| build_shard(k, sub, sampler, sharding))
                .collect()
        };
        Self { components, shards }
    }

    /// Whether every shard store is exhausted — then the factorized
    /// posterior is exact over the whole network.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.shards.iter().all(|s| s.store.is_exhausted())
    }

    /// Total distinct samples across shards (the factorized store covers
    /// the *product* of these per-shard counts).
    pub(crate) fn distinct_samples(&self) -> usize {
        self.shards.iter().map(|s| s.store.len()).sum()
    }

    /// Owning shard and shard-local id of a global candidate.
    pub(crate) fn locate(&self, c: CandidateId) -> (usize, CandidateId) {
        (self.components.component_of(c), CandidateId::from_index(self.components.local_index(c)))
    }

    /// Whether approving `c` is consistent with the shard's earlier
    /// approvals (conflicts never leave the shard).
    pub(crate) fn approval_is_consistent(&self, c: CandidateId) -> bool {
        let (k, lc) = self.locate(c);
        let shard = &self.shards[k];
        shard.index.can_add(shard.feedback.approved(), lc)
    }

    /// Integrates an assertion: updates the owning shard's feedback,
    /// view-maintains its store and rewrites that shard's slice of the
    /// global probability vector. Other shards are untouched.
    pub(crate) fn assert(&mut self, candidate: CandidateId, approved: bool, probs: &mut [f64]) {
        let (k, lc) = self.locate(candidate);
        let shard = &mut self.shards[k];
        shard.feedback.assert(Assertion { candidate: lc, approved });
        shard.store.maintain_with_index(&shard.index, &shard.feedback, lc, approved);
        self.write_shard_probabilities(k, probs);
    }

    /// Writes the probabilities of every shard into the global vector.
    pub(crate) fn write_all_probabilities(&self, probs: &mut [f64]) {
        for k in 0..self.shards.len() {
            self.write_shard_probabilities(k, probs);
        }
    }

    /// Writes one shard's probabilities (Eq. 2 over its own store) into
    /// the global vector.
    pub(crate) fn write_shard_probabilities(&self, k: usize, probs: &mut [f64]) {
        let shard = &self.shards[k];
        let members = self.components.members(k);
        let matrix = shard.store.matrix();
        let total = matrix.sample_count();
        for (j, &g) in members.iter().enumerate() {
            let lc = CandidateId::from_index(j);
            probs[g.index()] = if total == 0 {
                // no instance (contradictory local feedback cannot happen;
                // defensive mirror of the monolithic empty-store rule)
                if shard.feedback.approved().contains(lc) {
                    1.0
                } else {
                    0.0
                }
            } else {
                matrix.membership_count(lc) as f64 / total as f64
            };
        }
    }
}

/// Builds one shard: exact enumeration for small components, the
/// Algorithm 3 sampler otherwise; seeded `seed + shard_id` either way.
fn build_shard(
    k: usize,
    sub: ConflictIndex,
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
) -> Shard {
    let m = sub.candidate_count();
    let feedback = Feedback::new(m);
    let config = SamplerConfig { seed: sampler.seed.wrapping_add(k as u64), ..sampler };
    let exact_attempt = if m <= sharding.exact_threshold {
        exact::enumerate_with_index(&sub, &feedback, sharding.exact_cap)
    } else {
        None
    };
    let store = match exact_attempt {
        Some(instances) => SampleStore::from_instances(m, instances, config),
        None => SampleStore::with_index(&sub, &feedback, config),
    };
    Shard { index: sub, feedback, store }
}

/// Fills shards across a scoped worker pool. Each shard's store depends
/// only on its own sub-index and seed, so the merged result is identical
/// to the sequential build regardless of scheduling.
fn build_parallel(
    sub_indices: Vec<ConflictIndex>,
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
    workers: usize,
) -> Vec<Shard> {
    let count = sub_indices.len();
    let queue = Mutex::new(sub_indices.into_iter().enumerate());
    let done: Mutex<Vec<(usize, Shard)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("work queue").next();
                let Some((k, sub)) = next else {
                    return;
                };
                let shard = build_shard(k, sub, sampler, sharding);
                done.lock().expect("result vec").push((k, shard));
            });
        }
    });
    let mut built = done.into_inner().expect("result lock");
    debug_assert_eq!(built.len(), count);
    built.sort_unstable_by_key(|&(k, _)| k);
    built.into_iter().map(|(_, shard)| shard).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_network, perturbed_network};

    fn sampler() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 5, chains: 1 }
    }

    #[test]
    fn fig1_is_a_single_exact_shard() {
        let net = fig1_network();
        let set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        assert_eq!(set.shards.len(), 1, "fig1's conflict graph is connected");
        assert!(set.is_exhausted(), "5 candidates ≤ exact threshold");
        assert_eq!(set.distinct_samples(), 4, "all four maximal instances");
        let mut probs = vec![0.0; 5];
        set.write_all_probabilities(&mut probs);
        for p in probs {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_threshold_zero_samples_every_shard() {
        let net = fig1_network();
        let cfg = ShardingConfig { exact_threshold: 0, ..Default::default() };
        let set = ShardSet::build(net.index(), sampler(), &cfg);
        // the sampler still exhausts the tiny space, by refill detection
        assert!(set.is_exhausted());
        assert_eq!(set.distinct_samples(), 4);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 9);
        let par = ShardSet::build(
            net.index(),
            sampler(),
            &ShardingConfig { parallel: true, ..Default::default() },
        );
        let seq = ShardSet::build(
            net.index(),
            sampler(),
            &ShardingConfig { parallel: false, ..Default::default() },
        );
        assert_eq!(par.shards.len(), seq.shards.len());
        let n = net.candidate_count();
        let (mut p1, mut p2) = (vec![0.0; n], vec![0.0; n]);
        par.write_all_probabilities(&mut p1);
        seq.write_all_probabilities(&mut p2);
        assert_eq!(p1, p2, "shard fills must not depend on scheduling");
        for (a, b) in par.shards.iter().zip(&seq.shards) {
            assert_eq!(a.store.samples(), b.store.samples());
        }
    }

    #[test]
    fn assertion_touches_only_the_owning_shard() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let mut set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        if set.shards.len() < 2 {
            return; // degenerate draw: nothing cross-shard to observe
        }
        let mut probs = vec![0.0; n];
        set.write_all_probabilities(&mut probs);
        let before: Vec<Vec<_>> = set.shards.iter().map(|s| s.store.samples().to_vec()).collect();
        let target = CandidateId::from_index(0);
        let (k, _) = set.locate(target);
        set.assert(target, false, &mut probs);
        for (i, shard) in set.shards.iter().enumerate() {
            if i != k {
                assert_eq!(shard.store.samples(), &before[i][..], "foreign shard touched");
            }
        }
        assert_eq!(probs[0], 0.0);
    }
}
