//! Component shards of the probabilistic model.
//!
//! The integrity constraints only couple candidates that share a conflict,
//! so the distribution over matching instances factorizes exactly over the
//! connected components of the conflict graph
//! ([`smn_constraints::Components`]): `I` is a matching
//! instance of the network iff every per-component restriction is a
//! matching instance of that component. `ShardSet` materializes that
//! factorization — one independent [`SampleStore`] per component, running
//! on a restricted, locally renumbered
//! [`smn_constraints::ConflictIndex`] — and is the internal
//! representation behind
//! [`ProbabilisticNetwork::new_sharded`](crate::ProbabilisticNetwork::new_sharded).
//!
//! What the factorization buys:
//!
//! * **Local assertions** — integrating feedback on `c` view-maintains and
//!   recomputes only the shard owning `c`, not the whole store.
//! * **Local information gain** — candidates of different components are
//!   statistically independent, so their co-occurrence terms contribute
//!   zero gain; the batch gain scan shrinks from `O(|pool|·n·S/64)` to a
//!   sum of per-shard costs.
//! * **Exact small shards** — components at or below
//!   [`ShardingConfig::exact_threshold`] candidates are enumerated with
//!   [`crate::exact::enumerate_with_index`]
//!   instead of sampled: their stores are born exhausted and their
//!   posteriors exact (Eq. 1).
//! * **Parallel fill** — shard stores fill independently across the
//!   persistent work-stealing pool ([`crate::pool`]), each seeded
//!   `seed + shard_id` in the spirit of the multi-chain sampler and merged
//!   in shard-id order, so the result is bit-deterministic for a fixed
//!   configuration regardless of scheduling or thread count.

use crate::entropy::binary_entropy;
use crate::exact;
use crate::feedback::{Assertion, Feedback};
use crate::pool;
use crate::reconcile::StepOutcome;
use crate::sampling::{SampleStore, SamplerConfig};
use smn_constraints::{BitSet, Components, ConflictIndex};
use smn_schema::CandidateId;
use std::sync::Arc;

/// Configuration of the component-sharded representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Whether sharding is active at all;
    /// [`disabled`](ShardingConfig::disabled) keeps the classic monolithic
    /// store.
    pub enabled: bool,
    /// Components with at most this many candidates switch from sampling
    /// to exact enumeration (`0` samples everything).
    pub exact_threshold: usize,
    /// Instance cap for the exact-enumeration attempt; a small component
    /// that still exceeds it falls back to sampling.
    pub exact_cap: usize,
    /// Fill shard stores across scoped worker threads. Off, shards fill
    /// sequentially on the caller thread — same result either way.
    pub parallel: bool,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self { enabled: true, exact_threshold: 24, exact_cap: 4096, parallel: true }
    }
}

impl ShardingConfig {
    /// The monolithic (non-sharded) configuration.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// One conflict component's snapshot: its restricted index, local feedback
/// and independent sample store. Candidate ids are shard-local; the
/// [`Components`] partition owns the global ↔ local mapping.
///
/// Snapshots are immutable behind `Arc` (see [`ShardSet`]): an assertion
/// copy-on-writes exactly the owning shard (`Arc::make_mut`), and even
/// that copy is thin — the sub-index is itself `Arc`-shared and the
/// store's sample matrix sits behind its own snapshot pointer, so the
/// first write after a fork duplicates one shard's feedback bitsets and
/// store overlay, nothing network-wide.
#[derive(Debug, Clone)]
pub(crate) struct ShardSnapshot {
    pub(crate) index: Arc<ConflictIndex>,
    pub(crate) feedback: Feedback,
    pub(crate) store: SampleStore,
}

/// The sharded sample representation: the (shared) component partition
/// plus one [`ShardSnapshot`] per component.
///
/// This is the copy-on-write layer behind
/// [`ProbabilisticNetwork::fork`](crate::ProbabilisticNetwork::fork):
/// cloning a `ShardSet` is `O(#shards)` pointer copies — no sample matrix,
/// conflict index or partition is duplicated until one side writes a
/// shard.
#[derive(Debug, Clone)]
pub(crate) struct ShardSet {
    pub(crate) components: Arc<Components>,
    pub(crate) shards: Vec<Arc<ShardSnapshot>>,
}

impl ShardSet {
    /// Partitions `index` into components and builds every shard store —
    /// in parallel when configured and worthwhile.
    pub(crate) fn build(
        index: &ConflictIndex,
        sampler: SamplerConfig,
        sharding: &ShardingConfig,
    ) -> Self {
        let components = Components::of_index(index);
        let sub_indices = index.shard(&components);
        // dispatching to the pool only pays when at least one shard must
        // be *sampled*; all-exact builds (every component at or below the
        // exact threshold) are microseconds of enumeration and run faster
        // sequentially than any cross-thread handoff
        let any_sampled =
            sub_indices.iter().any(|s| s.candidate_count() > sharding.exact_threshold);
        let shards = if sharding.parallel && any_sampled && sub_indices.len() > 1 {
            build_parallel(sub_indices, sampler, sharding)
        } else {
            sub_indices
                .into_iter()
                .enumerate()
                .map(|(k, sub)| Arc::new(build_shard(k, sub, sampler, sharding)))
                .collect()
        };
        Self { components: Arc::new(components), shards }
    }

    /// Whether every shard store is exhausted — then the factorized
    /// posterior is exact over the whole network.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.shards.iter().all(|s| s.store.is_exhausted())
    }

    /// Total distinct samples across shards (the factorized store covers
    /// the *product* of these per-shard counts).
    pub(crate) fn distinct_samples(&self) -> usize {
        self.shards.iter().map(|s| s.store.len()).sum()
    }

    /// Owning shard and shard-local id of a global candidate.
    pub(crate) fn locate(&self, c: CandidateId) -> (usize, CandidateId) {
        (self.components.component_of(c), CandidateId::from_index(self.components.local_index(c)))
    }

    /// Whether approving `c` is consistent with the shard's earlier
    /// approvals (conflicts never leave the shard).
    pub(crate) fn approval_is_consistent(&self, c: CandidateId) -> bool {
        let (k, lc) = self.locate(c);
        let shard = &self.shards[k];
        shard.index.can_add(shard.feedback.approved(), lc)
    }

    /// Integrates an assertion: copy-on-writes the owning shard (a no-op
    /// copy when the snapshot is not shared with a fork), updates its
    /// feedback, view-maintains its store and rewrites that shard's slice
    /// of the global probability vector. Other shards are untouched — and
    /// stay shared with any fork by pointer.
    pub(crate) fn assert(&mut self, candidate: CandidateId, approved: bool, probs: &mut [f64]) {
        let (k, lc) = self.locate(candidate);
        let ShardSnapshot { index, feedback, store } = Arc::make_mut(&mut self.shards[k]);
        feedback.assert(Assertion { candidate: lc, approved });
        store.maintain_with_index(index, feedback, lc, approved);
        self.write_shard_probabilities(k, probs);
    }

    /// Writes the probabilities of every shard into the global vector.
    pub(crate) fn write_all_probabilities(&self, probs: &mut [f64]) {
        for k in 0..self.shards.len() {
            self.write_shard_probabilities(k, probs);
        }
    }

    /// Maintains the shard set for the candidate just appended to `index`
    /// (the patched global conflict index): the components its conflicts
    /// couple merge into one shard — still-consistent cross-combinations
    /// of their samples are carried over, and only that shard enumerates
    /// or refills — while every other shard survives verbatim. The merged
    /// shard's slice of `probs` is rewritten; nothing else moves (global
    /// ids are stable under arrival).
    pub(crate) fn extend(
        &mut self,
        index: &ConflictIndex,
        sampler: SamplerConfig,
        sharding: &ShardingConfig,
        probs: &mut [f64],
    ) {
        let c = CandidateId::from_index(index.candidate_count() - 1);
        let evo = Arc::make_mut(&mut self.components).add_candidate(index);
        let old_shards = std::mem::take(&mut self.shards);
        let mut new_shards: Vec<Option<Arc<ShardSnapshot>>> =
            (0..self.components.count()).map(|_| None).collect();
        // merge sources, paired with their pre-merge member lists (both
        // ascend by old component index)
        let mut absorbed: Vec<(&[CandidateId], Arc<ShardSnapshot>)> = Vec::new();
        {
            let mut dissolved = evo.dissolved.iter();
            for (old_k, shard) in old_shards.into_iter().enumerate() {
                match evo.remap[old_k] {
                    Some(new_k) => new_shards[new_k] = Some(shard),
                    None => {
                        let (dk, members) =
                            dissolved.next().expect("one dissolved entry per absorbed shard");
                        debug_assert_eq!(*dk, old_k);
                        absorbed.push((members.as_slice(), shard));
                    }
                }
            }
        }
        let &[merged_k] = evo.rebuilt.as_slice() else {
            unreachable!("an arrival always forms exactly one new component")
        };
        let sub = index.shard_component(&self.components, merged_k);
        let sources: Vec<(&[CandidateId], &Feedback, &SampleStore)> = absorbed
            .iter()
            .map(|(members, shard)| (*members, &shard.feedback, &shard.store))
            .collect();
        let (feedback, carried) =
            merged_inputs(&self.components, &sub, c, &sources, sampler, sharding);
        new_shards[merged_k] = Some(Arc::new(build_evolved_shard(
            merged_k, sub, feedback, carried, sampler, sharding,
        )));
        self.shards =
            new_shards.into_iter().map(|s| s.expect("every component assigned")).collect();
        self.write_shard_probabilities(merged_k, probs);
    }

    /// Maintains the shard set after `retired` was removed from `index`
    /// (already patched and id-compacted): only the retired candidate's
    /// shard dissolves — its surviving conflict components are re-extracted,
    /// their feedback carried over, and their stores rebuilt from the old
    /// shard's samples (restricted, deterministically re-maximized) plus a
    /// refill — while every other shard survives verbatim. The split
    /// parts' slices of `probs` are rewritten; `probs` must already be
    /// compacted to the new id space.
    pub(crate) fn retire(
        &mut self,
        index: &ConflictIndex,
        retired: CandidateId,
        sampler: SamplerConfig,
        sharding: &ShardingConfig,
        probs: &mut [f64],
    ) {
        let evo = Arc::make_mut(&mut self.components).retire_candidate(index, retired);
        // OLD global ids of the dissolving component (ascending, still
        // containing the retiree), moved out by the partition update
        let old_comp: &[CandidateId] =
            &evo.dissolved.first().expect("the retiree's component dissolves").1;
        let old_shards = std::mem::take(&mut self.shards);
        let mut new_shards: Vec<Option<Arc<ShardSnapshot>>> =
            (0..self.components.count()).map(|_| None).collect();
        let mut dissolved: Option<Arc<ShardSnapshot>> = None;
        for (old_k, shard) in old_shards.into_iter().enumerate() {
            match evo.remap[old_k] {
                Some(new_k) => new_shards[new_k] = Some(shard),
                None => dissolved = Some(shard),
            }
        }
        let old_shard = dissolved.expect("the retired candidate's shard dissolves");
        for &part_k in &evo.rebuilt {
            let sub = index.shard_component(&self.components, part_k);
            let (feedback, carried) = split_inputs(
                &self.components,
                part_k,
                &sub,
                old_comp,
                &old_shard.feedback,
                &old_shard.store,
                retired,
                sharding,
            );
            new_shards[part_k] = Some(Arc::new(build_evolved_shard(
                part_k, sub, feedback, carried, sampler, sharding,
            )));
        }
        self.shards =
            new_shards.into_iter().map(|s| s.expect("every component assigned")).collect();
        for &part_k in &evo.rebuilt {
            self.write_shard_probabilities(part_k, probs);
        }
    }

    /// Writes one shard's probabilities (Eq. 2 over its own store) into
    /// the global vector.
    pub(crate) fn write_shard_probabilities(&self, k: usize, probs: &mut [f64]) {
        let shard = &self.shards[k];
        let members = self.components.members(k);
        let matrix = shard.store.matrix();
        let total = matrix.sample_count();
        for (j, &g) in members.iter().enumerate() {
            let lc = CandidateId::from_index(j);
            probs[g.index()] = if total == 0 {
                // no instance (contradictory local feedback cannot happen;
                // defensive mirror of the monolithic empty-store rule)
                if shard.feedback.approved().contains(lc) {
                    1.0
                } else {
                    0.0
                }
            } else {
                matrix.membership_count(lc) as f64 / total as f64
            };
        }
    }

    /// Applies a lane of decided assertions (global candidate ids, all
    /// owned by shard `k`, in decision order) against a *working copy* of
    /// the shard and returns the new snapshot plus one
    /// `(standing verdict, outcome, mutated)` triple per event. `self` is
    /// untouched — the caller installs the snapshot (and mirrors the
    /// mutated events into the global feedback) afterwards, which is what
    /// lets disjoint lanes run on pool workers concurrently.
    ///
    /// Each event walks the service ladder: integrate as requested, fall
    /// back to a disapproval when the request is rejected, skip when even
    /// that contradicts standing feedback. Validation runs against the
    /// lane's working snapshot *before* any copy is made, so a lane of
    /// purely redundant events returns `None` — the shard is never cloned
    /// for work that turns out to be a no-op.
    pub(crate) fn commit_lane(
        &self,
        k: usize,
        events: &[Assertion],
    ) -> (Option<ShardSnapshot>, Vec<(bool, StepOutcome, bool)>) {
        let local: Vec<Assertion> = events
            .iter()
            .map(|e| Assertion {
                candidate: CandidateId::from_index(self.components.local_index(e.candidate)),
                approved: e.approved,
            })
            .collect();
        commit_lane_local(&self.shards[k], &local)
    }

    /// Entropy (bits) shard `k` would carry after hypothetically
    /// integrating the assertion `(lc, approved)` — the per-query kernel
    /// behind
    /// [`ProbabilisticNetwork::what_if_batch`](crate::ProbabilisticNetwork::what_if_batch).
    /// Runs the real integration (feedback update, view maintenance,
    /// refill) on a throwaway copy of the one snapshot; `self` is
    /// untouched. Entropy is additive over independent components, so the
    /// batch layer composes `H' = H − H_k + H'_k` from this without ever
    /// rebuilding the global probability vector.
    pub(crate) fn entropy_after(&self, k: usize, lc: CandidateId, approved: bool) -> f64 {
        entropy_after_local(&self.shards[k], lc, approved)
    }
}

/// The lane ladder of [`ShardSet::commit_lane`], over *shard-local*
/// candidate ids — the kernel shared with the remote
/// [`ShardHost`](crate::remote::ShardHost), whose lanes arrive already
/// localized.
pub(crate) fn commit_lane_local(
    base: &ShardSnapshot,
    events: &[Assertion],
) -> (Option<ShardSnapshot>, Vec<(bool, StepOutcome, bool)>) {
    let mut work: Option<ShardSnapshot> = None;
    let mut results = Vec::with_capacity(events.len());
    for event in events {
        let lc = event.candidate;
        // lane-local mirror of `ProbabilisticNetwork::validate_assertion`:
        // Some(would_mutate) for an acceptable verdict, None for a
        // rejected one (contradiction or inconsistent approval)
        let step = |snap: &ShardSnapshot, approved: bool| -> Option<bool> {
            if snap.feedback.is_asserted(lc) {
                let prev = snap.feedback.approved().contains(lc);
                return if prev == approved { Some(false) } else { None };
            }
            if approved && !snap.index.can_add(snap.feedback.approved(), lc) {
                return None;
            }
            Some(true)
        };
        let snap = work.as_ref().unwrap_or(base);
        let (approved, outcome, mutates) = match step(snap, event.approved) {
            Some(m) => (event.approved, StepOutcome::Integrated, m),
            None => match step(snap, false) {
                Some(m) => (false, StepOutcome::Flipped, m),
                None => (event.approved, StepOutcome::Skipped, false),
            },
        };
        if mutates {
            let target = work.get_or_insert_with(|| ShardSnapshot::clone(base));
            let ShardSnapshot { index, feedback, store } = target;
            feedback.assert(Assertion { candidate: lc, approved });
            store.maintain_with_index(index, feedback, lc, approved);
        }
        results.push((approved, outcome, mutates));
    }
    (work, results)
}

/// The hypothetical-integration kernel of [`ShardSet::entropy_after`],
/// over a bare snapshot — shared with the remote shard host.
pub(crate) fn entropy_after_local(base: &ShardSnapshot, lc: CandidateId, approved: bool) -> f64 {
    let mut snap = ShardSnapshot::clone(base);
    let ShardSnapshot { index, feedback, store } = &mut snap;
    feedback.assert(Assertion { candidate: lc, approved });
    store.maintain_with_index(index, feedback, lc, approved);
    snapshot_entropy(&snap)
}

/// One shard's Eq. 2 probabilities in *local* id order, under the same
/// empty-store rule as [`ShardSet::write_shard_probabilities`] — the wire
/// shape a shard server reports, scattered into the global vector by the
/// coordinator.
pub(crate) fn snapshot_probabilities(snap: &ShardSnapshot) -> Vec<f64> {
    let matrix = snap.store.matrix();
    let total = matrix.sample_count();
    (0..snap.index.candidate_count())
        .map(|j| {
            let lc = CandidateId::from_index(j);
            if total == 0 {
                if snap.feedback.approved().contains(lc) {
                    1.0
                } else {
                    0.0
                }
            } else {
                matrix.membership_count(lc) as f64 / total as f64
            }
        })
        .collect()
}

/// Merged-shard inputs for a network extension: the union feedback and the
/// carried-over cross-combined samples of the `absorbed` source shards
/// (each `(pre-merge member list, feedback, store)`, ascending by old
/// component index). `components` is the *post-evolution* partition and
/// `sub` the merged component's restricted index; `arrival` is the global
/// id of the candidate whose arrival merged them. Shared verbatim between
/// [`ShardSet::extend`] and the remote shard host's migration rebuild, so
/// a distributed merge is bit-identical to the single-process one.
pub(crate) fn merged_inputs(
    components: &Components,
    sub: &ConflictIndex,
    arrival: CandidateId,
    absorbed: &[(&[CandidateId], &Feedback, &SampleStore)],
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
) -> (Feedback, Vec<BitSet>) {
    let m = sub.candidate_count();
    let local = |g: CandidateId| CandidateId::from_index(components.local_index(g));
    // merged local feedback: every absorbed shard's assertions remapped
    // old-local → global → merged-local (the arrival is unasserted, and
    // approvals of different components never conflict)
    let mut feedback = Feedback::new(m);
    for (members, source, _) in absorbed {
        for lc in source.approved().iter() {
            feedback.approve(local(members[lc.index()]));
        }
        for lc in source.disapproved().iter() {
            feedback.disapprove(local(members[lc.index()]));
        }
    }
    // sampled merges carry over cross-combined old samples: each
    // combination is maximal over the union of the old components, so
    // with the arrival inserted when addable (kept otherwise) it is a
    // matching instance of the merged component; the sampler refills
    // on top of them instead of restarting cold
    let carried = if m > sharding.exact_threshold {
        let cap = sampler.n_samples.max(sampler.n_min).max(1);
        let mut combos: Vec<BitSet> = vec![BitSet::new(m)];
        for (members, _, store) in absorbed {
            let mut next = Vec::new();
            'cross: for combo in &combos {
                for s in store.samples() {
                    let mut merged = combo.clone();
                    for lc in s.iter() {
                        merged.insert(local(members[lc.index()]));
                    }
                    next.push(merged);
                    if next.len() >= cap {
                        break 'cross;
                    }
                }
            }
            combos = next;
        }
        let lc_new = local(arrival);
        for inst in &mut combos {
            if sub.can_add(inst, lc_new) {
                inst.insert(lc_new);
            }
        }
        combos
    } else {
        Vec::new()
    };
    (feedback, carried)
}

/// One split part's inputs for a retirement: the restricted feedback and
/// the carried-over (restricted, deterministically re-maximized) samples
/// of the dissolved shard. `components` is the *post-retirement*
/// partition, `sub` the part's restricted index, `old_comp` the dissolved
/// component's OLD global ids (ascending, still containing the retiree)
/// and `old_feedback`/`old_store` the dissolved shard's state. Shared
/// verbatim between [`ShardSet::retire`] and the remote shard host.
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_inputs(
    components: &Components,
    part_k: usize,
    sub: &ConflictIndex,
    old_comp: &[CandidateId],
    old_feedback: &Feedback,
    old_store: &SampleStore,
    retired: CandidateId,
    sharding: &ShardingConfig,
) -> (Feedback, Vec<BitSet>) {
    let m = sub.candidate_count();
    let part_members = components.members(part_k); // NEW global ids
                                                   // OLD-local id of an OLD global id within the dissolved shard
    let old_local = |g: CandidateId| {
        CandidateId::from_index(old_comp.binary_search(&g).expect("member of the old shard"))
    };
    // NEW global id → OLD global id (undo the retirement compaction)
    let unshift = |g: CandidateId| if g >= retired { CandidateId(g.0 + 1) } else { g };
    let mut feedback = Feedback::new(m);
    for (j, &g) in part_members.iter().enumerate() {
        let ol = old_local(unshift(g));
        let lc = CandidateId::from_index(j);
        if old_feedback.approved().contains(ol) {
            feedback.approve(lc);
        } else if old_feedback.disapproved().contains(ol) {
            feedback.disapprove(lc);
        }
    }
    // sampled parts carry over the old samples, restricted to the
    // part and greedily re-maximized: retirement can unblock
    // candidates that conflicted only with the departed one
    let carried = if m > sharding.exact_threshold {
        old_store
            .samples()
            .iter()
            .map(|s| {
                let mut inst = BitSet::new(m);
                for (j, &g) in part_members.iter().enumerate() {
                    if s.contains(old_local(unshift(g))) {
                        inst.insert(CandidateId::from_index(j));
                    }
                }
                complete_greedily(sub, &feedback, &mut inst);
                inst
            })
            .collect()
    } else {
        Vec::new()
    };
    (feedback, carried)
}

/// Entropy of one shard snapshot: `Σ H(p)` over its local Eq. 2
/// probabilities, under the same empty-store rule as
/// [`ShardSet::write_shard_probabilities`].
pub(crate) fn snapshot_entropy(snap: &ShardSnapshot) -> f64 {
    let matrix = snap.store.matrix();
    let total = matrix.sample_count();
    (0..snap.index.candidate_count())
        .map(|j| {
            let lc = CandidateId::from_index(j);
            let p = if total == 0 {
                if snap.feedback.approved().contains(lc) {
                    1.0
                } else {
                    0.0
                }
            } else {
                matrix.membership_count(lc) as f64 / total as f64
            };
            binary_entropy(p)
        })
        .sum()
}

/// Builds one shard: exact enumeration for small components, the
/// Algorithm 3 sampler otherwise; seeded `seed + shard_id` either way.
pub(crate) fn build_shard(
    k: usize,
    sub: Arc<ConflictIndex>,
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
) -> ShardSnapshot {
    let feedback = Feedback::new(sub.candidate_count());
    build_evolved_shard(k, sub, feedback, Vec::new(), sampler, sharding)
}

/// The general shard builder behind both the initial
/// [`ShardSet::build`] and the evolution paths: exact enumeration (under
/// the given feedback) for small components, the Algorithm 3 sampler
/// seeded with any `carried`-over instances otherwise; shard `k` is
/// seeded `seed + k` either way.
pub(crate) fn build_evolved_shard(
    k: usize,
    sub: Arc<ConflictIndex>,
    feedback: Feedback,
    carried: Vec<BitSet>,
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
) -> ShardSnapshot {
    let m = sub.candidate_count();
    let config = SamplerConfig { seed: sampler.seed.wrapping_add(k as u64), ..sampler };
    let exact_attempt = if m <= sharding.exact_threshold {
        exact::enumerate_with_index(&sub, &feedback, sharding.exact_cap)
    } else {
        None
    };
    let store = match exact_attempt {
        Some(instances) => SampleStore::from_instances(m, instances, config),
        None => SampleStore::with_carried(&sub, &feedback, config, carried),
    };
    ShardSnapshot { index: sub, feedback, store }
}

/// Extends `inst` to a maximal consistent instance by scanning candidates
/// in ascending id order — the deterministic (RNG-free) re-maximization
/// used on carried-over samples after a retirement.
pub(crate) fn complete_greedily(index: &ConflictIndex, feedback: &Feedback, inst: &mut BitSet) {
    for j in 0..index.candidate_count() {
        let c = CandidateId::from_index(j);
        if !inst.contains(c) && !feedback.disapproved().contains(c) && index.can_add(inst, c) {
            inst.insert(c);
        }
    }
}

/// Fills shards across the persistent work-stealing pool, one task per
/// shard. Each shard's store depends only on its own sub-index and seed,
/// and [`pool::WorkerPool::run`] returns results in submission (= shard
/// id) order, so the merged result is identical to the sequential build
/// regardless of scheduling.
fn build_parallel(
    sub_indices: Vec<Arc<ConflictIndex>>,
    sampler: SamplerConfig,
    sharding: &ShardingConfig,
) -> Vec<Arc<ShardSnapshot>> {
    let sharding = *sharding;
    let tasks: Vec<pool::Task<'_, Arc<ShardSnapshot>>> = sub_indices
        .into_iter()
        .enumerate()
        .map(|(k, sub)| {
            Box::new(move || Arc::new(build_shard(k, sub, sampler, &sharding)))
                as pool::Task<'_, Arc<ShardSnapshot>>
        })
        .collect();
    pool::global().run(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_network, perturbed_network};

    fn sampler() -> SamplerConfig {
        SamplerConfig { anneal: true, n_samples: 200, walk_steps: 3, n_min: 50, seed: 5, chains: 1 }
    }

    #[test]
    fn fig1_is_a_single_exact_shard() {
        let net = fig1_network();
        let set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        assert_eq!(set.shards.len(), 1, "fig1's conflict graph is connected");
        assert!(set.is_exhausted(), "5 candidates ≤ exact threshold");
        assert_eq!(set.distinct_samples(), 4, "all four maximal instances");
        let mut probs = vec![0.0; 5];
        set.write_all_probabilities(&mut probs);
        for p in probs {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_threshold_zero_samples_every_shard() {
        let net = fig1_network();
        let cfg = ShardingConfig { exact_threshold: 0, ..Default::default() };
        let set = ShardSet::build(net.index(), sampler(), &cfg);
        // the sampler still exhausts the tiny space, by refill detection
        assert!(set.is_exhausted());
        assert_eq!(set.distinct_samples(), 4);
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 9);
        let par = ShardSet::build(
            net.index(),
            sampler(),
            &ShardingConfig { parallel: true, ..Default::default() },
        );
        let seq = ShardSet::build(
            net.index(),
            sampler(),
            &ShardingConfig { parallel: false, ..Default::default() },
        );
        assert_eq!(par.shards.len(), seq.shards.len());
        let n = net.candidate_count();
        let (mut p1, mut p2) = (vec![0.0; n], vec![0.0; n]);
        par.write_all_probabilities(&mut p1);
        seq.write_all_probabilities(&mut p2);
        assert_eq!(p1, p2, "shard fills must not depend on scheduling");
        for (a, b) in par.shards.iter().zip(&seq.shards) {
            assert_eq!(a.store.samples(), b.store.samples());
        }
    }

    #[test]
    fn commit_lane_matches_sequential_assertions() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        let target = CandidateId::from_index(0);
        let (k, _) = set.locate(target);
        let members: Vec<CandidateId> = set.components.members(k).to_vec();
        let events: Vec<Assertion> = members
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, &c)| Assertion { candidate: c, approved: i % 2 == 0 })
            .collect();
        // reference: the same ladder, one `assert` at a time
        let mut seq = set.clone();
        let mut seq_probs = vec![0.0; n];
        seq.write_all_probabilities(&mut seq_probs);
        for e in &events {
            let (_, lc) = seq.locate(e.candidate);
            let decision = {
                let shard = &seq.shards[k];
                let step = |approved: bool| -> Option<bool> {
                    if shard.feedback.is_asserted(lc) {
                        let prev = shard.feedback.approved().contains(lc);
                        if prev == approved {
                            Some(false)
                        } else {
                            None
                        }
                    } else if approved && !shard.index.can_add(shard.feedback.approved(), lc) {
                        None
                    } else {
                        Some(true)
                    }
                };
                match step(e.approved) {
                    Some(m) => Some((e.approved, m)),
                    None => step(false).map(|m| (false, m)),
                }
            };
            if let Some((approved, true)) = decision {
                seq.assert(e.candidate, approved, &mut seq_probs);
            }
        }
        // lane: one batch
        let mut lane = set.clone();
        let (snap, results) = lane.commit_lane(k, &events);
        let mut lane_probs = vec![0.0; n];
        if let Some(s) = snap {
            lane.shards[k] = Arc::new(s);
        }
        lane.write_all_probabilities(&mut lane_probs);
        assert_eq!(results.len(), events.len());
        assert_eq!(lane_probs, seq_probs, "lane commit diverged from sequential asserts");
        assert_eq!(lane.shards[k].store.samples(), seq.shards[k].store.samples());
    }

    #[test]
    fn redundant_lane_never_clones_the_shard() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let mut set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        let target = CandidateId::from_index(0);
        let (k, _) = set.locate(target);
        let mut probs = vec![0.0; n];
        set.write_all_probabilities(&mut probs);
        set.assert(target, false, &mut probs);
        let before = Arc::as_ptr(&set.shards[k]);
        // a lane of same-way re-assertions and contradiction-skips must not
        // copy-on-write the shard at all
        let events = vec![
            Assertion { candidate: target, approved: false }, // same-way no-op
            Assertion { candidate: target, approved: true },  // contradiction → fallback no-op
        ];
        let (snap, results) = set.commit_lane(k, &events);
        assert!(snap.is_none(), "redundant lane allocated a working snapshot");
        assert_eq!(results[0], (false, StepOutcome::Integrated, false));
        assert_eq!(results[1], (false, StepOutcome::Flipped, false));
        assert_eq!(Arc::as_ptr(&set.shards[k]), before, "shard pointer must be untouched");
    }

    #[test]
    fn assertion_touches_only_the_owning_shard() {
        let (net, _) = perturbed_network(3, 6, 0.6, 0.9, 13);
        let n = net.candidate_count();
        let mut set = ShardSet::build(net.index(), sampler(), &ShardingConfig::default());
        if set.shards.len() < 2 {
            return; // degenerate draw: nothing cross-shard to observe
        }
        let mut probs = vec![0.0; n];
        set.write_all_probabilities(&mut probs);
        let before: Vec<Vec<_>> = set.shards.iter().map(|s| s.store.samples().to_vec()).collect();
        let target = CandidateId::from_index(0);
        let (k, _) = set.locate(target);
        set.assert(target, false, &mut probs);
        for (i, shard) in set.shards.iter().enumerate() {
            if i != k {
                assert_eq!(shard.store.samples(), &before[i][..], "foreign shard touched");
            }
        }
        assert_eq!(probs[0], 0.0);
    }
}
