//! Exact enumeration of matching instances and exact probabilities (Eq. 1).
//!
//! The number of instances is exponential in `|C|` in the worst case (the
//! paper: "in the smallest real dataset … 142 correspondences, resulting in
//! 2^142 possible instances"), so enumeration is only feasible for small
//! networks. It is used by the sampling-effectiveness experiment (Fig. 7,
//! `|C| ≤ 20`) and as the oracle in tests validating the sampler.

use crate::feedback::Feedback;
use crate::network::MatchingNetwork;
use smn_constraints::{BitSet, ConflictIndex};
use smn_schema::CandidateId;

/// Enumerates all matching instances (Definition 1): maximal consistent
/// candidate subsets that include `F+` and exclude `F−`.
///
/// Returns `None` if more than `cap` instances exist (guard against
/// accidental exponential blow-ups), or if the feedback itself is
/// inconsistent (approved candidates violating the constraints admit no
/// instance).
pub fn enumerate_instances(
    network: &MatchingNetwork,
    feedback: &Feedback,
    cap: usize,
) -> Option<Vec<BitSet>> {
    enumerate_with_index(network.index(), feedback, cap)
}

/// Index-level form of [`enumerate_instances`]: the enumeration only needs
/// the conflict structure, so the exact path of small shards in the
/// component-sharded model can run it on a restricted sub-index.
pub fn enumerate_with_index(
    index: &ConflictIndex,
    feedback: &Feedback,
    cap: usize,
) -> Option<Vec<BitSet>> {
    let n = index.candidate_count();
    // seed with the approved candidates; they must be mutually consistent
    let mut seed = BitSet::new(n);
    for c in feedback.approved().iter() {
        if !index.can_add(&seed, c) {
            return None;
        }
        seed.insert(c);
    }
    let mut out: Vec<BitSet> = Vec::new();
    let mut current = seed;
    // depth-first include/exclude over unasserted candidates
    let free: Vec<CandidateId> =
        (0..n).map(CandidateId::from_index).filter(|&c| !feedback.is_asserted(c)).collect();
    let mut future = BitSet::from_ids(n, free.iter().copied());
    let mut scratch = BitSet::new(n);
    /// Whether an addable-but-excluded `c` can still be blocked by picks
    /// after the current position: a pair partner left in `future`, or a
    /// triple whose other two members are each in `current ∪ future`.
    /// When nothing can block it, every completion of the exclude branch
    /// keeps `c` addable — non-maximal by definition — so the whole
    /// subtree is pruned (this is what keeps the enumeration near
    /// `O(|instances|)` on sparse conflict components instead of `2^m`).
    fn can_block_later(
        index: &smn_constraints::ConflictIndex,
        current: &BitSet,
        future: &BitSet,
        c: CandidateId,
    ) -> bool {
        if index.pair_mask(c).intersects(future) {
            return true;
        }
        index.other_pairs(c).iter().any(|&[a, b]| {
            (current.contains(a) || future.contains(a))
                && (current.contains(b) || future.contains(b))
        })
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        index: &smn_constraints::ConflictIndex,
        free: &[CandidateId],
        pos: usize,
        current: &mut BitSet,
        future: &mut BitSet,
        forbidden: &BitSet,
        scratch: &mut BitSet,
        out: &mut Vec<BitSet>,
        cap: usize,
    ) -> bool {
        if out.len() > cap {
            return false;
        }
        if pos == free.len() {
            if index.is_maximal_in(current, forbidden, scratch) {
                out.push(current.clone());
            }
            return out.len() <= cap;
        }
        let c = free[pos];
        future.remove(c);
        let ok = if index.can_add(current, c) {
            current.insert(c);
            let mut ok =
                recurse(index, free, pos + 1, current, future, forbidden, scratch, out, cap);
            current.remove(c);
            // the exclude branch can only produce maximal instances if a
            // later pick blocks `c`
            if ok && can_block_later(index, current, future, c) {
                ok = recurse(index, free, pos + 1, current, future, forbidden, scratch, out, cap);
            }
            ok
        } else {
            recurse(index, free, pos + 1, current, future, forbidden, scratch, out, cap)
        };
        future.insert(c);
        ok
    }
    if !recurse(
        index,
        &free,
        0,
        &mut current,
        &mut future,
        feedback.disapproved(),
        &mut scratch,
        &mut out,
        cap,
    ) {
        return None;
    }
    Some(out)
}

/// Exact probability of every candidate (Eq. 1): the fraction of matching
/// instances containing it. `None` under the same conditions as
/// [`enumerate_instances`], or if *no* instance exists.
pub fn exact_probabilities(
    network: &MatchingNetwork,
    feedback: &Feedback,
    cap: usize,
) -> Option<Vec<f64>> {
    let instances = enumerate_instances(network, feedback, cap)?;
    if instances.is_empty() {
        return None;
    }
    let n = network.candidate_count();
    let mut counts = vec![0usize; n];
    for inst in &instances {
        for c in inst.iter() {
            counts[c.index()] += 1;
        }
    }
    Some(counts.into_iter().map(|k| k as f64 / instances.len() as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    #[test]
    fn fig1_has_four_maximal_instances() {
        let net = fig1_network();
        let instances = enumerate_instances(&net, &Feedback::new(5), 1_000).unwrap();
        let mut sets: Vec<Vec<u32>> =
            instances.iter().map(|i| i.iter().map(|c| c.0).collect()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![0, 3, 4], vec![1, 4], vec![2, 3]]);
    }

    #[test]
    fn fig1_exact_probabilities_are_half() {
        let net = fig1_network();
        let probs = exact_probabilities(&net, &Feedback::new(5), 1_000).unwrap();
        for (i, p) in probs.iter().enumerate() {
            assert!((p - 0.5).abs() < 1e-12, "p(c{i}) = {p}");
        }
    }

    #[test]
    fn approval_filters_instances() {
        let net = fig1_network();
        let mut f = Feedback::new(5);
        f.approve(CandidateId(2));
        let instances = enumerate_instances(&net, &f, 1_000).unwrap();
        let mut sets: Vec<Vec<u32>> =
            instances.iter().map(|i| i.iter().map(|c| c.0).collect()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![0, 1, 2], vec![2, 3]]);
        let probs = exact_probabilities(&net, &f, 1_000).unwrap();
        assert_eq!(probs[2], 1.0, "approved candidate has probability one");
    }

    #[test]
    fn disapproval_filters_instances() {
        let net = fig1_network();
        let mut f = Feedback::new(5);
        f.disapprove(CandidateId(0));
        let instances = enumerate_instances(&net, &f, 1_000).unwrap();
        // without c0: maximal instances among {c1..c4} are {c1,c4} and {c2,c3}
        // but also {c1,c2}? c1=(a1,a2), c2=(a0,a2): share a2! other ends a1∈B, a0∈A
        // → different schemas → no 1-1 violation; can c3/c4 be added? c3 pairs
        // with c1, c4 pairs with c2 → maximal. So {c1,c2} is an instance too.
        let mut sets: Vec<Vec<u32>> =
            instances.iter().map(|i| i.iter().map(|c| c.0).collect()).collect();
        sets.sort();
        assert!(sets.contains(&vec![1, 4]));
        assert!(sets.contains(&vec![2, 3]));
        for s in &sets {
            assert!(!s.contains(&0));
        }
        let probs = exact_probabilities(&net, &f, 1_000).unwrap();
        assert_eq!(probs[0], 0.0, "disapproved candidate has probability zero");
    }

    #[test]
    fn maximality_is_relative_to_disapproved() {
        // Definition 1: maximality quantifies over C \ (F− ∪ I); a set that
        // could only be extended by disapproved candidates is maximal.
        let net = fig1_network();
        let mut f = Feedback::new(5);
        f.disapprove(CandidateId(0));
        f.disapprove(CandidateId(1));
        f.disapprove(CandidateId(2));
        f.disapprove(CandidateId(3));
        let instances = enumerate_instances(&net, &f, 1_000).unwrap();
        let sets: Vec<Vec<u32>> =
            instances.iter().map(|i| i.iter().map(|c| c.0).collect()).collect();
        assert_eq!(sets, vec![vec![4]]);
    }

    #[test]
    fn cap_is_respected() {
        let net = fig1_network();
        assert!(enumerate_instances(&net, &Feedback::new(5), 3).is_none());
        assert!(enumerate_instances(&net, &Feedback::new(5), 4).is_some());
    }

    #[test]
    fn inconsistent_approvals_return_none() {
        let net = fig1_network();
        let mut f = Feedback::new(5);
        // c1 and c3 are a 1-1 violation; approving both is contradictory
        f.approve(CandidateId(1));
        f.approve(CandidateId(3));
        assert!(enumerate_instances(&net, &f, 1_000).is_none());
    }

    #[test]
    fn probabilities_sum_matches_average_instance_size() {
        let net = fig1_network();
        let f = Feedback::new(5);
        let instances = enumerate_instances(&net, &f, 1_000).unwrap();
        let probs = exact_probabilities(&net, &f, 1_000).unwrap();
        let avg_size: f64 =
            instances.iter().map(|i| i.count() as f64).sum::<f64>() / instances.len() as f64;
        let sum: f64 = probs.iter().sum();
        assert!((sum - avg_size).abs() < 1e-9);
    }
}
