//! Expert simulation.
//!
//! The paper's experiments "simulate the process of reducing network
//! uncertainty where user assertions are generated using the available
//! selective matching" — i.e. the expert is an oracle over the ground
//! truth. [`GroundTruthOracle`] is that always-correct expert;
//! [`NoisyOracle`] is the extension to imperfect experts (§VIII points to
//! multi-user settings; the probabilistic model is agnostic to the source
//! of assertions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smn_schema::Correspondence;
use std::collections::HashSet;

/// Answers approval queries about correspondences.
pub trait Oracle {
    /// Returns `true` iff the oracle asserts the correspondence is correct.
    fn assert(&mut self, corr: Correspondence) -> bool;
}

/// An always-correct expert backed by the selective matching `M`.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    truth: HashSet<Correspondence>,
}

impl GroundTruthOracle {
    /// Creates the oracle from the ground truth.
    pub fn new(truth: impl IntoIterator<Item = Correspondence>) -> Self {
        Self { truth: truth.into_iter().collect() }
    }

    /// Size of the ground truth `|M|`.
    pub fn truth_len(&self) -> usize {
        self.truth.len()
    }

    /// Membership check without consuming a query.
    pub fn is_true(&self, corr: Correspondence) -> bool {
        self.truth.contains(&corr)
    }
}

impl Oracle for GroundTruthOracle {
    fn assert(&mut self, corr: Correspondence) -> bool {
        self.truth.contains(&corr)
    }
}

/// An expert that errs with a fixed probability (answers are memoized so
/// repeated queries stay consistent, like a real human's opinion).
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    truth: HashSet<Correspondence>,
    error_rate: f64,
    rng: StdRng,
    memo: std::collections::HashMap<Correspondence, bool>,
}

impl NoisyOracle {
    /// Creates the oracle.
    ///
    /// # Panics
    /// Panics unless `0 ≤ error_rate ≤ 1`.
    pub fn new(
        truth: impl IntoIterator<Item = Correspondence>,
        error_rate: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error rate out of range");
        Self {
            truth: truth.into_iter().collect(),
            error_rate,
            rng: StdRng::seed_from_u64(seed),
            memo: std::collections::HashMap::new(),
        }
    }
}

impl Oracle for NoisyOracle {
    fn assert(&mut self, corr: Correspondence) -> bool {
        let correct = self.truth.contains(&corr);
        let error_rate = self.error_rate;
        let rng = &mut self.rng;
        *self.memo.entry(corr).or_insert_with(|| {
            if rng.random_bool(error_rate) {
                !correct
            } else {
                correct
            }
        })
    }
}

/// A crowd of independent noisy experts aggregated by majority vote — the
/// multi-user extension the paper's conclusion points to ("our framework
/// is extensible as the underlying probabilistic model is independent of
/// the number of users", §VII/§VIII). With `2k+1` workers of error rate
/// `e < 0.5`, the majority errs with probability
/// `Σ_{j>k} C(2k+1,j) e^j (1−e)^{2k+1−j}` — exponentially small in `k`.
#[derive(Debug, Clone)]
pub struct CrowdOracle {
    workers: Vec<NoisyOracle>,
}

impl CrowdOracle {
    /// Creates a crowd of `workers` independent experts with the given
    /// error rate (odd worker counts avoid ties; even counts break ties
    /// towards disapproval, the conservative default).
    pub fn new(
        truth: impl IntoIterator<Item = Correspondence>,
        workers: usize,
        error_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(workers >= 1, "crowd needs at least one worker");
        let truth: Vec<Correspondence> = truth.into_iter().collect();
        Self {
            workers: (0..workers)
                .map(|w| {
                    NoisyOracle::new(truth.iter().copied(), error_rate, seed.wrapping_add(w as u64))
                })
                .collect(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Oracle for CrowdOracle {
    fn assert(&mut self, corr: Correspondence) -> bool {
        let yes = self.workers.iter_mut().map(|w| usize::from(w.assert(corr))).sum::<usize>();
        2 * yes > self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::AttributeId;

    fn corr(a: u32, b: u32) -> Correspondence {
        Correspondence::new(AttributeId(a), AttributeId(b))
    }

    #[test]
    fn ground_truth_oracle_is_exact() {
        let mut o = GroundTruthOracle::new([corr(0, 1), corr(2, 3)]);
        assert!(o.assert(corr(0, 1)));
        assert!(o.assert(corr(1, 0)));
        assert!(!o.assert(corr(0, 2)));
        assert_eq!(o.truth_len(), 2);
        assert!(o.is_true(corr(2, 3)));
    }

    #[test]
    fn zero_noise_oracle_matches_ground_truth() {
        let truth = [corr(0, 1), corr(2, 3)];
        let mut noisy = NoisyOracle::new(truth, 0.0, 1);
        let mut exact = GroundTruthOracle::new(truth);
        for c in [corr(0, 1), corr(2, 3), corr(0, 3), corr(1, 2)] {
            assert_eq!(noisy.assert(c), exact.assert(c));
        }
    }

    #[test]
    fn full_noise_oracle_inverts_ground_truth() {
        let truth = [corr(0, 1)];
        let mut noisy = NoisyOracle::new(truth, 1.0, 1);
        assert!(!noisy.assert(corr(0, 1)));
        assert!(noisy.assert(corr(0, 2)));
    }

    #[test]
    fn noisy_oracle_memoizes_answers() {
        let truth: Vec<Correspondence> = (0..50).map(|i| corr(2 * i, 2 * i + 1)).collect();
        let mut noisy = NoisyOracle::new(truth.iter().copied(), 0.5, 42);
        for c in &truth {
            let first = noisy.assert(*c);
            for _ in 0..3 {
                assert_eq!(noisy.assert(*c), first, "answers must be stable");
            }
        }
    }

    #[test]
    fn noisy_oracle_err_rate_is_plausible() {
        let truth: Vec<Correspondence> = (0..200).map(|i| corr(2 * i, 2 * i + 1)).collect();
        let mut noisy = NoisyOracle::new(truth.iter().copied(), 0.2, 7);
        let errors = truth.iter().filter(|&&c| !noisy.assert(c)).count();
        let rate = errors as f64 / truth.len() as f64;
        assert!((rate - 0.2).abs() < 0.08, "observed error rate {rate}");
    }

    #[test]
    fn crowd_majority_reduces_error_rate() {
        let truth: Vec<Correspondence> = (0..300).map(|i| corr(2 * i, 2 * i + 1)).collect();
        let mut single = NoisyOracle::new(truth.iter().copied(), 0.25, 11);
        let mut crowd = CrowdOracle::new(truth.iter().copied(), 5, 0.25, 11);
        assert_eq!(crowd.worker_count(), 5);
        let single_errors = truth.iter().filter(|&&c| !single.assert(c)).count();
        let crowd_errors = truth.iter().filter(|&&c| !crowd.assert(c)).count();
        assert!(
            crowd_errors * 2 < single_errors,
            "5-worker majority ({crowd_errors}) should at least halve a single worker's errors ({single_errors})"
        );
    }

    #[test]
    fn crowd_of_one_equals_noisy_oracle() {
        let truth = [corr(0, 1), corr(2, 3)];
        let mut crowd = CrowdOracle::new(truth, 1, 0.3, 9);
        let mut single = NoisyOracle::new(truth, 0.3, 9);
        for c in [corr(0, 1), corr(2, 3), corr(0, 3), corr(1, 2)] {
            assert_eq!(crowd.assert(c), single.assert(c));
        }
    }

    #[test]
    fn perfect_crowd_is_exact() {
        let truth = [corr(0, 1)];
        let mut crowd = CrowdOracle::new(truth, 3, 0.0, 1);
        assert!(crowd.assert(corr(0, 1)));
        assert!(!crowd.assert(corr(0, 2)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_crowd_rejected() {
        let _ = CrowdOracle::new(std::iter::empty(), 0, 0.1, 1);
    }
}
