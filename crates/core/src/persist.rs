//! Serializable state and event types for durability.
//!
//! This module defines the *logical* persistence boundary of the core
//! model; the binary encoding lives in the `smn-storage` crate, which
//! cannot reach the private fields of
//! [`ProbabilisticNetwork`] directly. Two
//! halves:
//!
//! * **State** — [`NetworkState`] is a plain-data image of a
//!   probabilistic network: catalog/graph/candidate construction data,
//!   the conflict index's *primary* data (posting lists + triple table;
//!   every dense query structure is re-derived on load), the feedback
//!   sets, and the per-store sample state
//!   ([`StoreState`]). Extraction and reconstruction are
//!   [`ProbabilisticNetwork::to_state`](crate::ProbabilisticNetwork::to_state)
//!   / [`from_state`](crate::ProbabilisticNetwork::from_state); the round
//!   trip is lossless (probabilities are *recomputed* from the restored
//!   samples through the same kernels, hence bit-identical).
//! * **Events** — [`NetworkEvent`] is the write-ahead-log alphabet:
//!   assertions, candidate arrivals and retirements. A [`Session`]
//!   (or the reconciliation service) journals each applied event into an
//!   [`EventSink`]; crash recovery replays the suffix onto a loaded
//!   snapshot via [`apply_event`], with [`apply_to_history`] mirroring
//!   the session-history bookkeeping (retirement drops and renumbers
//!   assertions exactly like
//!   [`Session::retire`](crate::Session::retire)).
//!
//! [`Session`]: crate::Session

use crate::feedback::{Assertion, Feedback};
use crate::probability::ProbabilisticNetwork;
use crate::sampling::SamplerConfig;
use crate::shard::ShardingConfig;
use smn_constraints::ConstraintConfig;
use smn_schema::{AttributeId, CandidateId};

/// One schema of the serialized catalog: its name plus its attribute
/// names in id order. Re-adding schemas and attributes in this order
/// through `CatalogBuilder` reassigns the identical dense ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaState {
    /// Schema name (unique within the catalog).
    pub name: String,
    /// Attribute names in insertion (= id) order.
    pub attributes: Vec<String>,
}

/// One serialized candidate correspondence (endpoints by attribute id,
/// in stored endpoint order). Re-adding candidates in id order rebuilds
/// the candidate set with identical dense ids.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateState {
    /// First endpoint attribute id.
    pub a: u32,
    /// Second endpoint attribute id.
    pub b: u32,
    /// Matcher confidence.
    pub confidence: f64,
}

/// Serialized feedback: the approved/disapproved id lists over a
/// universe of `len` candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackState {
    /// Candidate universe size the bitsets were sized to.
    pub len: usize,
    /// Approved candidate ids, ascending.
    pub approved: Vec<u32>,
    /// Disapproved candidate ids, ascending.
    pub disapproved: Vec<u32>,
}

impl FeedbackState {
    /// Extracts the id lists of `feedback`.
    pub fn of(feedback: &Feedback) -> Self {
        Self {
            len: feedback.approved().capacity(),
            approved: feedback.approved().iter().map(|c| c.0).collect(),
            disapproved: feedback.disapproved().iter().map(|c| c.0).collect(),
        }
    }

    /// Rebuilds the feedback bitsets for a universe of `n` candidates.
    /// Fails (never panics) on a size mismatch, out-of-range ids or a
    /// candidate asserted both ways.
    pub fn build(&self, n: usize) -> Result<Feedback, String> {
        if self.len != n {
            return Err(format!("feedback sized for {} candidates, network has {n}", self.len));
        }
        let mut fb = Feedback::new(n);
        for &c in &self.approved {
            if c as usize >= n {
                return Err(format!("approved candidate {c} out of range"));
            }
            fb.approve(CandidateId(c));
        }
        for &c in &self.disapproved {
            if c as usize >= n {
                return Err(format!("disapproved candidate {c} out of range"));
            }
            if fb.approved().contains(CandidateId(c)) {
                return Err(format!("candidate {c} both approved and disapproved"));
            }
            fb.disapprove(CandidateId(c));
        }
        Ok(fb)
    }
}

/// Serialized sample-store state: the distinct instances Ω\* in
/// discovery order (each as an ascending candidate-id list) with their
/// visit counts, plus the sampler config and exhaustion/epoch flags.
/// The transposed matrix, dedup map and cached weights are derived on
/// load by re-recording the instances in order — bit-identically.
///
/// The store carries its *own* [`SamplerConfig`]: evolved shards are
/// reseeded per merge/split event, so their seeds differ from the
/// network-level config.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreState {
    /// The config the store runs with (seed included).
    pub config: SamplerConfig,
    /// Candidate universe size (shard-local for shard stores).
    pub candidate_count: usize,
    /// Whether the store concluded `Ω* = Ω`.
    pub exhausted: bool,
    /// Monotone multi-chain pass counter.
    pub pass_epoch: u64,
    /// Distinct instances in discovery order, each as ascending ids.
    pub samples: Vec<Vec<u32>>,
    /// Per-instance emission counts, aligned with `samples`.
    pub counts: Vec<u64>,
}

/// One serialized shard: its local feedback and store. The shard's
/// restricted sub-index is *not* serialized — it is a pure function of
/// the global index and the component partition and is re-derived on
/// load (`ConflictIndex::shard`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard-local feedback (ids in shard-local numbering).
    pub feedback: FeedbackState,
    /// Shard-local sample store.
    pub store: StoreState,
}

/// The serialized sample representation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReprState {
    /// One store over the whole network.
    Monolithic(StoreState),
    /// One store per conflict component.
    Sharded {
        /// Component member lists (global ids, canonical order).
        members: Vec<Vec<u32>>,
        /// Per-component shard states, aligned with `members`.
        shards: Vec<ShardState>,
    },
}

/// The full serializable image of a
/// [`ProbabilisticNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    /// Catalog schemas in id order.
    pub schemas: Vec<SchemaState>,
    /// Interaction-graph vertex count (= schema count).
    pub graph_vertices: usize,
    /// Interaction-graph edges in stored (normalized insertion) order.
    pub graph_edges: Vec<(u32, u32)>,
    /// Candidate correspondences in id order.
    pub candidates: Vec<CandidateState>,
    /// Which constraints the conflict index enforces.
    pub constraints: ConstraintConfig,
    /// Primary conflict data: `pair_conflicts[c]` = one-to-one partners.
    pub pair_conflicts: Vec<Vec<u32>>,
    /// Primary conflict data: the canonical cycle-triple table.
    pub triples: Vec<[u32; 3]>,
    /// Global feedback.
    pub feedback: FeedbackState,
    /// Network-level sampler config.
    pub sampler: SamplerConfig,
    /// Sharding config (`None` for the monolithic representation).
    pub sharding: Option<ShardingConfig>,
    /// The construction-time entropy baseline.
    pub initial_entropy: f64,
    /// The sample representation.
    pub repr: ReprState,
}

/// One durable event of the write-ahead log: exactly the mutations a
/// [`Session`](crate::Session) or the reconciliation service applies to
/// a [`ProbabilisticNetwork`] between
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkEvent {
    /// A user assertion that was *applied* (same-way no-ops included;
    /// rejected assertions are never journaled).
    Assert {
        /// The asserted candidate.
        candidate: CandidateId,
        /// The applied verdict.
        approved: bool,
    },
    /// A candidate arrival ([`ProbabilisticNetwork::extend`]).
    Extend {
        /// First endpoint.
        a: AttributeId,
        /// Second endpoint.
        b: AttributeId,
        /// Matcher confidence.
        confidence: f64,
    },
    /// A candidate retirement ([`ProbabilisticNetwork::retire`]).
    Retire {
        /// The retired candidate (pre-retirement id).
        candidate: CandidateId,
    },
}

/// Where journaled events go. `smn-storage` implements this for its
/// in-memory WAL buffer and its file-backed appender; tests implement
/// it with a plain `Vec`.
pub trait EventSink {
    /// Records one applied event. Sinks must preserve order.
    fn record(&mut self, event: &NetworkEvent);
}

impl EventSink for Vec<NetworkEvent> {
    fn record(&mut self, event: &NetworkEvent) {
        self.push(*event);
    }
}

/// Applies one event to a recovered network — the replay half of crash
/// recovery. Mirrors exactly what the live path did when the event was
/// journaled; a failure (which a faithfully replayed log never
/// produces) is reported, never panicked.
pub fn apply_event(pn: &mut ProbabilisticNetwork, event: &NetworkEvent) -> Result<(), String> {
    match *event {
        NetworkEvent::Assert { candidate, approved } => {
            if candidate.index() >= pn.network().candidate_count() {
                return Err(format!("assert of unknown candidate {candidate}"));
            }
            pn.assert_candidate(Assertion { candidate, approved }).map_err(|e| e.to_string())
        }
        NetworkEvent::Extend { a, b, confidence } => {
            pn.extend(a, b, confidence).map(|_| ()).map_err(|e| e.to_string())
        }
        NetworkEvent::Retire { candidate } => pn.retire(candidate).map_err(|e| e.to_string()),
    }
}

/// Maintains a session-history mirror under one event, with the same
/// rules as [`Session`](crate::Session): an applied assertion appends,
/// a retirement drops the retiree's assertions and renumbers later ids
/// down by one, an arrival changes nothing.
pub fn apply_to_history(history: &mut Vec<Assertion>, event: &NetworkEvent) {
    match *event {
        NetworkEvent::Assert { candidate, approved } => {
            history.push(Assertion { candidate, approved });
        }
        NetworkEvent::Retire { candidate } => {
            history.retain(|a| a.candidate != candidate);
            for a in history.iter_mut() {
                if a.candidate > candidate {
                    a.candidate = CandidateId(a.candidate.0 - 1);
                }
            }
        }
        NetworkEvent::Extend { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_mirror_follows_retirement_renumbering() {
        let mut h = Vec::new();
        apply_to_history(
            &mut h,
            &NetworkEvent::Assert { candidate: CandidateId(1), approved: true },
        );
        apply_to_history(
            &mut h,
            &NetworkEvent::Assert { candidate: CandidateId(3), approved: false },
        );
        apply_to_history(
            &mut h,
            &NetworkEvent::Extend { a: AttributeId(0), b: AttributeId(1), confidence: 0.5 },
        );
        apply_to_history(&mut h, &NetworkEvent::Retire { candidate: CandidateId(1) });
        assert_eq!(h, vec![Assertion { candidate: CandidateId(2), approved: false }]);
    }

    #[test]
    fn network_state_round_trips_monolithic_and_sharded() {
        use crate::sampling::SamplerConfig;
        use crate::shard::ShardingConfig;
        let sampler = SamplerConfig { seed: 7, ..SamplerConfig::default() };
        for sharding in [None, Some(ShardingConfig::default())] {
            let net = crate::testutil::fig1_network();
            let mut pn = match sharding {
                None => ProbabilisticNetwork::new(net, sampler),
                Some(s) => ProbabilisticNetwork::new_sharded(net, sampler, s),
            };
            pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
            let state = pn.to_state();
            let restored = ProbabilisticNetwork::from_state(&state).unwrap();
            assert_eq!(restored.to_state(), state, "state extraction is stable");
            assert_eq!(restored.probabilities(), pn.probabilities(), "recompute is bit-exact");
            assert_eq!(restored.entropy(), pn.entropy());
            assert_eq!(restored.effort(), pn.effort());
            assert_eq!(restored.is_sharded(), pn.is_sharded());
        }
    }

    #[test]
    fn replay_reproduces_the_live_run() {
        use crate::sampling::SamplerConfig;
        let sampler = SamplerConfig { seed: 11, ..SamplerConfig::default() };
        let mut live = ProbabilisticNetwork::new(crate::testutil::fig1_network(), sampler);
        let mut journal: Vec<NetworkEvent> = Vec::new();
        let events = [
            NetworkEvent::Assert { candidate: CandidateId(2), approved: true },
            NetworkEvent::Retire { candidate: CandidateId(4) },
            NetworkEvent::Extend { a: AttributeId(0), b: AttributeId(3), confidence: 0.8 },
            NetworkEvent::Assert { candidate: CandidateId(0), approved: false },
        ];
        let mut history = Vec::new();
        for e in &events {
            apply_event(&mut live, e).unwrap();
            journal.record(e);
            apply_to_history(&mut history, e);
        }
        // recover: rebuild from the pre-run state image and replay the log
        let mut recovered = ProbabilisticNetwork::from_state(
            &ProbabilisticNetwork::new(crate::testutil::fig1_network(), sampler).to_state(),
        )
        .unwrap();
        let mut recovered_history = Vec::new();
        for e in &journal {
            apply_event(&mut recovered, e).unwrap();
            apply_to_history(&mut recovered_history, e);
        }
        assert_eq!(recovered.to_state(), live.to_state());
        assert_eq!(recovered.probabilities(), live.probabilities());
        assert_eq!(recovered_history, history);
        // c2's assertion survives the retirement of the *later* id c4
        assert_eq!(
            history,
            vec![
                Assertion { candidate: CandidateId(2), approved: true },
                Assertion { candidate: CandidateId(0), approved: false },
            ]
        );
    }

    #[test]
    fn feedback_state_round_trips() {
        let mut fb = Feedback::new(6);
        fb.approve(CandidateId(1));
        fb.disapprove(CandidateId(4));
        let state = FeedbackState::of(&fb);
        assert_eq!(state.build(6).unwrap(), fb);
        assert!(state.build(5).is_err(), "size mismatch is a typed error");
        let bad = FeedbackState { len: 6, approved: vec![1], disapproved: vec![1] };
        assert!(bad.build(6).is_err(), "double assertion is a typed error");
        let oob = FeedbackState { len: 6, approved: vec![9], disapproved: vec![] };
        assert!(oob.build(6).is_err(), "out-of-range id is a typed error");
    }
}
