//! # smn-core
//!
//! The paper's contribution: *pay-as-you-go reconciliation* on a
//! probabilistic matching network (§II–§V of "Pay-as-you-go Reconciliation
//! in Schema Matching Networks", ICDE 2014).
//!
//! The crate implements the three framework steps of Fig. 2:
//!
//! 1. **Probability computation** (§III). [`probability::ProbabilisticNetwork`]
//!    assigns every candidate correspondence the probability of appearing in
//!    a *matching instance* (maximal, constraint-consistent, feedback-
//!    respecting candidate subset, Definition 1). Exact probabilities
//!    ([`exact`]) enumerate all instances; the tractable path is the
//!    non-uniform sampler of Algorithm 3 ([`sampling`]: random walk +
//!    simulated-annealing acceptance `1 − e^{−Δ}`) with view maintenance
//!    under user assertions. Because the constraints only couple
//!    candidates that share a conflict, the model factorizes exactly over
//!    conflict components; the [`shard`] module materializes that as one
//!    independent store per component, making assertions and gain scans
//!    local instead of global.
//! 2. **Uncertainty reduction** (§IV). Network uncertainty is Shannon
//!    entropy over inclusion variables ([`entropy`]); the expert is guided
//!    by one-step expected information gain ([`selection`]), driven through
//!    the generic reduction loop of Algorithm 1 ([`mod@reconcile`]) against an
//!    [`oracle::Oracle`].
//! 3. **Instantiation** (§V). [`instantiate`] approximates the NP-complete
//!    minimal-repair/max-likelihood instantiation problem (Theorem 1) with
//!    Algorithm 2: greedy pick among samples, then randomized local search
//!    with roulette-wheel proposals, a tabu queue and the greedy
//!    [`instance::repair`] of Algorithm 4.
//!
//! [`engine::Session`] ties the steps into the pay-as-you-go loop a
//! downstream application drives. See the repository examples.

// Lets the shared fixture source (smn-testkit's `fixtures.rs`, included
// below as `testutil`) refer to this crate by its external name.
extern crate self as smn_core;

pub mod engine;
pub mod entropy;
pub mod exact;
pub mod feedback;
pub mod fenwick;
pub mod gains;
pub mod instance;
pub mod instantiate;
pub mod metrics;
pub mod network;
pub mod oracle;
pub mod persist;
pub mod pool;
pub mod probability;
pub mod reconcile;
pub mod remote;
pub mod sampling;
pub mod selection;
pub mod shard;

/// The shared workspace fixtures (`smn-testkit`), included at the source
/// level: unit tests compile this crate separately from the library the
/// testkit links, so importing the testkit *crate* here would yield
/// mismatched types — importing its *source* does not. Fixtures used only
/// by the integration suites are dead in this inclusion, hence the allow.
#[cfg(test)]
#[path = "../../testkit/src/fixtures.rs"]
#[allow(dead_code)]
pub(crate) mod testutil;

pub use engine::{Question, Session, SessionConfig, Strategy};
pub use entropy::{binary_entropy, entropy_of};
pub use feedback::{Assertion, Feedback};
pub use gains::{GainCache, GainSource};
pub use instantiate::{Instantiation, InstantiationConfig};
pub use metrics::{kl_divergence, kl_ratio, PrecisionRecall};
pub use network::MatchingNetwork;
pub use oracle::{CrowdOracle, GroundTruthOracle, NoisyOracle, Oracle};
pub use persist::{EventSink, NetworkEvent, NetworkState};
pub use probability::{AssertError, CommitExec, CommitOutcome, ProbabilisticNetwork};
pub use reconcile::{reconcile, ReconciliationGoal, StepOutcome, TracePoint};
pub use remote::ShardHost;
pub use sampling::SamplerConfig;
pub use selection::{
    ConfidenceOrderSelection, InformationGainSelection, MaxEntropySelection, RandomSelection,
    SelectionStrategy, TIE_EPSILON,
};
pub use shard::ShardingConfig;
