//! Shared test fixtures.

use crate::network::MatchingNetwork;
use smn_constraints::ConstraintConfig;
use smn_schema::{AttributeId, CandidateSet, CatalogBuilder, InteractionGraph};

/// The motivating example of §II-A / Fig. 1, also used by Example 1.
///
/// Attributes: a0 = productionDate (EoverI), a1 = date (BBC),
/// a2 = releaseDate (DVDizzy), a3 = screenDate (DVDizzy).
/// Candidates: c0 = a0–a1, c1 = a1–a2, c2 = a0–a2, c3 = a1–a3, c4 = a0–a3.
///
/// Under the one-to-one + (triangle) cycle constraints the maximal matching
/// instances are exactly:
///
/// * `{c0, c1, c2}` and `{c0, c3, c4}` (the paper's I1 and I2), and
/// * `{c1, c4}` and `{c2, c3}` (mixed instances the paper's Example 1
///   glosses over: they are consistent and nothing can be added — adding
///   `c0` would complete an open cycle, anything else violates 1-1).
///
/// All exact probabilities are therefore 0.5 and the exact network entropy
/// is 5 bits.
pub fn fig1_network() -> MatchingNetwork {
    let mut b = CatalogBuilder::new();
    b.add_schema_with_attributes("EoverI", ["productionDate"]).unwrap();
    b.add_schema_with_attributes("BBC", ["date"]).unwrap();
    b.add_schema_with_attributes("DVDizzy", ["releaseDate", "screenDate"]).unwrap();
    let cat = b.build();
    let g = InteractionGraph::complete(3);
    let mut cs = CandidateSet::new(&cat);
    let a = AttributeId;
    cs.add(&cat, Some(&g), a(0), a(1), 0.9).unwrap(); // c0
    cs.add(&cat, Some(&g), a(1), a(2), 0.8).unwrap(); // c1
    cs.add(&cat, Some(&g), a(0), a(2), 0.8).unwrap(); // c2
    cs.add(&cat, Some(&g), a(1), a(3), 0.7).unwrap(); // c3
    cs.add(&cat, Some(&g), a(0), a(3), 0.7).unwrap(); // c4
    MatchingNetwork::new(cat, g, cs, ConstraintConfig::default())
}

/// A small random-ish network: `k` schemas in a complete graph, `m`
/// attributes each, candidates from a perturbed identity ground truth.
/// Deterministic in `seed`. Returns the network and the ground truth as
/// candidate-id sets is not possible (truth may be missing from C), so the
/// truth correspondences are returned.
pub fn perturbed_network(
    k: usize,
    m: usize,
    precision: f64,
    recall: f64,
    seed: u64,
) -> (MatchingNetwork, Vec<smn_schema::Correspondence>) {
    use smn_matchers::matcher::match_network;
    use smn_matchers::PerturbationMatcher;
    let mut b = CatalogBuilder::new();
    for s in 0..k {
        b.add_schema_with_attributes(format!("s{s}"), (0..m).map(|i| format!("a{s}_{i}"))).unwrap();
    }
    let cat = b.build();
    let g = InteractionGraph::complete(k);
    // identity ground truth: attribute i of every schema denotes concept i
    let mut truth = Vec::new();
    for s1 in 0..k {
        for s2 in (s1 + 1)..k {
            for i in 0..m {
                truth.push(smn_schema::Correspondence::new(
                    AttributeId::from_index(s1 * m + i),
                    AttributeId::from_index(s2 * m + i),
                ));
            }
        }
    }
    let matcher = PerturbationMatcher::new(truth.iter().copied(), precision, recall, seed);
    let cs = match_network(&matcher, &cat, &g).expect("valid candidates");
    (MatchingNetwork::new(cat, g, cs, ConstraintConfig::default()), truth)
}
