//! The pay-as-you-go session: the user-facing facade over the three
//! framework steps (Fig. 2 of the paper).
//!
//! A [`Session`] wraps a [`ProbabilisticNetwork`] with a selection strategy
//! and exposes the interactive loop an application drives:
//!
//! ```text
//! let mut session = Session::new(network, SessionConfig::default());
//! while let Some(question) = session.next_question() {
//!     let verdict = ask_the_expert(question);
//!     session.answer(question.candidate, verdict)?;
//!     let matching = session.instantiate_default(); // usable at any time
//! }
//! ```

use crate::feedback::Assertion;
use crate::instantiate::{instantiate, Instantiation, InstantiationConfig};
use crate::network::MatchingNetwork;
use crate::oracle::Oracle;
use crate::persist::{EventSink, NetworkEvent};
use crate::probability::{AssertError, ProbabilisticNetwork};
use crate::reconcile::{reconcile, ReconciliationGoal, TracePoint};
use crate::sampling::SamplerConfig;
use crate::selection::{InformationGainSelection, RandomSelection, SelectionStrategy};
use crate::shard::ShardingConfig;
use smn_schema::{CandidateId, Correspondence};

/// Which built-in selection strategy a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Random ordering (baseline).
    Random,
    /// Information-gain ordering (the paper's heuristic).
    InformationGain,
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Sampler parameters for probability computation.
    pub sampler: SamplerConfig,
    /// Selection strategy.
    pub strategy: Strategy,
    /// Seed for strategy randomness (tie breaking / random baseline).
    pub strategy_seed: u64,
    /// Sample representation: [`ShardingConfig::disabled`] (the default)
    /// keeps one monolithic store; an enabled config shards the store by
    /// conflict component (see
    /// [`ProbabilisticNetwork::new_sharded`]).
    pub sharding: ShardingConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            sampler: SamplerConfig::default(),
            strategy: Strategy::InformationGain,
            strategy_seed: 0xACE,
            sharding: ShardingConfig::disabled(),
        }
    }
}

/// A question the session wants answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Question {
    /// Candidate id to pass back to [`Session::answer`].
    pub candidate: CandidateId,
    /// The attribute pair behind it.
    pub correspondence: Correspondence,
    /// Current probability of the candidate.
    pub probability: f64,
    /// The selection strategy's score for this pick — the information gain
    /// for the paper's heuristic, the marginal entropy / matcher
    /// confidence for the ablations, `None` for scoreless picks (random
    /// baseline, certain-candidate fallbacks). Carried on the question so
    /// dispatchers and experiment bins can log *why* it was chosen without
    /// recomputing gains.
    pub score: Option<f64>,
}

/// An interactive pay-as-you-go reconciliation session.
pub struct Session {
    pn: ProbabilisticNetwork,
    strategy: Box<dyn SelectionStrategy>,
    asked: Vec<Assertion>,
    /// Rollback points: the pre-integration network fork and history
    /// length of every undoable step ([`Session::answer`] pushes one per
    /// integrated assertion, [`Session::run`] one per run). Forks are
    /// copy-on-write, so an entry costs pointers — but each entry pins
    /// the snapshot versions it refers to, so the stack is capped at
    /// [`UNDO_DEPTH`](Self::UNDO_DEPTH): the oldest rollback point is
    /// dropped (freeing its pinned snapshots) when a new one exceeds it.
    undo_stack: Vec<(ProbabilisticNetwork, usize)>,
    /// Durability journal: every *applied* mutation (assert, extend,
    /// retire) is recorded here, in order, for write-ahead logging. While
    /// a journal is attached [`undo`](Session::undo) is disabled — an
    /// append-only log cannot represent a rollback.
    journal: Option<Box<dyn EventSink>>,
}

impl Session {
    /// Maximum retained rollback points; see [`Session::undo`].
    pub const UNDO_DEPTH: usize = 32;

    /// Creates a session: builds the probabilistic network (initial
    /// sampling) and installs the selection strategy.
    pub fn new(network: MatchingNetwork, config: SessionConfig) -> Self {
        let strategy: Box<dyn SelectionStrategy> = match config.strategy {
            Strategy::Random => Box::new(RandomSelection::new(config.strategy_seed)),
            Strategy::InformationGain => {
                Box::new(InformationGainSelection::new(config.strategy_seed))
            }
        };
        Self {
            pn: ProbabilisticNetwork::new_sharded(network, config.sampler, config.sharding),
            strategy,
            asked: Vec::new(),
            undo_stack: Vec::new(),
            journal: None,
        }
    }

    /// Re-opens a session over a *recovered* probabilistic network — the
    /// crash-recovery path of `smn-storage`, where the network was loaded
    /// from a snapshot (plus replayed write-ahead-log suffix) rather than
    /// built by initial sampling, and `history` is the recovered
    /// assertion history. The selection strategy restarts from
    /// `config.strategy_seed`; the sampler/sharding members of `config`
    /// are ignored (the recovered network already carries its own).
    pub fn resume(
        pn: ProbabilisticNetwork,
        history: Vec<Assertion>,
        config: SessionConfig,
    ) -> Self {
        let strategy: Box<dyn SelectionStrategy> = match config.strategy {
            Strategy::Random => Box::new(RandomSelection::new(config.strategy_seed)),
            Strategy::InformationGain => {
                Box::new(InformationGainSelection::new(config.strategy_seed))
            }
        };
        Self { pn, strategy, asked: history, undo_stack: Vec::new(), journal: None }
    }

    /// Creates a session with a custom selection strategy.
    pub fn with_strategy(
        network: MatchingNetwork,
        sampler: SamplerConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> Self {
        Self {
            pn: ProbabilisticNetwork::new(network, sampler),
            strategy,
            asked: Vec::new(),
            undo_stack: Vec::new(),
            journal: None,
        }
    }

    /// Attaches a durability journal: from here on every applied
    /// mutation — integrated assertions (from [`answer`](Session::answer)
    /// or [`run`](Session::run)), arrivals and retirements — is recorded
    /// into `sink` in application order. Attaching clears the undo stack
    /// and disables [`undo`](Session::undo): an append-only log has no
    /// representation for a rollback, so a journaled session is
    /// forward-only. Replaces (and drops) any previously attached sink.
    pub fn set_journal(&mut self, sink: Box<dyn EventSink>) {
        self.undo_stack.clear();
        self.journal = Some(sink);
    }

    /// Detaches and returns the durability journal, if any. Undo stays
    /// unavailable for steps taken while the journal was attached (their
    /// rollback points were never retained), but new steps become
    /// undoable again.
    pub fn take_journal(&mut self) -> Option<Box<dyn EventSink>> {
        self.journal.take()
    }

    /// Records an applied event into the journal, if one is attached.
    fn journal_event(&mut self, event: NetworkEvent) {
        if let Some(journal) = self.journal.as_mut() {
            journal.record(&event);
        }
    }

    /// The probabilistic network state.
    pub fn network(&self) -> &ProbabilisticNetwork {
        &self.pn
    }

    /// Forks the session into an independent what-if branch: the
    /// probabilistic network is shared copy-on-write
    /// ([`ProbabilisticNetwork::fork`]), the strategy (with its RNG state)
    /// and history are cloned. Assertions on either side never leak to the
    /// other. The fork starts with an empty undo stack — it is a new
    /// branch, not a view of this session's past.
    pub fn fork(&self) -> Session {
        Session {
            pn: self.pn.fork(),
            strategy: self.strategy.clone_box(),
            asked: self.asked.clone(),
            undo_stack: Vec::new(),
            journal: None,
        }
    }

    /// Rolls the session back to the state before the most recent undoable
    /// step — one [`answer`](Session::answer) assertion, or one whole
    /// [`run`](Session::run) — restoring the probabilistic network from
    /// its pre-step fork and truncating the history. Returns how many
    /// history entries were rolled back, or `None` with the session
    /// untouched when nothing is undoable (fresh session, the undo stack
    /// was cleared by catalog evolution, or the step fell off the
    /// [`UNDO_DEPTH`](Self::UNDO_DEPTH)-entry history).
    ///
    /// The selection strategy's RNG is deliberately *not* rolled back: an
    /// undone question re-asked may tie-break differently, exactly as a
    /// fresh question would.
    ///
    /// While a durability journal is attached
    /// ([`set_journal`](Session::set_journal)) this always returns `None`:
    /// the write-ahead log is append-only and cannot unsee an event.
    pub fn undo(&mut self) -> Option<usize> {
        if self.journal.is_some() {
            return None;
        }
        let (pn, asked_len) = self.undo_stack.pop()?;
        let rolled_back = self.asked.len() - asked_len;
        self.pn = pn;
        self.asked.truncate(asked_len);
        Some(rolled_back)
    }

    /// The next correspondence the expert should assert, or `None` when the
    /// network is fully reconciled.
    pub fn next_question(&mut self) -> Option<Question> {
        let (candidate, score) = self.strategy.select_with_score(&self.pn)?;
        Some(Question {
            candidate,
            correspondence: self.pn.network().corr(candidate),
            probability: self.pn.probability(candidate),
            score,
        })
    }

    /// Integrates the expert's answer for a candidate.
    ///
    /// Repeating an earlier answer verbatim is a successful no-op;
    /// flipping an earlier answer or approving a candidate that conflicts
    /// with earlier approvals returns the corresponding [`AssertError`]
    /// with the session state untouched. This method never panics on any
    /// `(candidate, approved)` input.
    pub fn answer(&mut self, candidate: CandidateId, approved: bool) -> Result<(), AssertError> {
        let assertion = Assertion { candidate, approved };
        // validate before the undo-snapshot fork: a redundant (Ok-no-op)
        // or rejected answer leaves the model unchanged, so it must not
        // pay a fork — nor any copy-on-write underneath the assert
        if !self.pn.validate_assertion(assertion)? {
            return Ok(());
        }
        let snapshot = (self.pn.fork(), self.asked.len());
        self.pn.assert_candidate(assertion).expect("validated assertion integrates");
        self.push_undo(snapshot);
        self.asked.push(assertion);
        self.journal_event(NetworkEvent::Assert { candidate, approved });
        Ok(())
    }

    /// Retains a rollback point, evicting the oldest beyond
    /// [`UNDO_DEPTH`](Self::UNDO_DEPTH) so undo history cannot pin an
    /// unbounded number of snapshot versions.
    fn push_undo(&mut self, snapshot: (ProbabilisticNetwork, usize)) {
        if self.journal.is_some() {
            // journaled sessions are forward-only; see set_journal
            return;
        }
        if self.undo_stack.len() >= Self::UNDO_DEPTH {
            self.undo_stack.remove(0);
        }
        self.undo_stack.push(snapshot);
    }

    /// Runs the reconciliation loop against an oracle until the goal holds
    /// (Algorithm 1). Returns the trace. A run that integrated anything
    /// becomes one undoable step: [`undo`](Session::undo) rolls back the
    /// whole run.
    pub fn run(&mut self, oracle: &mut dyn Oracle, goal: ReconciliationGoal) -> Vec<TracePoint> {
        let snapshot = (self.pn.fork(), self.asked.len());
        let trace = reconcile(&mut self.pn, self.strategy.as_mut(), oracle, goal);
        if trace.iter().any(|t| t.outcome != crate::reconcile::StepOutcome::Skipped) {
            self.push_undo(snapshot);
        }
        for t in trace.iter().filter(|t| t.outcome != crate::reconcile::StepOutcome::Skipped) {
            self.asked.push(Assertion { candidate: t.candidate, approved: t.approved });
            self.journal_event(NetworkEvent::Assert {
                candidate: t.candidate,
                approved: t.approved,
            });
        }
        trace
    }

    /// Admits a new candidate correspondence to the live session (see
    /// [`ProbabilisticNetwork::extend`]): the probabilistic model is
    /// patched incrementally and the next question reflects the arrival.
    pub fn extend(
        &mut self,
        x: smn_schema::AttributeId,
        y: smn_schema::AttributeId,
        confidence: f64,
    ) -> Result<CandidateId, smn_schema::SchemaError> {
        let id = self.pn.extend(x, y, confidence)?;
        // snapshots preceding a catalog change address a different
        // candidate universe; undoing across evolution is not supported
        self.undo_stack.clear();
        self.journal_event(NetworkEvent::Extend { a: x, b: y, confidence });
        Ok(id)
    }

    /// Retires a candidate from the live session (see
    /// [`ProbabilisticNetwork::retire`]): any assertion on it is
    /// discarded, and the recorded history renumbers to the compacted id
    /// space so [`Session::history`] keeps addressing the surviving
    /// candidates.
    pub fn retire(&mut self, c: CandidateId) -> Result<(), smn_schema::SchemaError> {
        self.pn.retire(c)?;
        self.asked.retain(|a| a.candidate != c);
        for a in &mut self.asked {
            if a.candidate > c {
                a.candidate = CandidateId(a.candidate.0 - 1);
            }
        }
        self.undo_stack.clear();
        self.journal_event(NetworkEvent::Retire { candidate: c });
        Ok(())
    }

    /// Instantiates a trusted matching from the current state
    /// (Algorithm 2); available at any time — the "pay-as-you-go" promise.
    pub fn instantiate(&self, config: InstantiationConfig) -> Instantiation {
        instantiate(&self.pn, config)
    }

    /// [`Session::instantiate`] with default parameters.
    pub fn instantiate_default(&self) -> Instantiation {
        self.instantiate(InstantiationConfig::default())
    }

    /// Current network uncertainty (bits).
    pub fn entropy(&self) -> f64 {
        self.pn.entropy()
    }

    /// Current user effort `E`.
    pub fn effort(&self) -> f64 {
        self.pn.effort()
    }

    /// All assertions integrated so far, in order.
    pub fn history(&self) -> &[Assertion] {
        &self.asked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::testutil::{fig1_network, fig1_truth};
    use smn_schema::AttributeId;

    fn config() -> SessionConfig {
        SessionConfig {
            sampler: SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 3,
                n_min: 50,
                seed: 5,
                chains: 1,
            },
            strategy: Strategy::InformationGain,
            strategy_seed: 9,
            sharding: ShardingConfig::disabled(),
        }
    }

    #[test]
    fn interactive_loop_reconciles() {
        let mut session = Session::new(fig1_network(), config());
        let oracle = GroundTruthOracle::new(fig1_truth());
        let mut steps = 0;
        while let Some(q) = session.next_question() {
            session.answer(q.candidate, oracle.is_true(q.correspondence)).unwrap();
            steps += 1;
            assert!(steps < 10, "must terminate");
        }
        assert_eq!(session.entropy(), 0.0);
        assert_eq!(session.history().len(), steps);
        let m = session.instantiate_default();
        assert_eq!(m.instance.count(), 3);
        assert!(m.instance.contains(CandidateId(0)));
        assert!(m.instance.contains(CandidateId(3)));
        assert!(m.instance.contains(CandidateId(4)));
    }

    #[test]
    fn run_with_oracle_and_budget() {
        let mut session = Session::new(fig1_network(), config());
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        let trace = session.run(&mut oracle, ReconciliationGoal::Budget(1));
        assert_eq!(trace.len(), 1);
        assert_eq!(session.history().len(), 1);
        assert!((session.effort() - 0.2).abs() < 1e-12);
        // instantiation works mid-way (pay-as-you-go)
        let m = session.instantiate_default();
        assert!(session.network().network().index().is_consistent(&m.instance));
    }

    #[test]
    fn question_carries_probability() {
        let mut session = Session::new(fig1_network(), config());
        let q = session.next_question().unwrap();
        assert!((q.probability - 0.5).abs() < 1e-12);
        assert_eq!(session.network().network().corr(q.candidate), q.correspondence);
    }

    #[test]
    fn random_strategy_session_also_terminates() {
        let mut session =
            Session::new(fig1_network(), SessionConfig { strategy: Strategy::Random, ..config() });
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        session.run(&mut oracle, ReconciliationGoal::Complete);
        assert_eq!(session.entropy(), 0.0);
    }

    #[test]
    fn redundant_answer_is_ok_and_not_double_counted() {
        // regression: the empty re-assertion guard used to fall through and
        // redundantly re-run maintenance; now it is a true no-op
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        let effort = session.effort();
        let history = session.history().len();
        session.answer(CandidateId(2), true).unwrap();
        assert_eq!(session.effort(), effort);
        assert_eq!(session.history().len(), history, "no-op answers stay out of the history");
    }

    #[test]
    fn contradictory_answer_returns_err_instead_of_panicking() {
        // regression: a flipped answer used to reach Feedback::assert and
        // panic through the public API
        use crate::probability::AssertError;
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        assert_eq!(
            session.answer(CandidateId(2), false),
            Err(AssertError::Contradictory {
                candidate: CandidateId(2),
                previously_approved: true
            })
        );
        session.answer(CandidateId(0), false).unwrap();
        assert_eq!(
            session.answer(CandidateId(0), true),
            Err(AssertError::Contradictory {
                candidate: CandidateId(0),
                previously_approved: false
            })
        );
        // the rejected flips left the session usable
        assert_eq!(session.network().probability(CandidateId(2)), 1.0);
        assert_eq!(session.history().len(), 2);
    }

    #[test]
    fn session_evolves_online_and_renumbers_history() {
        let sharded_config =
            SessionConfig { sharding: crate::shard::ShardingConfig::default(), ..config() };
        let mut session = Session::new(fig1_network(), sharded_config);
        session.answer(CandidateId(2), true).unwrap();
        session.answer(CandidateId(4), false).unwrap();
        assert_eq!(session.history().len(), 2);
        // retire the approved c2: its history entry drops, c4's shifts to c3
        session.retire(CandidateId(2)).unwrap();
        assert_eq!(session.network().network().candidate_count(), 4);
        assert_eq!(session.history(), &[Assertion { candidate: CandidateId(3), approved: false }]);
        assert_eq!(session.network().probability(CandidateId(3)), 0.0);
        // a new arrival becomes askable and reconciliation still terminates
        let id = session.extend(AttributeId(0), AttributeId(2), 0.8).unwrap();
        assert_eq!(id, CandidateId(4));
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        session.run(&mut oracle, ReconciliationGoal::Complete);
        assert_eq!(session.entropy(), 0.0);
    }

    #[test]
    fn question_carries_the_selection_score() {
        let mut session = Session::new(fig1_network(), config());
        let q = session.next_question().unwrap();
        // the IG strategy's best first-step gain on fig1 is exactly 2 bits
        // (see probability::tests::example1_ordering_effect)
        assert!((q.score.expect("IG picks carry their gain") - 2.0).abs() < 1e-9);
        // the random baseline is scoreless
        let mut session =
            Session::new(fig1_network(), SessionConfig { strategy: Strategy::Random, ..config() });
        assert_eq!(session.next_question().unwrap().score, None);
    }

    #[test]
    fn forked_session_diverges_without_leaking() {
        let mut base = Session::new(fig1_network(), config());
        base.answer(CandidateId(2), true).unwrap();
        let mut branch = base.fork();
        assert_eq!(branch.history(), base.history());
        branch.answer(CandidateId(0), false).unwrap();
        assert_eq!(base.history().len(), 1, "branch answers stay on the branch");
        assert_ne!(branch.network().probabilities(), base.network().probabilities());
        // both sides keep reconciling independently
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        base.run(&mut oracle, ReconciliationGoal::Complete);
        assert_eq!(base.entropy(), 0.0);
        assert!(branch.network().probability(CandidateId(0)) == 0.0);
    }

    #[test]
    fn undo_rolls_back_single_answers() {
        let mut session = Session::new(fig1_network(), config());
        assert_eq!(session.undo(), None, "nothing to undo on a fresh session");
        let before = session.network().probabilities().to_vec();
        session.answer(CandidateId(2), true).unwrap();
        session.answer(CandidateId(0), false).unwrap();
        assert_eq!(session.history().len(), 2);
        assert_eq!(session.undo(), Some(1));
        assert_eq!(session.history().len(), 1);
        assert!(session.network().feedback().approved().contains(CandidateId(2)));
        assert!(!session.network().feedback().is_asserted(CandidateId(0)));
        assert_eq!(session.undo(), Some(1));
        assert_eq!(session.network().probabilities(), &before[..]);
        assert!((session.effort() - 0.0).abs() < 1e-12);
        assert_eq!(session.undo(), None);
    }

    #[test]
    fn undo_rolls_back_a_whole_run_and_redundant_answers_are_not_undoable() {
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        // a same-way re-answer is a no-op and must not create an undo point
        session.answer(CandidateId(2), true).unwrap();
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        let trace = session.run(&mut oracle, ReconciliationGoal::Complete);
        assert!(!trace.is_empty());
        assert_eq!(session.undo(), Some(trace.len()), "one undo rolls back the whole run");
        assert_eq!(session.history().len(), 1);
        assert_eq!(session.undo(), Some(1));
        assert_eq!(session.history().len(), 0);
        assert_eq!(session.undo(), None);
    }

    #[test]
    fn undo_history_is_capped() {
        // a larger catalog so > UNDO_DEPTH distinct answers exist
        let (net, _) = crate::testutil::perturbed_network(3, 16, 0.7, 0.9, 3);
        let n = net.candidate_count();
        assert!(n > Session::UNDO_DEPTH + 1);
        let mut session = Session::new(net, config());
        for i in 0..Session::UNDO_DEPTH + 5 {
            session.answer(CandidateId(i as u32), false).unwrap();
        }
        let mut undone = 0;
        while session.undo().is_some() {
            undone += 1;
        }
        assert_eq!(undone, Session::UNDO_DEPTH, "only the capped history is undoable");
        assert_eq!(session.history().len(), 5, "older steps stay integrated");
    }

    #[test]
    fn evolution_clears_the_undo_stack() {
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        session.retire(CandidateId(4)).unwrap();
        assert_eq!(session.undo(), None, "undo across a retirement is refused");
        session.answer(CandidateId(0), false).unwrap();
        let id = session.extend(AttributeId(0), AttributeId(3), 0.7).unwrap();
        assert!(id.index() > 0);
        assert_eq!(session.undo(), None, "undo across an arrival is refused");
    }

    #[test]
    fn journal_records_every_applied_mutation_in_order() {
        use crate::persist::{EventSink, NetworkEvent};
        // a sink the test can still read after the session consumed the Box
        struct Shared(std::rc::Rc<std::cell::RefCell<Vec<NetworkEvent>>>);
        impl EventSink for Shared {
            fn record(&mut self, event: &NetworkEvent) {
                self.0.borrow_mut().push(*event);
            }
        }
        let events = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut session = Session::new(fig1_network(), config());
        session.set_journal(Box::new(Shared(events.clone())));
        session.answer(CandidateId(2), true).unwrap();
        // rejected and redundant answers must stay out of the journal
        assert!(session.answer(CandidateId(2), false).is_err());
        session.answer(CandidateId(2), true).unwrap();
        session.retire(CandidateId(4)).unwrap();
        let id = session.extend(AttributeId(0), AttributeId(3), 0.8).unwrap();
        assert_eq!(id, CandidateId(4));
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        let trace = session.run(&mut oracle, ReconciliationGoal::Budget(1));
        let mut expect = vec![
            NetworkEvent::Assert { candidate: CandidateId(2), approved: true },
            NetworkEvent::Retire { candidate: CandidateId(4) },
            NetworkEvent::Extend { a: AttributeId(0), b: AttributeId(3), confidence: 0.8 },
        ];
        for t in &trace {
            if t.outcome != crate::reconcile::StepOutcome::Skipped {
                expect.push(NetworkEvent::Assert { candidate: t.candidate, approved: t.approved });
            }
        }
        assert_eq!(*events.borrow(), expect);
    }

    #[test]
    fn journaled_session_refuses_undo() {
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        session.set_journal(Box::new(Vec::new()));
        assert_eq!(session.undo(), None, "attaching the journal cleared the stack");
        session.answer(CandidateId(0), false).unwrap();
        assert_eq!(session.undo(), None, "journaled steps are forward-only");
        session.take_journal();
        assert_eq!(session.undo(), None, "journaled steps kept no rollback points");
        session.answer(CandidateId(3), true).unwrap();
        assert_eq!(session.undo(), Some(1), "detached sessions are undoable again");
    }

    #[test]
    fn resume_restores_history_and_keeps_reconciling() {
        let mut session = Session::new(fig1_network(), config());
        session.answer(CandidateId(2), true).unwrap();
        let pn = session.network().fork();
        let history = session.history().to_vec();
        let mut resumed = Session::resume(pn, history, config());
        assert_eq!(resumed.history(), session.history());
        assert_eq!(resumed.network().probabilities(), session.network().probabilities());
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        resumed.run(&mut oracle, ReconciliationGoal::Complete);
        assert_eq!(resumed.entropy(), 0.0);
    }

    #[test]
    fn sharded_session_reconciles_like_the_monolithic_one() {
        let sharded_config =
            SessionConfig { sharding: crate::shard::ShardingConfig::default(), ..config() };
        let mut mono = Session::new(fig1_network(), config());
        let mut sharded = Session::new(fig1_network(), sharded_config);
        assert!(sharded.network().is_sharded());
        assert_eq!(sharded.network().probabilities(), mono.network().probabilities());
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        let trace_m = mono.run(&mut oracle, ReconciliationGoal::Complete);
        let mut oracle = GroundTruthOracle::new(fig1_truth());
        let trace_s = sharded.run(&mut oracle, ReconciliationGoal::Complete);
        assert_eq!(trace_m, trace_s, "exhausted fig1: identical traces");
        assert_eq!(sharded.entropy(), 0.0);
    }
}
