//! Correspondence-selection strategies — implementations of the `select`
//! routine of Algorithm 1 (§IV-D).
//!
//! * [`RandomSelection`] — the paper's baseline: a uniformly random
//!   uncertain candidate ("an expert working without any support tools").
//! * [`InformationGainSelection`] — the paper's heuristic: the candidate
//!   with maximal expected uncertainty reduction (Eq. 5), ties broken
//!   randomly.
//! * [`MaxEntropySelection`] — ablation: the candidate whose own
//!   probability is closest to ½ (maximal marginal entropy). Much cheaper
//!   than information gain but blind to correlations between candidates.
//! * [`ConfidenceOrderSelection`] — ablation: ascending matcher confidence,
//!   the classic pairwise post-matching review order.

use crate::gains::GainSource;
use crate::probability::ProbabilisticNetwork;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;
use smn_schema::CandidateId;

/// Uniformly selects a candidate satisfying `pred` by counted index scan —
/// no allocation of the eligible pool. Consumes exactly one RNG draw (like
/// `choose` on a materialized pool would), and only when the pool is
/// non-empty.
///
/// Public because the service-layer dispatcher replicates the built-in
/// strategies' RNG stream draw for draw (its single-worker schedule must
/// replay a sequential session exactly).
pub fn nth_matching(
    n: usize,
    rng: &mut impl rand::Rng,
    pred: impl Fn(CandidateId) -> bool,
) -> Option<CandidateId> {
    let count = (0..n).map(CandidateId::from_index).filter(|&c| pred(c)).count();
    if count == 0 {
        return None;
    }
    let k = rng.random_range(0..count);
    (0..n).map(CandidateId::from_index).filter(|&c| pred(c)).nth(k)
}

/// Uniformly selects an unasserted candidate via [`nth_matching`].
fn random_unasserted(pn: &ProbabilisticNetwork, rng: &mut StdRng) -> Option<CandidateId> {
    let n = pn.network().candidate_count();
    nth_matching(n, rng, |c| !pn.feedback().is_asserted(c))
}

/// The tie tolerance of [`scored_argmax`]: scores within this of the
/// running best count as tied. Shared with the gain cache's lazy argmax
/// window ([`crate::gains::GainSource::cached_gain_window`]), whose
/// `2 · TIE_EPSILON` cut is what makes window selection provably replay
/// the full-pool scan.
pub const TIE_EPSILON: f64 = 1e-12;

/// Argmax with random tie-breaking over a scored pool: collects every
/// candidate whose score lies within [`TIE_EPSILON`] of the maximum and
/// resolves with exactly one RNG draw — the paper's "if the highest
/// information gain is observed for multiple correspondences, one is
/// randomly chosen".
///
/// This is the single definition of the selection kernel: both
/// [`InformationGainSelection`] and the `smn-service` dispatcher (whose
/// single-worker schedule must replay a sequential session draw for
/// draw) call it, so the tie window and the RNG consumption cannot
/// drift apart. `scores` is aligned with `pool`; `None` iff the pool is
/// empty (no draw consumed).
pub fn scored_argmax(
    pool: &[CandidateId],
    scores: &[f64],
    rng: &mut StdRng,
) -> Option<(CandidateId, f64)> {
    debug_assert_eq!(pool.len(), scores.len());
    let mut best_score = f64::NEG_INFINITY;
    let mut best: Vec<CandidateId> = Vec::new();
    for (&c, &score) in pool.iter().zip(scores) {
        if score > best_score + TIE_EPSILON {
            best_score = score;
            best.clear();
            best.push(c);
        } else if (score - best_score).abs() <= TIE_EPSILON {
            best.push(c);
        }
    }
    best.choose(rng).copied().map(|c| (c, best_score))
}

/// Picks the next candidate to show the expert.
pub trait SelectionStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Selects an uncertain candidate, or `None` when every candidate is
    /// certain (reconciliation finished).
    fn select(&mut self, pn: &ProbabilisticNetwork) -> Option<CandidateId>;

    /// Like [`select`](Self::select), additionally reporting the scalar
    /// score that justified the pick (the information gain for the
    /// paper's heuristic, the marginal entropy / matcher confidence for
    /// the ablations) so callers — the session, the service dispatcher,
    /// the experiment bins — can log *why* a question was chosen without
    /// recomputing gains. `None` means the strategy has no meaningful
    /// scalar for this pick (random selection, fallback picks).
    ///
    /// The default delegates to [`select`](Self::select) with no score;
    /// strategies that already compute one should override both so the two
    /// entry points consume identical RNG streams.
    fn select_with_score(
        &mut self,
        pn: &ProbabilisticNetwork,
    ) -> Option<(CandidateId, Option<f64>)> {
        self.select(pn).map(|c| (c, None))
    }

    /// Clones the strategy behind a box — what lets a
    /// [`Session`](crate::Session) fork mid-reconciliation.
    fn clone_box(&self) -> Box<dyn SelectionStrategy>;
}

/// Uniformly random *unasserted* candidate — the paper's baseline of
/// §VI-C: "an expert working without any support tools" reviews
/// correspondences in arbitrary order, including ones the probabilistic
/// model already considers certain (the expert cannot know). This is what
/// makes the baseline's uncertainty curve stretch towards 100% effort in
/// Fig. 9.
#[derive(Debug, Clone)]
pub struct RandomSelection {
    rng: StdRng,
}

impl RandomSelection {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl SelectionStrategy for RandomSelection {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, pn: &ProbabilisticNetwork) -> Option<CandidateId> {
        random_unasserted(pn, &mut self.rng)
    }

    fn clone_box(&self) -> Box<dyn SelectionStrategy> {
        Box::new(self.clone())
    }
}

/// Maximal information gain (the paper's heuristic, §IV-D).
///
/// Selection runs through the network's shared gain cache by default
/// ([`crate::gains::GainSource`]): only shards dirtied since the last
/// pick are re-priced and the argmax runs over the cached tie window —
/// `O(|C_dirty| + window)` instead of a full `O(|C|)` gain scan — with
/// picks, scores and RNG stream identical to the fresh scan by
/// construction. [`without_cache`](Self::without_cache) keeps the fresh
/// scan available as the differential reference.
#[derive(Debug, Clone)]
pub struct InformationGainSelection {
    rng: StdRng,
    /// Optional cap: evaluate the (expensive) gain only on the `limit`
    /// candidates with the highest marginal entropy. `None` evaluates all
    /// uncertain candidates, as the paper does.
    pub limit: Option<usize>,
    /// `true` bypasses the gain cache and rescans the full pool every
    /// pick — the reference the differential suites compare against.
    fresh_scan: bool,
}

impl InformationGainSelection {
    /// Creates the strategy with a deterministic tie-breaking seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), limit: None, fresh_scan: false }
    }

    /// Caps the number of gain evaluations per step (scaling knob).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Disables the gain cache: every pick rescans the full uncertain
    /// pool. Trace-identical to the cached default (that is the cache's
    /// contract, and what the differential suites certify) — this is the
    /// reference implementation, and a fallback should the cache ever
    /// need ruling out.
    pub fn without_cache(mut self) -> Self {
        self.fresh_scan = true;
        self
    }
}

impl SelectionStrategy for InformationGainSelection {
    fn name(&self) -> &'static str {
        "information-gain"
    }

    fn select(&mut self, pn: &ProbabilisticNetwork) -> Option<CandidateId> {
        self.select_with_score(pn).map(|(c, _)| c)
    }

    fn select_with_score(
        &mut self,
        pn: &ProbabilisticNetwork,
    ) -> Option<(CandidateId, Option<f64>)> {
        let mut pool = pn.uncertain_candidates();
        if pool.is_empty() {
            // no uncertainty left: every further assertion has zero gain,
            // but the expert can still validate certain candidates (this is
            // what lets the heuristic's precision curve continue towards
            // 100% effort in Figs. 9/10). Pick a random unasserted one —
            // scoreless, the pick carries no gain estimate.
            return random_unasserted(pn, &mut self.rng).map(|c| (c, None));
        }
        if let Some(limit) = self.limit {
            if pool.len() > limit {
                // a truncated pool is not "all uncertain candidates", so
                // the cached window does not apply — price it directly
                pool.sort_by(|&a, &b| {
                    let ha = crate::entropy::binary_entropy(pn.probability(a));
                    let hb = crate::entropy::binary_entropy(pn.probability(b));
                    hb.total_cmp(&ha).then(a.cmp(&b))
                });
                pool.truncate(limit);
                let gains = pn.information_gains(&pool);
                return scored_argmax(&pool, &gains, &mut self.rng)
                    .map(|(c, gain)| (c, Some(gain)));
            }
        }
        if self.fresh_scan {
            let gains = pn.information_gains(&pool);
            return scored_argmax(&pool, &gains, &mut self.rng).map(|(c, gain)| (c, Some(gain)));
        }
        // incremental path: re-price dirty shards only, then argmax over
        // the cached tie window — same picks, same RNG draws (see
        // crate::gains for why this replays the full scan exactly)
        let (window, gains) = pn.cached_gain_window();
        scored_argmax(&window, &gains, &mut self.rng).map(|(c, gain)| (c, Some(gain)))
    }

    fn clone_box(&self) -> Box<dyn SelectionStrategy> {
        Box::new(self.clone())
    }
}

/// Maximal marginal entropy: probability closest to ½ (ablation strategy).
#[derive(Debug, Default, Clone)]
pub struct MaxEntropySelection;

impl SelectionStrategy for MaxEntropySelection {
    fn name(&self) -> &'static str {
        "max-entropy"
    }

    fn select(&mut self, pn: &ProbabilisticNetwork) -> Option<CandidateId> {
        pn.uncertain_candidates().into_iter().max_by(|&a, &b| {
            let ha = crate::entropy::binary_entropy(pn.probability(a));
            let hb = crate::entropy::binary_entropy(pn.probability(b));
            ha.total_cmp(&hb).then(b.cmp(&a))
        })
    }

    fn select_with_score(
        &mut self,
        pn: &ProbabilisticNetwork,
    ) -> Option<(CandidateId, Option<f64>)> {
        self.select(pn).map(|c| (c, Some(crate::entropy::binary_entropy(pn.probability(c)))))
    }

    fn clone_box(&self) -> Box<dyn SelectionStrategy> {
        Box::new(self.clone())
    }
}

/// Ascending matcher confidence among uncertain candidates (ablation
/// strategy: review the least confident matches first, ignoring the
/// network structure entirely).
#[derive(Debug, Default, Clone)]
pub struct ConfidenceOrderSelection;

impl SelectionStrategy for ConfidenceOrderSelection {
    fn name(&self) -> &'static str {
        "confidence-order"
    }

    fn select(&mut self, pn: &ProbabilisticNetwork) -> Option<CandidateId> {
        pn.uncertain_candidates().into_iter().min_by(|&a, &b| {
            let ca = pn.network().candidates().confidence(a);
            let cb = pn.network().candidates().confidence(b);
            ca.total_cmp(&cb).then(a.cmp(&b))
        })
    }

    fn select_with_score(
        &mut self,
        pn: &ProbabilisticNetwork,
    ) -> Option<(CandidateId, Option<f64>)> {
        self.select(pn).map(|c| (c, Some(pn.network().candidates().confidence(c))))
    }

    fn clone_box(&self) -> Box<dyn SelectionStrategy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Assertion;
    use crate::sampling::SamplerConfig;
    use crate::testutil::fig1_network;
    use crate::ProbabilisticNetwork;

    fn pn() -> ProbabilisticNetwork {
        ProbabilisticNetwork::new(
            fig1_network(),
            SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 3,
                n_min: 50,
                seed: 5,
                chains: 1,
            },
        )
    }

    #[test]
    fn information_gain_avoids_uninformative_candidate() {
        // In the Fig. 1 network IG(c0) = 1 while IG(c1..c4) = 2 (see
        // probability::tests::example1_ordering_effect) — the heuristic
        // must never pick c0 first.
        let mut strat = InformationGainSelection::new(1);
        for seed in 0..10 {
            let mut s = InformationGainSelection::new(seed);
            let picked = s.select(&pn()).unwrap();
            assert_ne!(picked, CandidateId(0), "c0 has strictly lower gain");
        }
        assert!(strat.select(&pn()).is_some());
    }

    #[test]
    fn random_selection_picks_unasserted_including_certain() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        // c4 is now certain (p = 0) but unasserted — the unassisted expert
        // may still review it
        let mut strat = RandomSelection::new(3);
        let mut picked = std::collections::HashSet::new();
        for _ in 0..60 {
            let c = strat.select(&pn).unwrap();
            assert_ne!(c, CandidateId(2), "asserted candidates are never re-selected");
            picked.insert(c);
        }
        assert!(picked.contains(&CandidateId(4)), "certain-but-unasserted is eligible");
    }

    #[test]
    fn random_and_ig_fall_back_to_certain_candidates() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: true }).unwrap();
        assert_eq!(pn.entropy(), 0.0);
        // c0, c1, c2 are certain but unasserted: both strategies keep going
        let c = RandomSelection::new(0).select(&pn).unwrap();
        assert!(!pn.feedback().is_asserted(c));
        let c = InformationGainSelection::new(0).select(&pn).unwrap();
        assert!(!pn.feedback().is_asserted(c));
        // the uncertainty-only ablation strategies stop here
        assert!(MaxEntropySelection.select(&pn).is_none());
        assert!(ConfidenceOrderSelection.select(&pn).is_none());
    }

    #[test]
    fn strategies_return_none_when_everything_asserted() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(3), approved: true }).unwrap();
        pn.assert_candidate(Assertion { candidate: CandidateId(4), approved: true }).unwrap();
        for c in [0u32, 1, 2] {
            let approved = pn.probability(CandidateId(c)) == 1.0;
            pn.assert_candidate(Assertion { candidate: CandidateId(c), approved }).unwrap();
        }
        assert!(RandomSelection::new(0).select(&pn).is_none());
        assert!(InformationGainSelection::new(0).select(&pn).is_none());
    }

    #[test]
    fn confidence_order_picks_least_confident() {
        let pn = pn();
        // fig1 confidences: c0=0.9, c1=c2=0.8, c3=c4=0.7 → picks c3 (lowest
        // id among the 0.7 pair)
        let mut strat = ConfidenceOrderSelection;
        assert_eq!(strat.select(&pn), Some(CandidateId(3)));
    }

    #[test]
    fn limit_restricts_evaluations_but_still_selects() {
        let mut strat = InformationGainSelection::new(0).with_limit(2);
        let c = strat.select(&pn()).unwrap();
        assert!(c.index() < 5);
    }

    #[test]
    fn max_entropy_picks_an_uncertain_candidate() {
        let mut pn = pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let c = MaxEntropySelection.select(&pn).unwrap();
        let p = pn.probability(c);
        assert!(p > 0.0 && p < 1.0);
    }
}
