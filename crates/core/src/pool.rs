//! A persistent work-stealing worker pool for shard-granular parallelism.
//!
//! Before this module, every parallel section — the sharded fill in
//! [`crate::shard`], the multi-chain sampler pass in [`crate::sampling`],
//! the service's vote fan-out — paid a fresh `std::thread::scope`
//! spawn/join barrier. That is microseconds per call, which is fine for
//! one big fill and ruinous when a federation of thousands of small
//! shards refills a handful of them per assertion. The pool keeps its
//! threads alive for the process lifetime and replaces the barrier with a
//! batch latch.
//!
//! ## Shape
//!
//! * one [`Mutex`]`<VecDeque>` run queue per worker; submitters push
//!   round-robin, workers pop their own queue front-first and steal from
//!   the back of their neighbours' queues when empty;
//! * [`WorkerPool::run`] submits a batch of closures and blocks until all
//!   of them finished, **helping** — the calling thread executes queued
//!   tasks while it waits. Helping is what makes nested batches (a shard
//!   fill task that itself runs a multi-chain pass) deadlock-free: the
//!   inner batch's submitter drains work itself even when every pool
//!   worker is busy;
//! * results land in per-task slots and are returned **in submission
//!   order**, so the merge order — and with it every downstream posterior
//!   and report byte — is a pure function of the task list, never of
//!   scheduling. This is the pool's determinism contract (see
//!   `docs/POOL.md`): thread count and steal order may change wall-clock,
//!   not results;
//! * a panicking task is caught, its batch still completes, and the panic
//!   resumes on the submitting thread — same observable behaviour as a
//!   panicked scoped thread, without poisoning the long-lived workers.
//!
//! [`run_scoped`] keeps the old one-scope-per-batch execution as a
//! reference implementation; the differential suites pin `pool ≡ scoped`
//! on real workloads.
//!
//! ## Safety
//!
//! Tasks borrow the submitting frame (`'env`), while the worker threads
//! are `'static`; the lifetime is erased at submission. This is sound for
//! the same reason scoped threads are: `run` does not return until every
//! task in the batch has executed (or unwound) and been dropped, and the
//! batch state itself is only dropped after every result slot has been
//! drained on the submitting thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of pool work returning `T`, allowed to borrow the submitting
/// frame.
pub type Task<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

type RawTask = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One run queue per worker; submitters push round-robin.
    queues: Vec<Mutex<VecDeque<RawTask>>>,
    /// The high-priority lane: latency-critical batches (the serving
    /// layer's per-shard commit lanes) enqueue here and every worker
    /// checks it before its own queue, so commits overtake queued
    /// background work (gain scans, shard refills) without preempting a
    /// task already running.
    high: Mutex<VecDeque<RawTask>>,
    /// Wakes sleeping workers when work arrives (paired with `sleep`).
    wake: Condvar,
    sleep: Mutex<()>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops work for worker `w`: the high-priority lane first, then its
    /// own queue (front = FIFO), then a steal sweep over the other queues
    /// (back = the submission-order tail, keeping owners and thieves off
    /// the same end).
    fn find_task(&self, w: usize) -> Option<RawTask> {
        if let Some(t) = self.high.lock().expect("pool queue").pop_front() {
            return Some(t);
        }
        if let Some(t) = self.queues[w].lock().expect("pool queue").pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for step in 1..n {
            let q = (w + step) % n;
            if let Some(t) = self.queues[q].lock().expect("pool queue").pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Pops work from any queue — the help-while-waiting path for
    /// submitting threads, which have no home queue. Honours the
    /// high-priority lane first, like the workers.
    fn find_any_task(&self) -> Option<RawTask> {
        if let Some(t) = self.high.lock().expect("pool queue").pop_front() {
            return Some(t);
        }
        for q in &self.queues {
            if let Some(t) = q.lock().expect("pool queue").pop_front() {
                return Some(t);
            }
        }
        None
    }
}

/// Per-batch completion state: one result slot per task plus a latch.
struct Batch<T> {
    remaining: AtomicUsize,
    slots: Vec<Mutex<Option<std::thread::Result<T>>>>,
    done: Condvar,
    done_lock: Mutex<()>,
}

/// The persistent work-stealing pool. One lives for the whole process
/// (see [`global`]); tests may build private ones.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` long-lived workers (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            high: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            sleep: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("smn-pool-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles, next_queue: AtomicUsize::new(0) }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs a batch of tasks to completion and returns their results in
    /// submission order. The calling thread helps execute queued work
    /// while it waits. Panics in tasks resume on this thread after the
    /// whole batch has settled.
    pub fn run<'env, T: Send + 'env>(&self, tasks: Vec<Task<'env, T>>) -> Vec<T> {
        self.run_with(tasks, false)
    }

    /// Like [`WorkerPool::run`], but submits the batch to the
    /// high-priority lane: every worker drains it before its own queue,
    /// so these tasks overtake queued background batches. Results still
    /// come back in submission order — priority changes wall-clock, never
    /// bytes.
    pub fn run_high<'env, T: Send + 'env>(&self, tasks: Vec<Task<'env, T>>) -> Vec<T> {
        self.run_with(tasks, true)
    }

    fn run_with<'env, T: Send + 'env>(&self, tasks: Vec<Task<'env, T>>, priority: bool) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.threads() == 1 {
            // nothing to parallelize: run inline, skipping the latch
            return tasks.into_iter().map(|t| t()).collect();
        }
        let batch: Arc<Batch<T>> = Arc::new(Batch {
            remaining: AtomicUsize::new(n),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            done: Condvar::new(),
            done_lock: Mutex::new(()),
        });
        for (i, task) in tasks.into_iter().enumerate() {
            let b = Arc::clone(&batch);
            let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                *b.slots[i].lock().expect("batch slot") = Some(result);
                // last finisher trips the latch under the lock so the
                // notify cannot race the submitter's final check
                if b.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = b.done_lock.lock().expect("batch latch");
                    b.done.notify_all();
                }
            });
            // SAFETY: erases 'env to 'static. The closure (and everything
            // it borrows) is guaranteed to have finished executing and
            // been dropped before `run` returns: tasks only leave the
            // queues by being executed, execution decrements `remaining`
            // after dropping the task, and we block below until
            // `remaining == 0`.
            let raw: RawTask =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, RawTask>(closure) };
            if priority {
                self.shared.high.lock().expect("pool queue").push_back(raw);
            } else {
                let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.threads();
                self.shared.queues[q].lock().expect("pool queue").push_back(raw);
            }
        }
        self.shared.wake.notify_all();
        // Help while waiting: run queued tasks (ours or anyone's — also
        // what keeps nested batches live), then park briefly on the latch.
        while batch.remaining.load(Ordering::Acquire) != 0 {
            if let Some(t) = self.shared.find_any_task() {
                t();
                continue;
            }
            let g = batch.done_lock.lock().expect("batch latch");
            if batch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // timed backstop: a worker could finish the last task between
            // our check and the wait
            let _ = batch.done.wait_timeout(g, Duration::from_micros(200)).expect("batch latch");
        }
        // Drain every slot before the batch can be dropped; panics are
        // re-raised only after the whole batch has settled.
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in &batch.slots {
            match slot.lock().expect("batch slot").take().expect("every batch slot filled") {
                Ok(v) => out.push(v),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // wake everyone under the sleep lock so no worker can re-park
        // between the flag store and the notify
        {
            let _g = self.shared.sleep.lock().expect("pool sleep lock");
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(w: usize, shared: &Shared) {
    loop {
        if let Some(task) = shared.find_task(w) {
            task();
            continue;
        }
        let g = shared.sleep.lock().expect("pool sleep lock");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed park: submission notifies, but a push can land between
        // our empty sweep and this wait — the timeout bounds that race
        // instead of a queue-revision protocol.
        let _ = shared.wake.wait_timeout(g, Duration::from_millis(1)).expect("pool sleep lock");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// The process-wide pool, sized by `SMN_POOL_THREADS` when set (≥1), else
/// the machine's available parallelism. Spawned on first use, alive for
/// the process lifetime.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("SMN_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
            });
        WorkerPool::new(threads)
    })
}

/// Reference implementation: the pre-pool execution shape, one scoped
/// thread per task with a join barrier. Same results in the same order as
/// [`WorkerPool::run`] by construction; kept so the differential suites
/// can pin `pooled ≡ scoped` on real workloads.
pub fn run_scoped<'env, T: Send>(tasks: Vec<Task<'env, T>>) -> Vec<T> {
    if tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|t| scope.spawn(t)).collect();
        handles.into_iter().map(|h| h.join().expect("scoped task panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<T: Send + 'static>(
        fns: impl IntoIterator<Item = T>,
        f: impl Fn(T) -> T + Send + Sync + Copy + 'static,
    ) -> Vec<Task<'static, T>> {
        fns.into_iter().map(|x| Box::new(move || f(x)) as Task<'static, T>).collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(boxed(0u64..64, |x| x * 3));
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_matches_scoped_and_sequential() {
        let pool = WorkerPool::new(3);
        let work = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let pooled =
            pool.run((0u64..40).map(|x| Box::new(move || work(x)) as Task<'_, u64>).collect());
        let scoped =
            run_scoped((0u64..40).map(|x| Box::new(move || work(x)) as Task<'_, u64>).collect());
        let sequential: Vec<u64> = (0..40).map(work).collect();
        assert_eq!(pooled, scoped);
        assert_eq!(pooled, sequential);
    }

    #[test]
    fn tasks_may_borrow_the_submitting_frame() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(7).collect();
        let sums = pool.run(
            slices
                .iter()
                .map(|s| {
                    let s: &[u64] = s;
                    Box::new(move || s.iter().sum::<u64>()) as Task<'_, u64>
                })
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_batches_complete() {
        // a task that itself submits a batch to the same pool — the shard
        // fill / multi-chain nesting shape
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<Task<'_, u64>> = (0..8u64)
            .map(|i| {
                let pool = Arc::clone(&pool);
                Box::new(move || pool.run(boxed(0u64..8, move |x| x + 1)).iter().sum::<u64>() + i)
                    as Task<'_, u64>
            })
            .collect();
        let out = pool.run(outer);
        assert_eq!(out, (0..8u64).map(|i| 36 + i).collect::<Vec<_>>());
    }

    #[test]
    fn panics_resume_on_the_submitter_after_the_batch_settles() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Task<'_, u64>> = (0..16u64)
            .map(|i| {
                Box::new(move || {
                    if i == 7 {
                        panic!("task 7 exploded");
                    }
                    i
                }) as Task<'_, u64>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        let msg = *caught.expect_err("must propagate").downcast::<&str>().expect("str payload");
        assert_eq!(msg, "task 7 exploded");
        // the pool survives and keeps working
        assert_eq!(pool.run(boxed(0u64..4, |x| x)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(
            pool.run(boxed(0u64..10, |x| x * 2)),
            (0..10).map(|x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.run(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn high_priority_batches_return_the_same_results_as_normal_ones() {
        let pool = WorkerPool::new(3);
        let work = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13);
        let normal = pool.run(boxed(0u64..48, move |x| work(x)));
        let high = pool.run_high(boxed(0u64..48, move |x| work(x)));
        assert_eq!(high, normal);
        assert_eq!(high, (0..48).map(work).collect::<Vec<_>>());
    }

    #[test]
    fn high_priority_tasks_overtake_queued_background_work() {
        use std::sync::atomic::AtomicU64;
        // Flood the normal queues with slow tasks from another thread,
        // then submit a high batch: every high task must start before the
        // background tail drains, i.e. the lane really is checked first.
        let pool = Arc::new(WorkerPool::new(2));
        let started = Arc::new(AtomicU64::new(0));
        let bg_done = Arc::new(AtomicU64::new(0));
        let bg = {
            let pool = Arc::clone(&pool);
            let bg_done = Arc::clone(&bg_done);
            std::thread::spawn(move || {
                let tasks: Vec<Task<'static, ()>> = (0..64)
                    .map(|_| {
                        let bg_done = Arc::clone(&bg_done);
                        Box::new(move || {
                            std::thread::sleep(Duration::from_micros(500));
                            bg_done.fetch_add(1, Ordering::SeqCst);
                        }) as Task<'static, ()>
                    })
                    .collect();
                pool.run(tasks);
            })
        };
        // give the background batch a head start at filling the queues
        std::thread::sleep(Duration::from_millis(2));
        let drained: Vec<u64> = pool.run_high(
            (0..8u64)
                .map(|_| {
                    let started = Arc::clone(&started);
                    let bg_done = Arc::clone(&bg_done);
                    Box::new(move || {
                        started.fetch_add(1, Ordering::SeqCst);
                        bg_done.load(Ordering::SeqCst)
                    }) as Task<'_, u64>
                })
                .collect(),
        );
        bg.join().expect("background batch");
        assert_eq!(started.load(Ordering::SeqCst), 8);
        // at least one high task ran while background work was still queued
        assert!(
            drained.iter().any(|&seen| seen < 64),
            "high-priority lane never overtook the background queue: {drained:?}"
        );
    }
}
