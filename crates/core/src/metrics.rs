//! Evaluation measures of §VI-A: precision/recall of matchings against the
//! selective matching, and the K-L divergence measures of the sampling-
//! effectiveness experiment (Fig. 7).

use crate::network::MatchingNetwork;
use smn_constraints::BitSet;
use smn_schema::Correspondence;
use std::collections::HashSet;

/// Precision and recall of a set of correspondences against the ground
/// truth `M`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// `|V ∩ M| / |V|` (1 when `V` is empty).
    pub precision: f64,
    /// `|V ∩ M| / |M|` (1 when `M` is empty).
    pub recall: f64,
}

impl PrecisionRecall {
    /// Evaluates an instance (bitset over the network's candidates).
    pub fn of_instance(
        network: &MatchingNetwork,
        instance: &BitSet,
        truth: impl IntoIterator<Item = Correspondence>,
    ) -> Self {
        let truth: HashSet<Correspondence> = truth.into_iter().collect();
        let proposed = instance.count();
        let tp = instance.iter().filter(|&c| truth.contains(&network.corr(c))).count();
        Self {
            precision: if proposed == 0 { 1.0 } else { tp as f64 / proposed as f64 },
            recall: if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 },
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// K-L divergence between the exact probabilities `P` and an approximation
/// `Q`: the sum of per-candidate *Bernoulli* divergences
/// `Σ_c [ p_c·log₂(p_c/q_c) + (1−p_c)·log₂((1−p_c)/(1−q_c)) ]`.
///
/// The paper's Eq. 6 prints only the first addend, which is not a
/// divergence (it can go negative when `q_c > p_c`); since the candidate
/// variables are Bernoulli, the two-sided form is the information-
/// theoretically correct reading and is always non-negative. Terms with
/// `p_c ∈ {0, 1}` contribute only their non-vanishing side; `q_c` is
/// clamped away from 0 and 1 so a sampler that misses a rare candidate
/// yields a large-but-finite divergence.
pub fn kl_divergence(exact: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "probability vectors differ in length");
    const EPS: f64 = 1e-9;
    exact
        .iter()
        .zip(approx)
        .map(|(&p, &q)| {
            let q = q.clamp(EPS, 1.0 - EPS);
            let mut d = 0.0;
            if p > 0.0 {
                d += p * (p / q).log2();
            }
            if p < 1.0 {
                d += (1.0 - p) * ((1.0 - p) / (1.0 - q)).log2();
            }
            d
        })
        .sum()
}

/// The normalized measure of Fig. 7:
/// `KL_ratio = D(P‖Q) / D(P‖U)` where `U` is the maximum-entropy baseline
/// assigning `u_c = 0.5` to every candidate. Reported in percent by the
/// experiment harness.
///
/// Returns 0 when `D(P‖U) = 0` (then `P` *is* the uniform baseline and any
/// `Q = P` too).
pub fn kl_ratio(exact: &[f64], approx: &[f64]) -> f64 {
    let uniform = vec![0.5; exact.len()];
    let denom = kl_divergence(exact, &uniform);
    if denom == 0.0 {
        0.0
    } else {
        kl_divergence(exact, approx) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;
    use smn_schema::{AttributeId, CandidateId};

    #[test]
    fn instance_precision_recall() {
        let net = fig1_network();
        let a = AttributeId;
        let truth = [
            Correspondence::new(a(0), a(1)), // c0
            Correspondence::new(a(1), a(3)), // c3
            Correspondence::new(a(0), a(3)), // c4
        ];
        let inst = BitSet::from_ids(5, [CandidateId(0), CandidateId(1), CandidateId(2)]);
        let q = PrecisionRecall::of_instance(&net, &inst, truth);
        assert!((q.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-12);
        let perfect = BitSet::from_ids(5, [CandidateId(0), CandidateId(3), CandidateId(4)]);
        let q = PrecisionRecall::of_instance(&net, &perfect, truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn empty_instance_conventions() {
        let net = fig1_network();
        let q = PrecisionRecall::of_instance(&net, &BitSet::new(5), []);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn kl_divergence_of_identical_is_zero() {
        // exact zero for interior probabilities; within clamping error for
        // boundary ones
        let p = [0.3, 0.7];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let p = [0.3, 0.7, 0.0, 1.0];
        assert!(kl_divergence(&p, &p).abs() < 1e-8);
    }

    #[test]
    fn kl_divergence_is_nonnegative() {
        let p = [0.1, 0.5, 0.9, 0.0, 1.0];
        for q in [[0.9, 0.5, 0.1, 0.5, 0.5], [0.2, 0.6, 0.95, 0.01, 0.99]] {
            assert!(kl_divergence(&p, &q) >= 0.0, "D(P||{q:?}) negative");
        }
        // the one-sided form of the paper's Eq. 6 would be negative here:
        // q > p makes p·log(p/q) < 0 with nothing to compensate
        let p = [0.1];
        let q = [0.9];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_divergence_grows_with_distortion() {
        let p = [0.5, 0.5, 0.5];
        let close = [0.45, 0.55, 0.5];
        let far = [0.1, 0.9, 0.2];
        assert!(kl_divergence(&p, &close) < kl_divergence(&p, &far));
    }

    #[test]
    fn kl_ratio_of_uniform_approx_is_one() {
        let p = [0.9, 0.1, 0.8];
        let u = [0.5, 0.5, 0.5];
        assert!((kl_ratio(&p, &u) - 1.0).abs() < 1e-12);
        assert!(kl_ratio(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_handles_zero_probabilities() {
        let p = [0.0, 1.0];
        let q = [0.2, 0.8];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn kl_checks_lengths() {
        let _ = kl_divergence(&[0.5], &[0.5, 0.5]);
    }
}
