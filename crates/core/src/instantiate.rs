//! Instantiation of an approximation of the selective matching
//! (Algorithm 2, §V).
//!
//! The instantiation problem — a matching instance with minimal repair
//! distance `Δ(I, C) = |C| − |I|`, tie-broken by maximal likelihood
//! `u(I) = Π_{c∈I} p_c` — is NP-complete (Theorem 1, by reduction from
//! maximum independent set). The heuristic here follows Algorithm 2:
//!
//! 1. **Initialization**: greedily pick the best sampled instance
//!    (smallest repair distance, then largest likelihood).
//! 2. **Optimization**: randomized local search — roulette-wheel select a
//!    candidate proportionally to its probability, insert it, repair the
//!    violations it causes (Algorithm 4), re-maximize, and keep the best
//!    instance seen. A fixed-size tabu queue prevents proposing the same
//!    candidate repeatedly.

use crate::fenwick::FenwickSampler;
use crate::instance::{maximize_in, repair_in, Scratch};
use crate::probability::ProbabilisticNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smn_constraints::BitSet;
use smn_schema::CandidateId;
use std::collections::VecDeque;

/// How local-search insertions are proposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proposal {
    /// Fitness-proportionate (roulette-wheel) selection over probabilities,
    /// as in Algorithm 2 — "the chosen correspondence has a high chance of
    /// being consistent with the others".
    RouletteWheel,
    /// Uniform selection among eligible candidates (ablation baseline).
    Uniform,
}

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantiationConfig {
    /// Local-search iterations (`k` of Algorithm 2).
    pub iterations: usize,
    /// Tabu-queue capacity (0 disables the tabu list — ablation).
    pub tabu_size: usize,
    /// Whether likelihood is used as the secondary criterion (Fig. 11
    /// compares instantiation with and without it).
    pub use_likelihood: bool,
    /// Insertion-proposal rule.
    pub proposal: Proposal,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InstantiationConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            tabu_size: 24,
            use_likelihood: true,
            proposal: Proposal::RouletteWheel,
            seed: 0xBEEF,
        }
    }
}

/// The instantiated matching and its quality measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Instantiation {
    /// The matching instance `H`.
    pub instance: BitSet,
    /// `Δ(H, C) = |C| − |H|`.
    pub repair_distance: usize,
    /// `ln u(H) = Σ_{c∈H} ln p_c` (`−∞` if any member has probability 0,
    /// which cannot happen for sampled members).
    pub log_likelihood: f64,
}

/// Runs Algorithm 2 on the current state of the probabilistic network.
pub fn instantiate(pn: &ProbabilisticNetwork, config: InstantiationConfig) -> Instantiation {
    let network = pn.network();
    let index = network.index();
    let n = network.candidate_count();
    let probs = pn.probabilities();
    let forbidden = pn.feedback().disapproved();
    let approved = pn.feedback().approved();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // the likelihood measure and the lexicographic "smaller Δ, then larger
    // u" ordering are shared with the greedy seed (probability.rs), so the
    // local search optimizes exactly the criterion its initialization used
    let log_likelihood = |inst: &BitSet| crate::probability::log_likelihood_of(probs, inst);
    let better = |cand: &BitSet, cand_ll: f64, best: &BitSet, best_ll: f64| {
        crate::probability::better_instance(cand, cand_ll, best, best_ll, config.use_likelihood)
    };

    // Step 1: greedy pick among the stored samples — per shard and
    // composed for the sharded representation, where the global best
    // decomposes over independent components
    let mut scratch = Scratch::new(n);
    let (mut best_inst, mut best_ll) = match pn.greedy_seed(config.use_likelihood) {
        Some(seed_inst) => {
            let ll = log_likelihood(&seed_inst);
            (seed_inst, ll)
        }
        None => {
            // no samples (empty network / contradictory feedback): start
            // from the maximized approved set
            let mut seed_inst = approved.clone();
            maximize_in(index, &mut seed_inst, forbidden, &mut rng, &mut scratch);
            let ll = log_likelihood(&seed_inst);
            (seed_inst, ll)
        }
    };

    // Step 2: randomized local search with tabu. Roulette proposals come
    // from a Fenwick wheel over `{⟨c, p_c⟩ | c ∈ C \ F− \ I \ tabu}`,
    // updated incrementally as the instance and tabu queue change —
    // O(log n) per proposal instead of two O(n) passes.
    let mut current = best_inst.clone();
    let mut tabu: VecDeque<CandidateId> = VecDeque::with_capacity(config.tabu_size);
    let eligible_weight = |c: CandidateId, current: &BitSet, tabu: &VecDeque<CandidateId>| -> f64 {
        let p = probs[c.index()];
        if p > 0.0 && !current.contains(c) && !forbidden.contains(c) && !tabu.contains(&c) {
            p
        } else {
            0.0
        }
    };
    // the wheel is only built and maintained for roulette proposals; the
    // uniform ablation never samples it
    let use_wheel = config.proposal == Proposal::RouletteWheel;
    let mut wheel = FenwickSampler::new(if use_wheel { n } else { 0 });
    if use_wheel {
        for i in 0..n {
            let c = CandidateId::from_index(i);
            wheel.set(i, eligible_weight(c, &current, &tabu));
        }
    }
    let mut prev = current.clone();
    for _ in 0..config.iterations {
        let proposed = match config.proposal {
            Proposal::RouletteWheel => {
                let total = wheel.total();
                if total > 0.0 {
                    wheel.sample(rng.random_range(0.0..total)).map(CandidateId::from_index)
                } else {
                    None
                }
            }
            Proposal::Uniform => uniform_proposal(n, probs, &current, forbidden, &tabu, &mut rng),
        };
        let Some(chosen) = proposed else {
            break; // nothing addable
        };
        current.insert(chosen);
        scratch.note_insert(index, &current, chosen);
        if tabu.len() == config.tabu_size && config.tabu_size > 0 {
            let released = tabu.pop_front().expect("tabu non-empty at capacity");
            if use_wheel {
                wheel.set(released.index(), eligible_weight(released, &current, &tabu));
            }
        }
        if config.tabu_size > 0 {
            tabu.push_back(chosen);
        }
        repair_in(index, &mut current, chosen, approved, &mut rng, &mut scratch);
        maximize_in(index, &mut current, forbidden, &mut rng, &mut scratch);
        if use_wheel {
            // reconcile the wheel with the instance delta: repair removals
            // become eligible again, maximize additions drop out
            for c in prev.iter_xor(&current) {
                wheel.set(c.index(), eligible_weight(c, &current, &tabu));
            }
            // `chosen` may have been re-removed by repair without appearing
            // in the delta (inserted and removed within one iteration)
            wheel.set(chosen.index(), eligible_weight(chosen, &current, &tabu));
            #[cfg(debug_assertions)]
            for i in 0..n {
                let c = CandidateId::from_index(i);
                debug_assert_eq!(
                    wheel.weight(i),
                    eligible_weight(c, &current, &tabu),
                    "wheel out of sync at {i}"
                );
            }
        }
        prev.copy_from(&current);
        let ll = log_likelihood(&current);
        if better(&current, ll, &best_inst, best_ll) {
            best_inst = current.clone();
            best_ll = ll;
        }
    }
    debug_assert!(index.is_consistent(&best_inst));
    debug_assert!(pn.feedback().respected_by(&best_inst));
    Instantiation {
        repair_distance: n - best_inst.count(),
        log_likelihood: best_ll,
        instance: best_inst,
    }
}

/// Scalar fitness-proportionate selection over
/// `{⟨c, p_c⟩ | c ∈ C \ F− \ I \ tabu}` — the two-pass linear scan the
/// Fenwick wheel replaces, retained as the reference oracle for the
/// differential tests. Candidates with zero probability never enter a
/// matching instance, so they are excluded; if all weights vanish there
/// is nothing useful to propose.
#[cfg(test)]
fn scalar_roulette_wheel(
    n: usize,
    probs: &[f64],
    current: &BitSet,
    forbidden: &BitSet,
    tabu: &VecDeque<CandidateId>,
    spin: f64,
) -> Option<CandidateId> {
    let eligible = |c: CandidateId| {
        !current.contains(c)
            && !forbidden.contains(c)
            && !tabu.contains(&c)
            && probs[c.index()] > 0.0
    };
    let mut spin = spin;
    for (i, &p) in probs.iter().enumerate() {
        let c = CandidateId::from_index(i);
        if !eligible(c) {
            continue;
        }
        spin -= p;
        if spin <= 0.0 {
            return Some(c);
        }
    }
    // float round-off: return the last eligible candidate
    (0..n).rev().map(CandidateId::from_index).find(|&c| eligible(c))
}

/// Uniform proposal among the same eligibility set (ablation baseline for
/// [`Proposal::Uniform`]). Counted index selection via
/// [`nth_matching`](crate::selection::nth_matching) — no per-call
/// allocation of the eligible set.
fn uniform_proposal(
    n: usize,
    probs: &[f64],
    current: &BitSet,
    forbidden: &BitSet,
    tabu: &VecDeque<CandidateId>,
    rng: &mut StdRng,
) -> Option<CandidateId> {
    crate::selection::nth_matching(n, rng, |c| {
        !current.contains(c)
            && !forbidden.contains(c)
            && !tabu.contains(&c)
            && probs[c.index()] > 0.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Assertion;
    use crate::sampling::SamplerConfig;
    use crate::testutil::{fig1_network, perturbed_network};

    fn fig1_pn() -> ProbabilisticNetwork {
        ProbabilisticNetwork::new(
            fig1_network(),
            SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 3,
                n_min: 50,
                seed: 5,
                chains: 1,
            },
        )
    }

    #[test]
    fn picks_a_minimal_repair_instance_on_fig1() {
        let pn = fig1_pn();
        let inst = instantiate(&pn, InstantiationConfig::default());
        // the largest instances have 3 members → Δ = 2
        assert_eq!(inst.repair_distance, 2);
        assert_eq!(inst.instance.count(), 3);
        assert!(pn.network().index().is_consistent(&inst.instance));
    }

    #[test]
    fn respects_feedback() {
        let mut pn = fig1_pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let inst = instantiate(&pn, InstantiationConfig::default());
        assert!(inst.instance.contains(CandidateId(2)));
        // c4 is impossible once c2 is approved
        assert!(!inst.instance.contains(CandidateId(4)));
    }

    #[test]
    fn fenwick_wheel_matches_scalar_roulette() {
        // quarter-integer probabilities keep every cumulative sum exact in
        // f64, and spins at odd multiples of ⅛ never hit an interval
        // boundary — so the Fenwick descent and the scalar scan (whose
        // `spin <= 0` boundary rule differs only *at* boundaries) must
        // agree exactly.
        let n = 12usize;
        let probs: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 5) as f64 * 0.25).collect();
        let current = BitSet::from_ids(n, [CandidateId(1), CandidateId(4)]);
        let forbidden = BitSet::from_ids(n, [CandidateId(2)]);
        let tabu: VecDeque<CandidateId> = [CandidateId(7)].into_iter().collect();
        let eligible_weight = |c: CandidateId| {
            let p = probs[c.index()];
            if p > 0.0 && !current.contains(c) && !forbidden.contains(c) && !tabu.contains(&c) {
                p
            } else {
                0.0
            }
        };
        let mut wheel = FenwickSampler::new(n);
        for i in 0..n {
            wheel.set(i, eligible_weight(CandidateId::from_index(i)));
        }
        let total: f64 = (0..n).map(|i| eligible_weight(CandidateId::from_index(i))).sum();
        assert!((wheel.total() - total).abs() < 1e-12);
        let mut spin = 0.125;
        while spin < total {
            let fenwick = wheel.sample(spin).map(CandidateId::from_index);
            let scalar = scalar_roulette_wheel(n, &probs, &current, &forbidden, &tabu, spin);
            assert_eq!(fenwick, scalar, "spin {spin}");
            spin += 0.25;
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let pn = fig1_pn();
        let a = instantiate(&pn, InstantiationConfig { seed: 1, ..Default::default() });
        let b = instantiate(&pn, InstantiationConfig { seed: 1, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn local_search_never_worse_than_greedy_pick() {
        let (net, _) = perturbed_network(4, 8, 0.6, 0.9, 11);
        let pn = ProbabilisticNetwork::new(
            net,
            SamplerConfig {
                anneal: true,
                n_samples: 150,
                walk_steps: 3,
                n_min: 60,
                seed: 12,
                chains: 1,
            },
        );
        let greedy_only =
            instantiate(&pn, InstantiationConfig { iterations: 0, ..Default::default() });
        let full = instantiate(&pn, InstantiationConfig::default());
        assert!(full.repair_distance <= greedy_only.repair_distance);
    }

    #[test]
    fn likelihood_tie_break_prefers_probable_instances() {
        let mut pn = fig1_pn();
        // skew probabilities: approve nothing but disapprove nothing either;
        // instead reconcile partially so probabilities differ across the
        // two triangles: approving c2 leaves {c0,c1,c2} (Δ=2) vs {c2,c3} (Δ=3)
        pn.assert_candidate(Assertion { candidate: CandidateId(2), approved: true }).unwrap();
        let with = instantiate(&pn, InstantiationConfig::default());
        assert_eq!(with.instance.to_vec(), vec![CandidateId(0), CandidateId(1), CandidateId(2)]);
    }

    #[test]
    fn without_likelihood_still_minimizes_repair_distance() {
        let pn = fig1_pn();
        let inst =
            instantiate(&pn, InstantiationConfig { use_likelihood: false, ..Default::default() });
        assert_eq!(inst.repair_distance, 2);
    }

    #[test]
    fn zero_probability_candidates_are_never_added() {
        let mut pn = fig1_pn();
        pn.assert_candidate(Assertion { candidate: CandidateId(0), approved: false }).unwrap();
        let inst = instantiate(&pn, InstantiationConfig::default());
        assert!(!inst.instance.contains(CandidateId(0)));
    }

    #[test]
    fn instantiation_is_maximal() {
        let (net, _) = perturbed_network(3, 10, 0.7, 0.8, 21);
        let pn = ProbabilisticNetwork::new(
            net,
            SamplerConfig {
                anneal: true,
                n_samples: 200,
                walk_steps: 4,
                n_min: 80,
                seed: 3,
                chains: 1,
            },
        );
        let inst = instantiate(&pn, InstantiationConfig::default());
        assert!(pn.network().index().is_maximal(&inst.instance, pn.feedback().disapproved()));
    }
}
