//! The (non-probabilistic) matching network `N = ⟨S, G_S, Γ, C⟩`.

use smn_constraints::{BitSet, ConflictIndex, ConstraintConfig, ViolationCounts};
use smn_schema::{CandidateId, CandidateSet, Catalog, Correspondence, InteractionGraph};

/// A network of schemas: catalog, interaction graph, candidate
/// correspondences and the (pre-indexed) integrity constraints.
///
/// This is the immutable substrate; all reconciliation state (feedback,
/// probabilities, samples) lives in
/// [`ProbabilisticNetwork`](crate::probability::ProbabilisticNetwork).
#[derive(Debug, Clone)]
pub struct MatchingNetwork {
    catalog: Catalog,
    graph: InteractionGraph,
    candidates: CandidateSet,
    index: ConflictIndex,
}

impl MatchingNetwork {
    /// Assembles a network and builds its conflict index.
    pub fn new(
        catalog: Catalog,
        graph: InteractionGraph,
        candidates: CandidateSet,
        config: ConstraintConfig,
    ) -> Self {
        let index = ConflictIndex::build(&catalog, &graph, &candidates, config);
        Self { catalog, graph, candidates, index }
    }

    /// The schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The interaction graph `G_S`.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// The candidate set `C`.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The pre-computed conflict index over `Γ`.
    pub fn index(&self) -> &ConflictIndex {
        &self.index
    }

    /// `|C|`.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Correspondence of a candidate id.
    pub fn corr(&self, c: CandidateId) -> Correspondence {
        self.candidates.corr(c)
    }

    /// Violation totals among the *full* candidate set (the Table III
    /// numbers for this network).
    pub fn initial_violations(&self) -> ViolationCounts {
        self.index.count_violations(&BitSet::full(self.candidates.len()))
    }

    /// An empty instance sized for this network.
    pub fn empty_instance(&self) -> BitSet {
        BitSet::new(self.candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::fig1_network;

    #[test]
    fn accessors_are_consistent() {
        let net = fig1_network();
        assert_eq!(net.candidate_count(), 5);
        assert_eq!(net.candidates().len(), 5);
        assert_eq!(net.index().candidate_count(), 5);
        assert_eq!(net.catalog().schema_count(), 3);
        assert_eq!(net.graph().edge_count(), 3);
        assert_eq!(net.empty_instance().capacity(), 5);
    }

    #[test]
    fn initial_violations_match_fig1() {
        let net = fig1_network();
        let v = net.initial_violations();
        assert_eq!(v.one_to_one, 2);
        assert_eq!(v.cycle, 2);
    }
}
