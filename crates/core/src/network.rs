//! The (non-probabilistic) matching network `N = ⟨S, G_S, Γ, C⟩`.

use smn_constraints::{BitSet, ConflictIndex, ConstraintConfig, ViolationCounts};
use smn_schema::{
    AttributeId, Candidate, CandidateId, CandidateSet, Catalog, Correspondence, InteractionGraph,
    SchemaError,
};
use std::sync::Arc;

/// A network of schemas: catalog, interaction graph, candidate
/// correspondences and the (pre-indexed) integrity constraints.
///
/// This is the immutable substrate; all reconciliation state (feedback,
/// probabilities, samples) lives in
/// [`ProbabilisticNetwork`](crate::probability::ProbabilisticNetwork).
/// Every part is `Arc`-shared so cloning a network — which happens on
/// every [`ProbabilisticNetwork::fork`](crate::ProbabilisticNetwork::fork)
/// — copies four pointers; in particular the [`ConflictIndex`] is never
/// deep-cloned by a fork. Online evolution
/// ([`extend`](Self::extend)/[`retire`](Self::retire)) copy-on-writes the
/// candidate set and index (`Arc::make_mut` — a real copy only when a
/// fork still shares them).
#[derive(Debug, Clone)]
pub struct MatchingNetwork {
    catalog: Arc<Catalog>,
    graph: Arc<InteractionGraph>,
    candidates: Arc<CandidateSet>,
    index: Arc<ConflictIndex>,
}

impl MatchingNetwork {
    /// Assembles a network and builds its conflict index.
    pub fn new(
        catalog: Catalog,
        graph: InteractionGraph,
        candidates: CandidateSet,
        config: ConstraintConfig,
    ) -> Self {
        let index = ConflictIndex::build(&catalog, &graph, &candidates, config);
        Self {
            catalog: Arc::new(catalog),
            graph: Arc::new(graph),
            candidates: Arc::new(candidates),
            index: Arc::new(index),
        }
    }

    /// Reassembles a network from already-validated parts, including a
    /// pre-built conflict index — the snapshot-load path of `smn-storage`,
    /// which reconstructs the index from its serialized primary data
    /// ([`ConflictIndex::from_parts`]) instead of re-enumerating conflicts
    /// over the catalog.
    pub fn from_parts(
        catalog: Catalog,
        graph: InteractionGraph,
        candidates: CandidateSet,
        index: ConflictIndex,
    ) -> Self {
        debug_assert_eq!(index.candidate_count(), candidates.len());
        Self {
            catalog: Arc::new(catalog),
            graph: Arc::new(graph),
            candidates: Arc::new(candidates),
            index: Arc::new(index),
        }
    }

    /// The schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The interaction graph `G_S`.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// The candidate set `C`.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The pre-computed conflict index over `Γ`.
    pub fn index(&self) -> &ConflictIndex {
        &self.index
    }

    /// `|C|`.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Correspondence of a candidate id.
    pub fn corr(&self, c: CandidateId) -> Correspondence {
        self.candidates.corr(c)
    }

    /// Violation totals among the *full* candidate set (the Table III
    /// numbers for this network).
    pub fn initial_violations(&self) -> ViolationCounts {
        self.index.count_violations(&BitSet::full(self.candidates.len()))
    }

    /// An empty instance sized for this network.
    pub fn empty_instance(&self) -> BitSet {
        BitSet::new(self.candidates.len())
    }

    /// Admits a new candidate correspondence online: validates and appends
    /// it to the candidate set (it gets the next dense id) and patches the
    /// conflict index incrementally
    /// ([`ConflictIndex::add_candidate`]) instead of
    /// rebuilding it — new conflicts always involve the arrival, so only
    /// its attribute/triangle neighbourhood is enumerated.
    pub fn extend(
        &mut self,
        x: AttributeId,
        y: AttributeId,
        confidence: f64,
    ) -> Result<CandidateId, SchemaError> {
        let id = Arc::make_mut(&mut self.candidates).add(
            &self.catalog,
            Some(&self.graph),
            x,
            y,
            confidence,
        )?;
        let patched = Arc::make_mut(&mut self.index).add_candidate(
            &self.catalog,
            &self.graph,
            &self.candidates,
        );
        debug_assert_eq!(patched, id);
        Ok(id)
    }

    /// Retires candidate `c` online: removes it from the candidate set
    /// (every later id shifts down by one) and patches the conflict index
    /// incrementally ([`ConflictIndex::retire_candidate`]). Returns the
    /// retired candidate.
    pub fn retire(&mut self, c: CandidateId) -> Result<Candidate, SchemaError> {
        let removed = Arc::make_mut(&mut self.candidates).remove(&self.catalog, c)?;
        Arc::make_mut(&mut self.index).retire_candidate(c);
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::fig1_network;

    #[test]
    fn accessors_are_consistent() {
        let net = fig1_network();
        assert_eq!(net.candidate_count(), 5);
        assert_eq!(net.candidates().len(), 5);
        assert_eq!(net.index().candidate_count(), 5);
        assert_eq!(net.catalog().schema_count(), 3);
        assert_eq!(net.graph().edge_count(), 3);
        assert_eq!(net.empty_instance().capacity(), 5);
    }

    #[test]
    fn initial_violations_match_fig1() {
        let net = fig1_network();
        let v = net.initial_violations();
        assert_eq!(v.one_to_one, 2);
        assert_eq!(v.cycle, 2);
    }
}
