//! Crowd / worker-pool scenario generation.
//!
//! The paper's §VI crowdsourcing evaluation has many workers of varying
//! reliability answer validation questions against one shared network.
//! A [`CrowdSpec`] generates the *quality side* of that scenario — a
//! deterministic list of per-worker error rates — for the concurrent
//! reconciliation service (`smn-service`) and the `exp_service`
//! experiment. Worker behaviour itself (noisy answers, vote aggregation)
//! lives in the service crate; this module only decides *how good* each
//! worker is, the way the dataset generators decide how messy each schema
//! is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a worker pool's quality mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdSpec {
    /// Number of workers.
    pub workers: usize,
    /// Fraction of *reliable* workers (error rates drawn from the low
    /// band); the rest draw from the high band.
    pub reliable_fraction: f64,
    /// Error-rate band of reliable workers `[lo, hi)`.
    pub reliable_band: (f64, f64),
    /// Error-rate band of unreliable workers `[lo, hi)`.
    pub noisy_band: (f64, f64),
}

impl CrowdSpec {
    /// Generates the per-worker error rates, deterministic in `seed`.
    /// Worker `0` is always drawn first, so growing the pool keeps the
    /// existing workers' profiles stable.
    ///
    /// # Panics
    /// Panics on an empty pool, a fraction outside `[0, 1]` or a band
    /// outside `[0, 1]`.
    pub fn generate(&self, seed: u64) -> Vec<f64> {
        assert!(self.workers >= 1, "crowd needs at least one worker");
        assert!((0.0..=1.0).contains(&self.reliable_fraction), "fraction out of range");
        for (lo, hi) in [self.reliable_band, self.noisy_band] {
            assert!(0.0 <= lo && lo <= hi && hi <= 1.0, "error band out of range");
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_90D5_EED5);
        (0..self.workers)
            .map(|_| {
                let (lo, hi) = if rng.random_bool(self.reliable_fraction) {
                    self.reliable_band
                } else {
                    self.noisy_band
                };
                if hi > lo {
                    lo + (hi - lo) * rng.random::<f64>()
                } else {
                    lo
                }
            })
            .collect()
    }
}

/// Preset crowd in the shape crowdsourcing studies report: 70% reliable
/// workers (2–12% error) and 30% noisy ones (20–40% error).
pub fn mixed_crowd(workers: usize, seed: u64) -> Vec<f64> {
    CrowdSpec {
        workers,
        reliable_fraction: 0.7,
        reliable_band: (0.02, 0.12),
        noisy_band: (0.2, 0.4),
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_band() {
        let a = mixed_crowd(40, 7);
        let b = mixed_crowd(40, 7);
        assert_eq!(a, b);
        assert_ne!(a, mixed_crowd(40, 8));
        for &e in &a {
            assert!(
                (0.02..0.12).contains(&e) || (0.2..0.4).contains(&e),
                "error rate {e} outside both bands"
            );
        }
    }

    #[test]
    fn growing_the_pool_keeps_existing_profiles() {
        let small = mixed_crowd(5, 3);
        let large = mixed_crowd(9, 3);
        assert_eq!(&large[..5], &small[..]);
    }

    #[test]
    fn mixture_respects_the_reliable_fraction() {
        let rates = mixed_crowd(400, 1);
        let reliable = rates.iter().filter(|&&e| e < 0.12).count();
        let frac = reliable as f64 / rates.len() as f64;
        assert!((frac - 0.7).abs() < 0.08, "reliable fraction {frac}");
    }

    #[test]
    fn degenerate_band_is_constant() {
        let spec = CrowdSpec {
            workers: 3,
            reliable_fraction: 1.0,
            reliable_band: (0.1, 0.1),
            noisy_band: (0.5, 0.5),
        };
        assert_eq!(spec.generate(2), vec![0.1; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_crowd_rejected() {
        let _ = CrowdSpec {
            workers: 0,
            reliable_fraction: 0.5,
            reliable_band: (0.0, 0.1),
            noisy_band: (0.2, 0.4),
        }
        .generate(1);
    }
}
