//! Name-variant rendering.
//!
//! Every schema renders its concepts through one [`NamingStyle`]: a case
//! convention plus per-token probabilities for abbreviation and synonym
//! substitution. Styles are coherent *within* a schema (as in real
//! databases) and differ *across* schemas, which is exactly what makes two
//! schemas name the same concept differently — the raw material of schema
//! matching.

use crate::vocab::Vocabulary;
use rand::seq::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Case convention of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseStyle {
    /// `supplierAddress`
    Camel,
    /// `SupplierAddress`
    Pascal,
    /// `supplier_address`
    Snake,
    /// `supplier-address`
    Kebab,
    /// `supplieraddress`
    Flat,
    /// `SUPPLIER_ADDRESS`
    ScreamingSnake,
}

impl CaseStyle {
    /// All styles, for sampling.
    pub const ALL: [CaseStyle; 6] = [
        CaseStyle::Camel,
        CaseStyle::Pascal,
        CaseStyle::Snake,
        CaseStyle::Kebab,
        CaseStyle::Flat,
        CaseStyle::ScreamingSnake,
    ];

    /// Joins lowercase tokens according to the style.
    pub fn join(self, tokens: &[String]) -> String {
        let cap = |t: &str| {
            let mut cs = t.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        };
        match self {
            CaseStyle::Camel => tokens
                .iter()
                .enumerate()
                .map(|(i, t)| if i == 0 { t.clone() } else { cap(t) })
                .collect(),
            CaseStyle::Pascal => tokens.iter().map(|t| cap(t)).collect(),
            CaseStyle::Snake => tokens.join("_"),
            CaseStyle::Kebab => tokens.join("-"),
            CaseStyle::Flat => tokens.concat(),
            CaseStyle::ScreamingSnake => tokens.join("_").to_uppercase(),
        }
    }
}

/// A schema's naming style.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NamingStyle {
    /// Case convention.
    pub case: CaseStyle,
    /// Per-token probability of abbreviating (truncation or vowel drop).
    pub abbreviation: f64,
    /// Per-token probability of substituting a synonym.
    pub synonym: f64,
}

impl NamingStyle {
    /// Samples a random style. Abbreviation and synonym rates are kept
    /// moderate so that matchers err but are not hopeless — mirroring the
    /// candidate quality the paper reports (precision ≈ 0.67 on BP).
    pub fn sample(rng: &mut impl Rng) -> Self {
        Self {
            case: *CaseStyle::ALL.choose(rng).expect("non-empty"),
            abbreviation: rng.random_range(0.03..0.18),
            synonym: rng.random_range(0.05..0.25),
        }
    }

    /// Renders a concept's tokens into an attribute name.
    pub fn render(&self, vocab: &Vocabulary, tokens: &[String], rng: &mut impl Rng) -> String {
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        for t in tokens {
            let mut token = t.clone();
            // synonym substitution first (synonyms may be multi-word)
            if rng.random_bool(self.synonym) {
                if let Some(syn) = vocab.synonyms_of(&token).choose(rng) {
                    for part in syn.split_whitespace() {
                        out.push(part.to_string());
                    }
                    continue;
                }
            }
            if token.len() > 4 && rng.random_bool(self.abbreviation) {
                token = abbreviate(&token, rng);
            }
            out.push(token);
        }
        self.case.join(&out)
    }
}

/// Abbreviates a token: either truncation (`quantity` → `quan`) or vowel
/// dropping after the first letter (`supplier` → `spplr`).
fn abbreviate(token: &str, rng: &mut impl Rng) -> String {
    if rng.random_bool(0.6) {
        let keep = rng.random_range(3..=4.min(token.len()));
        token.chars().take(keep).collect()
    } else {
        let mut out = String::new();
        for (i, ch) in token.chars().enumerate() {
            if i == 0 || !matches!(ch, 'a' | 'e' | 'i' | 'o' | 'u') {
                out.push(ch);
            }
        }
        if out.len() < 2 {
            token.to_string()
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toks(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn case_styles_join_correctly() {
        let t = toks(&["supplier", "address"]);
        assert_eq!(CaseStyle::Camel.join(&t), "supplierAddress");
        assert_eq!(CaseStyle::Pascal.join(&t), "SupplierAddress");
        assert_eq!(CaseStyle::Snake.join(&t), "supplier_address");
        assert_eq!(CaseStyle::Kebab.join(&t), "supplier-address");
        assert_eq!(CaseStyle::Flat.join(&t), "supplieraddress");
        assert_eq!(CaseStyle::ScreamingSnake.join(&t), "SUPPLIER_ADDRESS");
    }

    #[test]
    fn single_token_cases() {
        let t = toks(&["date"]);
        assert_eq!(CaseStyle::Camel.join(&t), "date");
        assert_eq!(CaseStyle::Pascal.join(&t), "Date");
    }

    #[test]
    fn abbreviation_shortens_or_keeps() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = abbreviate("quantity", &mut rng);
            assert!(a.len() <= "quantity".len());
            assert!(a.len() >= 2);
            assert!(a.starts_with('q'));
        }
    }

    #[test]
    fn zero_rates_render_canonically() {
        let vocab = Vocabulary::business_partner();
        let style = NamingStyle { case: CaseStyle::Snake, abbreviation: 0.0, synonym: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let name = style.render(&vocab, &toks(&["postal", "code"]), &mut rng);
        assert_eq!(name, "postal_code");
    }

    #[test]
    fn high_synonym_rate_substitutes() {
        let vocab = Vocabulary::business_partner();
        let style = NamingStyle { case: CaseStyle::Snake, abbreviation: 0.0, synonym: 1.0 };
        let mut rng = StdRng::seed_from_u64(3);
        // "number" always has synonyms, so rendering must differ from canonical
        let name = style.render(&vocab, &toks(&["number"]), &mut rng);
        assert_ne!(name, "number");
        assert!(["num", "no", "nr"].contains(&name.as_str()), "{name}");
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let a = NamingStyle::sample(&mut StdRng::seed_from_u64(7));
        let b = NamingStyle::sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn rendered_names_are_nonempty() {
        let vocab = Vocabulary::web_form();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let style = NamingStyle::sample(&mut rng);
            for c in vocab.concepts().iter().take(30) {
                let name = style.render(&vocab, &c.tokens, &mut rng);
                assert!(!name.is_empty());
            }
        }
    }
}
