//! # smn-datasets
//!
//! Synthetic reproductions of the four real-world datasets used in the
//! paper's evaluation (Table II):
//!
//! | Dataset | #Schemas | #Attributes (Min/Max) | Domain |
//! |---------|----------|-----------------------|--------|
//! | BP      | 3        | 80 / 106              | business partners |
//! | PO      | 10       | 35 / 408              | purchase orders |
//! | UAF     | 15       | 65 / 228              | university application forms |
//! | WebForm | 89       | 10 / 120              | assorted web forms |
//!
//! The original datasets were hosted at a now-defunct EPFL URL and are not
//! redistributable, so this crate *generates* datasets with the same shape:
//!
//! * schema counts and attribute min/max match Table II exactly,
//! * schemas share domain **concepts** (drawn from hand-curated vocabularies
//!   expanded combinatorially as *entity × property*), which defines an
//!   exact, constraint-consistent ground-truth selective matching,
//! * each schema renders its concepts through an idiosyncratic **naming
//!   style** (case convention, abbreviation, synonyms), so first-party
//!   string matchers genuinely err — reproducing the error profile the
//!   paper's experiments depend on (§VI-B reports candidate precision
//!   ≈ 0.67 on BP).
//!
//! Everything is deterministic in the seed.

pub mod crowd;
pub mod dataset;
pub mod evolving;
pub mod federation;
pub mod generator;
pub mod presets;
pub mod stats;
pub mod variants;
pub mod vocab;
pub mod workload;

pub use crowd::{mixed_crowd, CrowdSpec};
pub use dataset::Dataset;
pub use evolving::{
    evolving_webform_federation, ChurnEvent, EvolvingFederation, EvolvingFederationSpec,
};
pub use federation::{webform_federation, Federation, FederationSpec};
pub use generator::{DatasetSpec, SharingModel};
pub use presets::{bp, po, uaf, webform};
pub use stats::DatasetStats;
pub use variants::{CaseStyle, NamingStyle};
pub use vocab::{Concept, Vocabulary};
pub use workload::{open_loop, ArrivalEvent, OpenLoopWorkload, SessionAction, WorkloadSpec};
