//! Open-loop serving workloads: seeded session/arrival event streams.
//!
//! The round-mode service drives itself — it decides when to lease
//! questions and when workers answer. A request-driven serving core is
//! driven from *outside*, so benchmarking and testing it needs a
//! workload: thousands of concurrent sessions, each repeatedly asking
//! for a question, thinking for a while, answering, thinking again.
//! [`open_loop`] generates exactly that as a deterministic, lazily
//! evaluated event stream on a logical-time axis:
//!
//! * session `s` starts at a seeded offset and alternates
//!   [`SessionAction::Question`] → (think) → [`SessionAction::Answer`]
//!   → (think) → … until its per-session question quota is spent;
//! * think times are pure splitmix64 functions of
//!   `(seed, session, step)` drawn uniformly from
//!   `[think_min, think_max]` — no RNG state threads through the
//!   stream, so any sub-range can be regenerated independently;
//! * every [`WorkloadSpec::publish_every`] popped events a
//!   [`SessionAction::Publish`] tick is interleaved (count-based, not
//!   time-based, so the tick schedule is invariant to think-time
//!   rescaling);
//! * ties on the time axis break by `(time, session, kind)` through a
//!   binary heap — the merged order is total and reproducible.
//!
//! Logical times are abstract ticks: the serving benchmark submits
//! events as fast as the ingress queue accepts them (open-loop — the
//! generator never waits for the server), and the deterministic suites
//! only rely on the *order*.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shape of an open-loop serving workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Concurrent sessions. Sessions are numbered `0..sessions`.
    pub sessions: u64,
    /// Total questions asked across all sessions, split as evenly as the
    /// division allows (the first `questions % sessions` sessions ask one
    /// more). With `questions < sessions`, only the first `questions`
    /// sessions participate.
    pub questions: u64,
    /// Inclusive lower bound of the think-time draw (ticks).
    pub think_min: u64,
    /// Inclusive upper bound of the think-time draw (ticks).
    pub think_max: u64,
    /// Interleave one [`SessionAction::Publish`] tick every this many
    /// popped events (`0` disables publication ticks).
    pub publish_every: u64,
    /// Seed of every think-time and start-offset draw.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            sessions: 64,
            questions: 256,
            think_min: 1,
            think_max: 16,
            publish_every: 32,
            seed: 0x5E55_1025,
        }
    }
}

/// What one workload event asks the serving core to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionAction {
    /// Session requests its next question.
    Question {
        /// The asking session.
        session: u64,
    },
    /// Session answers its outstanding question.
    Answer {
        /// The answering session.
        session: u64,
    },
    /// A snapshot-publication tick.
    Publish,
}

/// One workload event on the logical time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Logical arrival tick (nondecreasing across the stream).
    pub at: u64,
    /// The action arriving at that tick.
    pub action: SessionAction,
}

/// Lazy open-loop event stream; see [`open_loop`].
#[derive(Debug)]
pub struct OpenLoopWorkload {
    spec: WorkloadSpec,
    /// Min-heap of `(time, session, kind, step)`: kind 0 = question,
    /// 1 = answer; the tuple order makes ties total.
    heap: BinaryHeap<Reverse<(u64, u64, u8, u64)>>,
    /// Remaining questions per participating session.
    remaining: Vec<u64>,
    popped: u64,
}

/// Splitmix64 over `(seed, session, step)` — the stateless think-time
/// generator.
fn mix(seed: u64, session: u64, step: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(session.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(step.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OpenLoopWorkload {
    fn think(&self, session: u64, step: u64) -> u64 {
        let lo = self.spec.think_min.min(self.spec.think_max);
        let hi = self.spec.think_min.max(self.spec.think_max);
        lo + mix(self.spec.seed, session, step) % (hi - lo + 1)
    }
}

impl Iterator for OpenLoopWorkload {
    type Item = ArrivalEvent;

    fn next(&mut self) -> Option<ArrivalEvent> {
        // count-based publish ticks ride between session events, stamped
        // at the time of the event they precede
        if self.spec.publish_every > 0
            && self.popped > 0
            && self.popped % self.spec.publish_every == 0
        {
            if let Some(&Reverse((at, _, _, _))) = self.heap.peek() {
                self.popped += 1; // consume the tick slot
                return Some(ArrivalEvent { at, action: SessionAction::Publish });
            }
        }
        let Reverse((at, session, kind, step)) = self.heap.pop()?;
        self.popped += 1;
        let action = if kind == 0 {
            // the answer follows after one think-time
            self.heap.push(Reverse((
                at + self.think(session, step.wrapping_mul(2).wrapping_add(1)),
                session,
                1,
                step,
            )));
            SessionAction::Question { session }
        } else {
            // schedule the next question, if the quota allows
            let left = &mut self.remaining[session as usize];
            *left -= 1;
            if *left > 0 {
                self.heap.push(Reverse((
                    at + self.think(session, step.wrapping_mul(2).wrapping_add(2)),
                    session,
                    0,
                    step + 1,
                )));
            }
            SessionAction::Answer { session }
        };
        Some(ArrivalEvent { at, action })
    }
}

/// Builds the open-loop workload stream for `spec` — deterministic in
/// the spec, lazily evaluated, `2 × questions` session events plus the
/// interleaved publish ticks.
pub fn open_loop(spec: WorkloadSpec) -> OpenLoopWorkload {
    let participants = spec.sessions.min(spec.questions);
    let mut remaining = vec![0u64; spec.sessions as usize];
    let mut heap = BinaryHeap::new();
    for s in 0..participants {
        let quota = spec.questions / spec.sessions.max(1)
            + u64::from(s < spec.questions % spec.sessions.max(1));
        let quota = if spec.questions < spec.sessions { 1 } else { quota };
        remaining[s as usize] = quota;
        heap.push(Reverse((mix(spec.seed, s, 0) % (spec.think_max.max(1)), s, 0u8, 0u64)));
    }
    OpenLoopWorkload { spec, heap, remaining, popped: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            sessions: 8,
            questions: 40,
            think_min: 1,
            think_max: 9,
            publish_every: 10,
            seed: 42,
        }
    }

    #[test]
    fn stream_is_deterministic_in_the_spec() {
        let a: Vec<ArrivalEvent> = open_loop(spec()).collect();
        let b: Vec<ArrivalEvent> = open_loop(spec()).collect();
        assert_eq!(a, b);
        let c: Vec<ArrivalEvent> = open_loop(WorkloadSpec { seed: 43, ..spec() }).collect();
        assert_ne!(a, c, "a different seed must reshuffle the stream");
    }

    #[test]
    fn event_counts_match_the_quota() {
        let events: Vec<ArrivalEvent> = open_loop(spec()).collect();
        let questions =
            events.iter().filter(|e| matches!(e.action, SessionAction::Question { .. })).count();
        let answers =
            events.iter().filter(|e| matches!(e.action, SessionAction::Answer { .. })).count();
        assert_eq!(questions, 40);
        assert_eq!(answers, 40, "every question is eventually answered");
    }

    #[test]
    fn times_are_nondecreasing_and_sessions_alternate() {
        let events: Vec<ArrivalEvent> = open_loop(spec()).collect();
        let mut last = 0u64;
        let mut outstanding = vec![false; 8];
        for e in &events {
            assert!(e.at >= last, "time went backwards");
            last = e.at;
            match e.action {
                SessionAction::Question { session } => {
                    assert!(!outstanding[session as usize], "question before answering");
                    outstanding[session as usize] = true;
                }
                SessionAction::Answer { session } => {
                    assert!(outstanding[session as usize], "answer without a question");
                    outstanding[session as usize] = false;
                }
                SessionAction::Publish => {}
            }
        }
        assert!(outstanding.iter().all(|o| !o), "every session finishes answered");
    }

    #[test]
    fn every_session_participates_and_publishes_interleave() {
        let events: Vec<ArrivalEvent> = open_loop(spec()).collect();
        for s in 0..8u64 {
            assert!(
                events.iter().any(|e| e.action == SessionAction::Question { session: s }),
                "session {s} never asked"
            );
        }
        let publishes = events.iter().filter(|e| e.action == SessionAction::Publish).count();
        assert!(publishes >= 6, "expected interleaved publish ticks, saw {publishes}");
    }

    #[test]
    fn more_sessions_than_questions_still_answers_everything() {
        let spec = WorkloadSpec { sessions: 16, questions: 5, publish_every: 0, ..spec() };
        let events: Vec<ArrivalEvent> = open_loop(spec).collect();
        let answers =
            events.iter().filter(|e| matches!(e.action, SessionAction::Answer { .. })).count();
        assert_eq!(answers, 5);
        assert!(events.iter().all(|e| e.action != SessionAction::Publish));
    }
}
