//! Preset builders for the four datasets of Table II.
//!
//! Shape statistics (#schemas, attribute min/max) match the paper exactly;
//! the sharing exponent `α` is calibrated per dataset so that the candidate
//! sets produced by the first-party matchers have the size and violation
//! character of the originals (see `EXPERIMENTS.md` for the calibration
//! numbers; e.g. the paper's smallest dataset, BP, yields 142 candidate
//! correspondences and 252/244 violations for COMA/AMC).

use crate::dataset::Dataset;
use crate::generator::{DatasetSpec, SharingModel};
use crate::vocab::Vocabulary;

/// Business Partner: 3 schemas, 80–106 attributes.
pub fn bp(seed: u64) -> Dataset {
    DatasetSpec {
        name: "BP".into(),
        vocabulary: Vocabulary::business_partner(),
        schema_count: 3,
        attrs_min: 80,
        attrs_max: 106,
        sharing: SharingModel::RankBiased { alpha: 0.55 },
    }
    .generate(seed)
}

/// PurchaseOrder: 10 schemas, 35–408 attributes.
pub fn po(seed: u64) -> Dataset {
    DatasetSpec {
        name: "PO".into(),
        vocabulary: Vocabulary::purchase_order(),
        schema_count: 10,
        attrs_min: 35,
        attrs_max: 408,
        sharing: SharingModel::Clustered { clusters: 3, alpha: 0.45, leak: 0.08 },
    }
    .generate(seed)
}

/// University Application Form: 15 schemas, 65–228 attributes.
pub fn uaf(seed: u64) -> Dataset {
    DatasetSpec {
        name: "UAF".into(),
        vocabulary: Vocabulary::university_application(),
        schema_count: 15,
        attrs_min: 65,
        attrs_max: 228,
        sharing: SharingModel::Clustered { clusters: 4, alpha: 0.45, leak: 0.08 },
    }
    .generate(seed)
}

/// WebForm: 89 schemas, 10–120 attributes.
pub fn webform(seed: u64) -> Dataset {
    DatasetSpec {
        name: "WebForm".into(),
        vocabulary: Vocabulary::web_form(),
        schema_count: 89,
        attrs_min: 10,
        attrs_max: 120,
        sharing: SharingModel::Clustered { clusters: 22, alpha: 0.35, leak: 0.015 },
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_the_paper() {
        assert_eq!(bp(1).statistics(), (3, 80, 106));
        assert_eq!(po(1).statistics(), (10, 35, 408));
        assert_eq!(uaf(1).statistics(), (15, 65, 228));
        assert_eq!(webform(1).statistics(), (89, 10, 120));
    }

    #[test]
    fn bp_ground_truth_is_substantial() {
        let d = bp(1);
        let truth = d.selective_matching(&d.complete_graph());
        // BP candidates number 142 in the paper; the truth should be of
        // comparable magnitude so calibrated matchers can reproduce that.
        assert!(truth.len() >= 60, "BP truth too small: {}", truth.len());
        assert!(truth.len() <= 320, "BP truth too large: {}", truth.len());
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(bp(5).catalog, bp(5).catalog);
        assert_eq!(webform(5).catalog, webform(5).catalog);
    }
}
