//! The dataset generator.
//!
//! Given a [`DatasetSpec`] (domain vocabulary, schema count, attribute
//! range, concept-sharing model) and a seed, [`DatasetSpec::generate`]
//! produces a [`Dataset`]:
//!
//! 1. Schema sizes are drawn from `[attrs_min, attrs_max]`, with one schema
//!    pinned to each bound so the generated Table II row matches the paper
//!    exactly.
//! 2. Each schema samples its concepts *without replacement* using
//!    rank-biased weights (`w_i = 1/(1+i)^α`, Efraimidis–Spirakis weighted
//!    reservoir keys): low-id concepts are "popular" and appear in most
//!    schemas, which controls how much ground truth overlaps between
//!    schemas.
//! 3. Each schema renders its concepts through a sampled [`NamingStyle`];
//!    name collisions fall back to progressively more canonical renderings.

use crate::dataset::Dataset;
use crate::variants::NamingStyle;
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How concepts are shared across schemas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharingModel {
    /// Concept `i` is sampled with weight `1/(1+i)^alpha`. Larger `alpha`
    /// concentrates schemas on the popular concepts (more overlap, larger
    /// selective matching); `alpha = 0` is uniform sampling.
    RankBiased {
        /// Popularity decay exponent.
        alpha: f64,
    },
    /// Topical clustering: the concept pool is split into `clusters`
    /// contiguous blocks and schema `s` samples mostly from block
    /// `s % clusters`, with out-of-cluster weights damped by `leak`.
    /// Models heterogeneous corpora like the WebForm dataset, where a
    /// flight-search form and a movie catalog share only generic concepts
    /// — pairwise overlap (and with it candidate/violation counts) stays
    /// low even in large networks.
    Clustered {
        /// Number of topical clusters.
        clusters: usize,
        /// Popularity decay exponent within the reachable pool.
        alpha: f64,
        /// Multiplier (< 1) on out-of-cluster concept weights.
        leak: f64,
    },
}

/// Specification of a dataset to generate.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset label.
    pub name: String,
    /// Domain vocabulary (concept pool).
    pub vocabulary: Vocabulary,
    /// Number of schemas (Table II `#Schemas`).
    pub schema_count: usize,
    /// Smallest schema size (Table II min).
    pub attrs_min: usize,
    /// Largest schema size (Table II max).
    pub attrs_max: usize,
    /// Concept-sharing model.
    pub sharing: SharingModel,
}

impl DatasetSpec {
    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if the vocabulary is smaller than `attrs_max` or the bounds
    /// are inconsistent.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.schema_count >= 1, "need at least one schema");
        assert!(self.attrs_min >= 1 && self.attrs_min <= self.attrs_max, "bad attribute bounds");
        assert!(
            self.vocabulary.len() >= self.attrs_max,
            "vocabulary ({}) smaller than largest schema ({})",
            self.vocabulary.len(),
            self.attrs_max
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. schema sizes: pin the bounds, draw the rest, shuffle
        let mut sizes = Vec::with_capacity(self.schema_count);
        sizes.push(self.attrs_min);
        if self.schema_count >= 2 {
            sizes.push(self.attrs_max);
        }
        while sizes.len() < self.schema_count {
            sizes.push(rng.random_range(self.attrs_min..=self.attrs_max));
        }
        sizes.shuffle(&mut rng);

        let pool = self.vocabulary.len();
        let mut builder = smn_schema::CatalogBuilder::new();
        let mut concept_of: Vec<u32> = Vec::new();
        for (si, &size) in sizes.iter().enumerate() {
            let weights: Vec<f64> = match self.sharing {
                SharingModel::RankBiased { alpha } => {
                    (0..pool).map(|i| 1.0 / (1.0 + i as f64).powf(alpha)).collect()
                }
                SharingModel::Clustered { clusters, alpha, leak } => {
                    let clusters = clusters.max(1);
                    let mine = si % clusters;
                    (0..pool)
                        .map(|i| {
                            let cluster = i * clusters / pool;
                            let base = 1.0 / (1.0 + i as f64).powf(alpha);
                            if cluster == mine {
                                base
                            } else {
                                leak * base
                            }
                        })
                        .collect()
                }
            };
            let schema = builder
                .add_schema(format!("{}_{:02}", self.name.to_lowercase(), si))
                .expect("generated schema names are unique");
            let style = NamingStyle::sample(&mut rng);
            let concepts = sample_without_replacement(&weights, size, &mut rng);
            let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
            for cid in concepts {
                let concept = self.vocabulary.concept(cid);
                let name = self.unique_name(&style, concept, &mut used, &mut rng);
                builder.add_attribute(schema, name).expect("name uniqueness enforced");
                concept_of.push(cid);
            }
        }
        Dataset::new(self.name.clone(), builder.build(), concept_of)
    }

    /// Renders a collision-free attribute name: styled rendering (three
    /// attempts), then canonical tokens in the schema's case, then
    /// canonical snake_case, then an id-suffixed last resort.
    fn unique_name(
        &self,
        style: &NamingStyle,
        concept: &crate::vocab::Concept,
        used: &mut std::collections::HashSet<String>,
        rng: &mut StdRng,
    ) -> String {
        for _ in 0..3 {
            let name = style.render(&self.vocabulary, &concept.tokens, rng);
            if used.insert(name.clone()) {
                return name;
            }
        }
        let canonical_cased = style.case.join(&concept.tokens);
        if used.insert(canonical_cased.clone()) {
            return canonical_cased;
        }
        let canonical = concept.tokens.join("_");
        if used.insert(canonical.clone()) {
            return canonical;
        }
        let fallback = format!("{}_{}", concept.tokens.join("_"), concept.id);
        assert!(used.insert(fallback.clone()), "id-suffixed names are unique");
        fallback
    }
}

/// Weighted sampling of `k` indices without replacement
/// (Efraimidis–Spirakis: take the `k` largest `u^(1/w)` keys).
fn sample_without_replacement(weights: &[f64], k: usize, rng: &mut impl Rng) -> Vec<u32> {
    debug_assert!(k <= weights.len());
    let mut keyed: Vec<(f64, u32)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            (u.powf(1.0 / w), u32::try_from(i).expect("index fits u32"))
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut out: Vec<u32> = keyed.into_iter().take(k).map(|(_, i)| i).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, lo: usize, hi: usize, alpha: f64) -> DatasetSpec {
        DatasetSpec {
            name: "T".into(),
            vocabulary: Vocabulary::business_partner(),
            schema_count: n,
            attrs_min: lo,
            attrs_max: hi,
            sharing: SharingModel::RankBiased { alpha },
        }
    }

    #[test]
    fn statistics_match_spec_exactly() {
        let d = spec(5, 20, 60, 0.6).generate(1);
        assert_eq!(d.statistics(), (5, 20, 60));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = spec(4, 10, 30, 0.5).generate(9);
        let b = spec(4, 10, 30, 0.5).generate(9);
        assert_eq!(a.catalog, b.catalog);
        let c = spec(4, 10, 30, 0.5).generate(10);
        assert_ne!(a.catalog, c.catalog);
    }

    #[test]
    fn concepts_unique_within_schema() {
        let d = spec(6, 30, 80, 0.8).generate(3);
        for s in d.catalog.schemas() {
            let mut seen = std::collections::HashSet::new();
            for &a in &s.attributes {
                assert!(seen.insert(d.concept_of(a)), "duplicate concept in schema {}", s.name);
            }
        }
    }

    #[test]
    fn clustered_sharing_reduces_cross_cluster_overlap() {
        let clustered = DatasetSpec {
            sharing: SharingModel::Clustered { clusters: 4, alpha: 0.4, leak: 0.02 },
            ..spec(8, 30, 40, 0.4)
        }
        .generate(5);
        let pooled = spec(8, 30, 40, 0.4).generate(5);
        let g = clustered.complete_graph();
        let t_clustered = clustered.selective_matching(&g).len();
        let t_pooled = pooled.selective_matching(&g).len();
        assert!(
            t_clustered < t_pooled,
            "clustering should shrink ground-truth overlap: {t_clustered} vs {t_pooled}"
        );
        // same-cluster pairs (0,4) share much more than cross-cluster (0,1)
        use crate::stats::DatasetStats;
        use smn_schema::SchemaId;
        let same = DatasetStats::shared_concepts(&clustered, SchemaId(0), SchemaId(4));
        let cross = DatasetStats::shared_concepts(&clustered, SchemaId(0), SchemaId(1));
        assert!(same > cross, "same-cluster {same} vs cross-cluster {cross}");
    }

    #[test]
    fn higher_alpha_increases_overlap() {
        let low = spec(4, 50, 80, 0.0).generate(5);
        let high = spec(4, 50, 80, 1.2).generate(5);
        let g = low.complete_graph();
        let t_low = low.selective_matching(&g).len();
        let t_high = high.selective_matching(&g).len();
        assert!(
            t_high > t_low,
            "rank bias should increase ground-truth overlap: {t_high} vs {t_low}"
        );
    }

    #[test]
    fn ground_truth_is_one_to_one_consistent() {
        // each concept appears once per schema → per edge, an attribute has
        // at most one true partner
        let d = spec(5, 20, 40, 0.7).generate(11);
        let truth = d.selective_matching(&d.complete_graph());
        let mut seen_pairs = std::collections::HashSet::new();
        for c in &truth {
            let (sa, sb) = (d.catalog.schema_of(c.a()), d.catalog.schema_of(c.b()));
            assert!(seen_pairs.insert((c.a(), sb)), "attribute matched twice into one schema");
            assert!(seen_pairs.insert((c.b(), sa)), "attribute matched twice into one schema");
        }
    }

    #[test]
    fn weighted_sampling_respects_k_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let s = sample_without_replacement(&weights, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "sorted output must be duplicate-free");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights: Vec<f64> = (0..50).map(|i| 1.0 / (1.0 + i as f64).powf(1.5)).collect();
        let mut hits0 = 0;
        let mut hits49 = 0;
        for _ in 0..200 {
            let s = sample_without_replacement(&weights, 5, &mut rng);
            if s.contains(&0) {
                hits0 += 1;
            }
            if s.contains(&49) {
                hits49 += 1;
            }
        }
        assert!(hits0 > hits49 * 3, "item 0 ({hits0}) should dominate item 49 ({hits49})");
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn oversized_schema_rejected() {
        let _ = spec(2, 10, 100_000, 0.5).generate(0);
    }

    #[test]
    fn single_schema_dataset() {
        let d = spec(1, 15, 40, 0.5).generate(7);
        // with one schema the single size drawn is the min bound
        assert_eq!(d.catalog.schema_count(), 1);
        assert_eq!(d.catalog.schema(smn_schema::SchemaId(0)).len(), 15);
    }
}
