//! Domain vocabularies.
//!
//! A [`Vocabulary`] is a pool of [`Concept`]s — the real-world notions
//! ("supplier street address", "applicant birth date") that attributes of
//! different schemas may denote. Two attributes correspond in the ground
//! truth iff they denote the same concept.
//!
//! Concepts are produced two ways:
//!
//! * a hand-curated list of standalone concepts per domain, and
//! * a combinatorial *entity × property* expansion (`supplier` × `address`,
//!   `order` × `date`, …), which yields the hundreds of concepts the larger
//!   datasets need (PO schemas reach 408 attributes) while staying
//!   realistic.
//!
//! The per-token synonym table drives the name-variant generator in
//! [`crate::variants`]; it is also what creates the *hard* confusions
//! (`releaseDate` vs `screenDate` style) that make reconciliation
//! non-trivial.

use serde::{Deserialize, Serialize};

/// A real-world notion that schema attributes can denote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Concept {
    /// Dense id within the vocabulary.
    pub id: u32,
    /// Canonical lowercase tokens, e.g. `["supplier", "address"]`.
    pub tokens: Vec<String>,
}

impl Concept {
    /// Canonical display name (tokens joined by space).
    pub fn canonical(&self) -> String {
        self.tokens.join(" ")
    }
}

/// A pool of concepts plus a synonym table for name rendering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    /// Domain label (`business-partner`, `purchase-order`, …).
    pub domain: String,
    concepts: Vec<Concept>,
    /// `(token, synonyms)` pairs used by the variant generator.
    synonyms: Vec<(String, Vec<String>)>,
}

impl Vocabulary {
    /// Builds a vocabulary from entity/property/standalone word lists.
    pub fn compose(
        domain: &str,
        entities: &[&str],
        properties: &[&str],
        standalone: &[&str],
        synonyms: &[(&str, &[&str])],
    ) -> Self {
        let mut concepts = Vec::new();
        let mut push = |tokens: Vec<String>| {
            let id = u32::try_from(concepts.len()).expect("concept overflow");
            concepts.push(Concept { id, tokens });
        };
        for s in standalone {
            push(s.split_whitespace().map(str::to_string).collect());
        }
        for e in entities {
            for p in properties {
                let mut tokens: Vec<String> = e.split_whitespace().map(str::to_string).collect();
                tokens.extend(p.split_whitespace().map(str::to_string));
                push(tokens);
            }
        }
        let synonyms = synonyms
            .iter()
            .map(|(k, vs)| (k.to_string(), vs.iter().map(|v| v.to_string()).collect()))
            .collect();
        Self { domain: domain.to_string(), concepts, synonyms }
    }

    /// Number of concepts in the pool.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// All concepts, id-ordered. Lower ids are treated as more "popular" by
    /// the generator (they appear in more schemas).
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Concept by id.
    pub fn concept(&self, id: u32) -> &Concept {
        &self.concepts[id as usize]
    }

    /// Synonyms of a token (empty if none).
    pub fn synonyms_of(&self, token: &str) -> &[String] {
        self.synonyms.iter().find(|(k, _)| k == token).map(|(_, v)| v.as_slice()).unwrap_or(&[])
    }

    /// The business-partner domain (BP dataset).
    pub fn business_partner() -> Self {
        Self::compose(
            "business-partner",
            &[
                "partner",
                "company",
                "contact",
                "billing",
                "shipping",
                "bank",
                "tax",
                "legal",
                "sales",
                "account",
                "branch",
                "headquarters",
                "representative",
            ],
            &[
                "id",
                "name",
                "code",
                "type",
                "status",
                "number",
                "address",
                "street",
                "city",
                "region",
                "postal code",
                "country",
                "phone",
                "fax",
                "email",
                "currency",
                "language",
                "category",
                "rating",
                "since date",
                "valid date",
            ],
            &[
                "vat number",
                "duns number",
                "industry sector",
                "employee count",
                "annual revenue",
                "credit limit",
                "payment terms",
                "discount rate",
                "website",
                "time zone",
                "incorporation date",
            ],
            COMMON_SYNONYMS,
        )
    }

    /// The purchase-order domain (PO dataset).
    pub fn purchase_order() -> Self {
        Self::compose(
            "purchase-order",
            &[
                "order",
                "item",
                "product",
                "supplier",
                "buyer",
                "invoice",
                "payment",
                "delivery",
                "shipment",
                "warehouse",
                "contract",
                "line",
                "customer",
                "vendor",
                "freight",
                "package",
                "return",
                "credit",
                "quote",
                "receipt",
            ],
            &[
                "id",
                "number",
                "name",
                "code",
                "date",
                "status",
                "type",
                "amount",
                "price",
                "quantity",
                "unit",
                "total",
                "tax",
                "discount",
                "currency",
                "description",
                "reference",
                "address",
                "city",
                "country",
                "weight",
                "comment",
                "due date",
                "category",
            ],
            &[
                "purchase order number",
                "requested delivery date",
                "incoterms",
                "settlement date",
                "gross amount",
                "net amount",
                "carrier name",
                "tracking number",
                "bill of lading",
                "customs declaration",
            ],
            COMMON_SYNONYMS,
        )
    }

    /// The university-application-form domain (UAF dataset).
    pub fn university_application() -> Self {
        Self::compose(
            "university-application",
            &[
                "applicant",
                "student",
                "parent",
                "guardian",
                "school",
                "college",
                "program",
                "course",
                "test",
                "essay",
                "recommendation",
                "transcript",
                "enrollment",
                "scholarship",
                "residence",
                "emergency contact",
            ],
            &[
                "id",
                "name",
                "first name",
                "last name",
                "middle name",
                "date",
                "birth date",
                "gender",
                "address",
                "city",
                "state",
                "zip",
                "country",
                "phone",
                "email",
                "status",
                "type",
                "score",
                "grade",
                "year",
                "term",
                "level",
                "title",
                "code",
            ],
            &[
                "gpa",
                "sat score",
                "act score",
                "toefl score",
                "citizenship",
                "visa status",
                "intended major",
                "application deadline",
                "high school name",
                "graduation year",
                "financial aid requested",
                "ethnicity",
                "veteran status",
            ],
            COMMON_SYNONYMS,
        )
    }

    /// The assorted web-forms domain (WebForm dataset).
    pub fn web_form() -> Self {
        Self::compose(
            "web-form",
            &[
                "user",
                "account",
                "contact",
                "billing",
                "shipping",
                "card",
                "search",
                "booking",
                "flight",
                "hotel",
                "car",
                "passenger",
                "guest",
                "member",
                "profile",
                "subscription",
                "feedback",
                "movie",
                "event",
            ],
            &[
                "id",
                "name",
                "first name",
                "last name",
                "email",
                "password",
                "phone",
                "address",
                "city",
                "state",
                "zip",
                "country",
                "date",
                "start date",
                "end date",
                "number",
                "type",
                "status",
                "count",
                "time",
                "price",
                "category",
                "rating",
                "comment",
            ],
            &[
                "promo code",
                "departure airport",
                "arrival airport",
                "check in date",
                "check out date",
                "room count",
                "adult count",
                "child count",
                "security code",
                "expiry date",
                "newsletter opt in",
                "screen name",
                "release date",
                "production date",
            ],
            COMMON_SYNONYMS,
        )
    }
}

/// Per-token synonyms shared by all domains. Rendering may substitute a
/// token by one of its synonyms, which is what defeats naive exact-name
/// matching and produces realistic matcher errors.
const COMMON_SYNONYMS: &[(&str, &[&str])] = &[
    ("id", &["identifier", "key"]),
    ("number", &["num", "no", "nr"]),
    ("name", &["title", "label"]),
    ("code", &["cd", "abbreviation"]),
    ("date", &["day", "dt"]),
    ("address", &["addr", "location"]),
    ("street", &["st", "road"]),
    ("city", &["town", "municipality"]),
    ("region", &["state", "province"]),
    ("postal", &["zip"]),
    ("phone", &["telephone", "tel"]),
    ("email", &["mail", "e mail"]),
    ("amount", &["sum", "value"]),
    ("price", &["cost", "rate"]),
    ("quantity", &["qty", "count"]),
    ("type", &["kind", "category"]),
    ("status", &["state flag", "condition"]),
    ("comment", &["note", "remark"]),
    ("description", &["desc", "details"]),
    ("supplier", &["vendor", "seller"]),
    ("buyer", &["purchaser", "client"]),
    ("customer", &["client", "consumer"]),
    ("order", &["purchase", "po"]),
    ("delivery", &["shipping", "dispatch"]),
    ("birth", &["born"]),
    ("first", &["given"]),
    ("last", &["family", "sur"]),
    ("total", &["overall", "grand"]),
    ("reference", &["ref"]),
    ("applicant", &["candidate"]),
    ("program", &["programme", "major"]),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_domains_build_and_are_large_enough() {
        // PO schemas reach 408 attributes, so its pool must exceed that.
        assert!(Vocabulary::purchase_order().len() >= 408 + 20);
        assert!(Vocabulary::business_partner().len() >= 106 + 20);
        assert!(Vocabulary::university_application().len() >= 228 + 20);
        assert!(Vocabulary::web_form().len() >= 120 + 20);
    }

    #[test]
    fn concept_ids_are_dense_and_canonical_names_unique() {
        for vocab in [
            Vocabulary::business_partner(),
            Vocabulary::purchase_order(),
            Vocabulary::university_application(),
            Vocabulary::web_form(),
        ] {
            let mut names = HashSet::new();
            for (i, c) in vocab.concepts().iter().enumerate() {
                assert_eq!(c.id as usize, i);
                assert!(!c.tokens.is_empty());
                assert!(
                    names.insert(c.canonical()),
                    "duplicate concept {:?} in {}",
                    c.canonical(),
                    vocab.domain
                );
            }
        }
    }

    #[test]
    fn synonyms_lookup() {
        let v = Vocabulary::purchase_order();
        assert!(v.synonyms_of("number").contains(&"num".to_string()));
        assert!(v.synonyms_of("nonexistent-token").is_empty());
    }

    #[test]
    fn tokens_are_lowercase_words() {
        for vocab in [Vocabulary::business_partner(), Vocabulary::web_form()] {
            for c in vocab.concepts() {
                for t in &c.tokens {
                    assert!(t.chars().all(|ch| ch.is_lowercase() || ch.is_numeric()), "{t:?}");
                }
            }
        }
    }

    #[test]
    fn concept_accessor_roundtrips() {
        let v = Vocabulary::business_partner();
        let c = v.concept(5);
        assert_eq!(c.id, 5);
        assert_eq!(v.concepts()[5], *c);
    }
}
