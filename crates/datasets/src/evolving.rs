//! Evolving-network scenario generation: arrival/churn schedules over a
//! federation.
//!
//! The paper builds the matching network once (Algorithm 1) and
//! reconciles it pay-as-you-go; a production catalog, however, sees
//! matcher output *arrive and retire continuously* — new sources are
//! onboarded, stale correspondences are withdrawn. [`EvolvingFederation`]
//! models that regime on top of the multi-component
//! [`Federation`] scenario: a fraction of the candidate
//! pool is present at t₀, the rest arrives as a deterministic stream
//! interleaved with retirements of live candidates ("churn"). The
//! schedule is a pure function of the spec and its seed, so the
//! incremental-maintenance experiments (`exp_evolve`) and the
//! differential harnesses replay identical histories.
//!
//! The schedule speaks in *pool indices* — positions in whatever candidate
//! list the consumer derives (typically the matcher output over the fused
//! federation in candidate-id order) — because the dataset layer neither
//! runs matchers nor owns candidate ids.

use crate::federation::{Federation, FederationSpec};
use crate::generator::SharingModel;
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event of an evolution schedule, in terms of pool indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The pool candidate at this index joins the network.
    Arrive(usize),
    /// The (currently live) pool candidate at this index leaves it.
    Retire(usize),
}

/// Specification of an evolving federation: the base federation plus the
/// arrival/churn regime.
#[derive(Debug, Clone)]
pub struct EvolvingFederationSpec {
    /// The underlying multi-component scenario.
    pub federation: FederationSpec,
    /// Fraction of the candidate pool present at t₀ (clamped to `[0, 1]`).
    pub initial_fraction: f64,
    /// Probability that the next event is a retirement of a live
    /// candidate rather than the next arrival (clamped to `[0, 0.9]` so
    /// the stream always drains).
    pub churn: f64,
}

impl EvolvingFederationSpec {
    /// Generates the federation and fixes the schedule seed.
    pub fn generate(&self, seed: u64) -> EvolvingFederation {
        EvolvingFederation {
            federation: self.federation.generate(seed),
            initial_fraction: self.initial_fraction.clamp(0.0, 1.0),
            churn: self.churn.clamp(0.0, 0.9),
            seed,
        }
    }
}

/// A generated evolving scenario: the fused federation plus the
/// deterministic churn schedule over any candidate pool drawn from it.
#[derive(Debug, Clone)]
pub struct EvolvingFederation {
    /// The fused multi-component scenario (catalog, graph, ground truth).
    pub federation: Federation,
    /// Fraction of the pool present at t₀.
    pub initial_fraction: f64,
    /// Retirement probability per event.
    pub churn: f64,
    /// Schedule seed (independent draws from the federation's own
    /// generation, but fixed by the same seed for reproducibility).
    pub seed: u64,
}

impl EvolvingFederation {
    /// How many of `pool` candidates are present at t₀ (the first
    /// `initial_count` pool indices, mirroring matcher output order).
    pub fn initial_count(&self, pool: usize) -> usize {
        ((pool as f64) * self.initial_fraction).floor() as usize
    }

    /// The deterministic event stream over a pool of `pool` candidates:
    /// the non-initial candidates arrive in a seed-shuffled order,
    /// interleaved — with probability [`churn`](EvolvingFederation::churn)
    /// per event — with retirements of uniformly drawn live candidates.
    /// Every non-initial candidate arrives exactly once; a retired
    /// candidate never re-arrives (its slot is simply gone, like a source
    /// taken offline).
    pub fn schedule(&self, pool: usize) -> Vec<ChurnEvent> {
        let initial = self.initial_count(pool);
        // decorrelated from the federation generation, which consumes the
        // raw seed
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5C11_ED01_E701_7EED);
        // Fisher–Yates over the pending arrivals (the vendored rand has no
        // shuffle adapter)
        let mut pending: Vec<usize> = (initial..pool).collect();
        for i in (1..pending.len()).rev() {
            let j = rng.random_range(0..=i);
            pending.swap(i, j);
        }
        pending.reverse(); // pop() consumes in shuffled order
        let mut live: Vec<usize> = (0..initial).collect();
        let mut events = Vec::new();
        while let Some(&next) = pending.last() {
            if !live.is_empty() && rng.random_bool(self.churn) {
                let victim = live.swap_remove(rng.random_range(0..live.len()));
                events.push(ChurnEvent::Retire(victim));
            } else {
                pending.pop();
                live.push(next);
                events.push(ChurnEvent::Arrive(next));
            }
        }
        events
    }
}

/// Preset evolving scenario in the WebForm regime: the
/// [`webform_federation`](crate::federation::webform_federation) shape
/// (12 clusters of 3 small forms) with 60% of the matcher output live at
/// t₀ and one retirement per four events on average.
pub fn evolving_webform_federation(seed: u64) -> EvolvingFederation {
    EvolvingFederationSpec {
        federation: FederationSpec {
            name: "WebFormFedEvolve".into(),
            vocabulary: Vocabulary::web_form(),
            groups: 12,
            schemas_per_group: 3,
            attrs_min: 8,
            attrs_max: 14,
            sharing: SharingModel::RankBiased { alpha: 0.9 },
        },
        initial_fraction: 0.6,
        churn: 0.25,
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EvolvingFederationSpec {
        EvolvingFederationSpec {
            federation: FederationSpec {
                name: "Evo".into(),
                vocabulary: Vocabulary::business_partner(),
                groups: 3,
                schemas_per_group: 3,
                attrs_min: 5,
                attrs_max: 8,
                sharing: SharingModel::RankBiased { alpha: 1.2 },
            },
            initial_fraction: 0.5,
            churn: 0.3,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_complete() {
        let evo = small().generate(5);
        let a = evo.schedule(40);
        let b = evo.schedule(40);
        assert_eq!(a, b, "same seed, same schedule");
        let c = small().generate(6).schedule(40);
        assert_ne!(a, c, "different seeds diverge");
        // every non-initial candidate arrives exactly once
        let initial = evo.initial_count(40);
        assert_eq!(initial, 20);
        let mut arrived: Vec<usize> = a
            .iter()
            .filter_map(|e| match e {
                ChurnEvent::Arrive(i) => Some(*i),
                ChurnEvent::Retire(_) => None,
            })
            .collect();
        arrived.sort_unstable();
        assert_eq!(arrived, (initial..40).collect::<Vec<_>>());
    }

    #[test]
    fn retirements_only_target_live_candidates() {
        let evo = small().generate(9);
        let pool = 60;
        let mut live: Vec<bool> = (0..pool).map(|i| i < evo.initial_count(pool)).collect();
        let mut retirements = 0;
        for event in evo.schedule(pool) {
            match event {
                ChurnEvent::Arrive(i) => {
                    assert!(!live[i], "arrival of an already-live candidate");
                    live[i] = true;
                }
                ChurnEvent::Retire(i) => {
                    assert!(live[i], "retirement of a dead candidate");
                    live[i] = false;
                    retirements += 1;
                }
            }
        }
        assert!(retirements > 0, "churn 0.3 over 30 arrivals should retire something");
    }

    #[test]
    fn zero_churn_is_a_pure_arrival_stream() {
        let evo = EvolvingFederationSpec { churn: 0.0, ..small() }.generate(3);
        let events = evo.schedule(20);
        assert_eq!(events.len(), 20 - evo.initial_count(20));
        assert!(events.iter().all(|e| matches!(e, ChurnEvent::Arrive(_))));
    }

    #[test]
    fn preset_matches_the_federation_shape() {
        let evo = evolving_webform_federation(1);
        assert_eq!(evo.federation.groups, 12);
        assert_eq!(evo.federation.dataset.catalog.schema_count(), 36);
        assert!((evo.initial_fraction - 0.6).abs() < 1e-12);
    }
}
