//! Dataset diagnostics: concept sharing and ground-truth geometry.
//!
//! These measures explain *why* a generated dataset behaves the way it
//! does in reconciliation experiments: the pairwise concept overlap decides
//! the selective-matching size, and the popularity histogram shows how the
//! rank-biased sharing model distributes concepts across schemas.

use crate::dataset::Dataset;
use smn_schema::SchemaId;
use std::collections::{HashMap, HashSet};

/// Summary statistics of a dataset's concept structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of distinct concepts used by at least one schema.
    pub distinct_concepts: usize,
    /// For each concept in use, in how many schemas it appears
    /// (descending).
    pub concept_popularity: Vec<usize>,
    /// Mean pairwise concept overlap (Jaccard) across all schema pairs.
    pub mean_pairwise_overlap: f64,
}

impl DatasetStats {
    /// Computes the statistics for a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        let catalog = &dataset.catalog;
        let mut per_schema: Vec<HashSet<u32>> = vec![HashSet::new(); catalog.schema_count()];
        let mut usage: HashMap<u32, usize> = HashMap::new();
        for a in catalog.attributes() {
            let concept = dataset.concept_of(a.id);
            if per_schema[a.schema.index()].insert(concept) {
                *usage.entry(concept).or_insert(0) += 1;
            }
        }
        let mut concept_popularity: Vec<usize> = usage.values().copied().collect();
        concept_popularity.sort_unstable_by(|a, b| b.cmp(a));

        let n = catalog.schema_count();
        let mut overlap_sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let inter = per_schema[i].intersection(&per_schema[j]).count();
                let union = per_schema[i].len() + per_schema[j].len() - inter;
                if union > 0 {
                    overlap_sum += inter as f64 / union as f64;
                }
                pairs += 1;
            }
        }
        Self {
            distinct_concepts: usage.len(),
            concept_popularity,
            mean_pairwise_overlap: if pairs == 0 { 0.0 } else { overlap_sum / pairs as f64 },
        }
    }

    /// Expected selective-matching size on a complete graph: the sum over
    /// concepts of `C(popularity, 2)` (each schema pair sharing a concept
    /// contributes one correspondence).
    pub fn complete_graph_truth_size(&self) -> usize {
        self.concept_popularity.iter().map(|&k| k * (k - 1) / 2).sum()
    }

    /// Concepts shared by two specific schemas.
    pub fn shared_concepts(dataset: &Dataset, s1: SchemaId, s2: SchemaId) -> usize {
        let set1: HashSet<u32> =
            dataset.catalog.schema(s1).attributes.iter().map(|&a| dataset.concept_of(a)).collect();
        dataset
            .catalog
            .schema(s2)
            .attributes
            .iter()
            .filter(|&&a| set1.contains(&dataset.concept_of(a)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DatasetSpec, SharingModel};
    use crate::vocab::Vocabulary;

    fn dataset(alpha: f64, seed: u64) -> Dataset {
        DatasetSpec {
            name: "S".into(),
            vocabulary: Vocabulary::business_partner(),
            schema_count: 4,
            attrs_min: 20,
            attrs_max: 40,
            sharing: SharingModel::RankBiased { alpha },
        }
        .generate(seed)
    }

    #[test]
    fn truth_size_prediction_matches_generator() {
        let d = dataset(0.7, 3);
        let stats = DatasetStats::of(&d);
        let predicted = stats.complete_graph_truth_size();
        let actual = d.selective_matching(&d.complete_graph()).len();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn popularity_is_bounded_by_schema_count() {
        let d = dataset(0.9, 5);
        let stats = DatasetStats::of(&d);
        assert!(!stats.concept_popularity.is_empty());
        assert!(stats.concept_popularity.iter().all(|&k| (1..=4).contains(&k)));
        // descending order
        assert!(stats.concept_popularity.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn higher_alpha_increases_overlap_statistic() {
        let lo = DatasetStats::of(&dataset(0.0, 7)).mean_pairwise_overlap;
        let hi = DatasetStats::of(&dataset(1.2, 7)).mean_pairwise_overlap;
        assert!(hi > lo, "rank bias should raise overlap: {hi} vs {lo}");
    }

    #[test]
    fn shared_concepts_symmetry() {
        let d = dataset(0.6, 11);
        let a = DatasetStats::shared_concepts(&d, SchemaId(0), SchemaId(1));
        let b = DatasetStats::shared_concepts(&d, SchemaId(1), SchemaId(0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_concepts_at_most_vocabulary() {
        let d = dataset(0.5, 13);
        let stats = DatasetStats::of(&d);
        assert!(stats.distinct_concepts <= Vocabulary::business_partner().len());
        assert!(stats.distinct_concepts >= 40, "four schemas of ≥20 attributes");
    }
}
