//! Multi-component scenario generation: federations of small sparse
//! networks fused into one catalog.
//!
//! Real schema matching networks rarely form one giant conflict cluster —
//! the WebForm dataset of §VI is a corpus of topical clusters whose
//! candidate sets barely touch. A [`FederationSpec`] models the extreme of
//! that regime: `groups` independent sub-networks, each generated like a
//! regular [`DatasetSpec`], fused into a single [`Dataset`] whose
//! interaction graph is a disjoint union of per-group cliques. With no
//! cross-group edges there are no cross-group candidates, so the conflict
//! graph of any matcher output decomposes into at least `groups`
//! components — the workload the component-sharded probabilistic model
//! (`smn-core::shard`) is built for, and the scenario behind the
//! `sharding` bench group.

use crate::dataset::Dataset;
use crate::generator::{DatasetSpec, SharingModel};
use crate::vocab::Vocabulary;
use smn_schema::InteractionGraph;

/// A generated federation: the fused catalog plus its group-clique
/// interaction graph (the graph is not derivable from the catalog alone,
/// so the pair travels together).
#[derive(Debug, Clone)]
pub struct Federation {
    /// The fused dataset; ground truth (`selective_matching`) stays
    /// group-local because concept ids are offset per group.
    pub dataset: Dataset,
    /// Disjoint union of per-group cliques
    /// ([`InteractionGraph::disjoint_cliques`]).
    pub graph: InteractionGraph,
    /// Number of fused sub-networks.
    pub groups: usize,
}

/// Specification of a federation of small sparse networks.
#[derive(Debug, Clone)]
pub struct FederationSpec {
    /// Federation label.
    pub name: String,
    /// Domain vocabulary, shared by every group (concept ids are offset
    /// per group so the ground truth never crosses groups).
    pub vocabulary: Vocabulary,
    /// Number of independent sub-networks.
    pub groups: usize,
    /// Schemas per sub-network.
    pub schemas_per_group: usize,
    /// Smallest schema size within a group.
    pub attrs_min: usize,
    /// Largest schema size within a group.
    pub attrs_max: usize,
    /// Concept-sharing model within each group.
    pub sharing: SharingModel,
}

impl FederationSpec {
    /// Generates the federation deterministically from `seed`: group `g`
    /// is a regular [`DatasetSpec`] generation under `seed + g`, and the
    /// groups are fused schema-by-schema into one catalog.
    ///
    /// # Panics
    /// Panics under the same conditions as [`DatasetSpec::generate`].
    pub fn generate(&self, seed: u64) -> Federation {
        assert!(self.groups >= 1, "need at least one group");
        let vocab_len = u32::try_from(self.vocabulary.len()).expect("vocabulary fits u32");
        let mut builder = smn_schema::CatalogBuilder::new();
        let mut concept_of: Vec<u32> = Vec::new();
        for g in 0..self.groups {
            let sub = DatasetSpec {
                name: format!("{}_g{g:02}", self.name),
                vocabulary: self.vocabulary.clone(),
                schema_count: self.schemas_per_group,
                attrs_min: self.attrs_min,
                attrs_max: self.attrs_max,
                sharing: self.sharing,
            }
            .generate(seed.wrapping_add(g as u64));
            // fuse: re-add every schema/attribute; offset concepts so two
            // groups never share a concept (truth stays group-local even
            // if a graph with cross-group edges were used downstream)
            let offset = u32::try_from(g).expect("group fits u32") * vocab_len;
            for schema in sub.catalog.schemas() {
                let fused = builder
                    .add_schema(schema.name.clone())
                    .expect("group-prefixed schema names are unique");
                for &attr in &schema.attributes {
                    builder
                        .add_attribute(fused, sub.catalog.attribute(attr).name.clone())
                        .expect("attribute names are unique within their schema");
                    concept_of.push(offset + sub.concept_of(attr));
                }
            }
        }
        let graph = InteractionGraph::disjoint_cliques(self.groups, self.schemas_per_group);
        let dataset = Dataset::new(self.name.clone(), builder.build(), concept_of);
        Federation { dataset, graph, groups: self.groups }
    }
}

/// Preset federation in the WebForm regime: 12 clusters of 3 small forms
/// each — the multi-component scenario of the `sharding` benches and the
/// `exp_sharding` experiment.
pub fn webform_federation(seed: u64) -> Federation {
    FederationSpec {
        name: "WebFormFed".into(),
        vocabulary: Vocabulary::web_form(),
        groups: 12,
        schemas_per_group: 3,
        attrs_min: 8,
        attrs_max: 14,
        sharing: SharingModel::RankBiased { alpha: 0.9 },
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FederationSpec {
        FederationSpec {
            name: "Fed".into(),
            vocabulary: Vocabulary::business_partner(),
            groups: 4,
            schemas_per_group: 3,
            attrs_min: 5,
            attrs_max: 9,
            sharing: SharingModel::RankBiased { alpha: 1.5 },
        }
    }

    #[test]
    fn federation_shape_matches_spec() {
        let fed = small().generate(1);
        assert_eq!(fed.groups, 4);
        assert_eq!(fed.dataset.catalog.schema_count(), 12);
        assert_eq!(fed.graph.vertex_count(), 12);
        assert_eq!(fed.graph.component_count(), 4);
        let (schemas, lo, hi) = fed.dataset.statistics();
        assert_eq!(schemas, 12);
        assert!(lo >= 5 && hi <= 9);
    }

    #[test]
    fn ground_truth_never_crosses_groups() {
        let fed = small().generate(2);
        // even on a complete graph the concept offsets keep truth local
        let complete = fed.dataset.complete_graph();
        let truth = fed.dataset.selective_matching(&complete);
        assert!(!truth.is_empty());
        for corr in truth {
            let sa = fed.dataset.catalog.schema_of(corr.a()).index();
            let sb = fed.dataset.catalog.schema_of(corr.b()).index();
            assert_eq!(sa / 3, sb / 3, "truth pair crosses groups: {corr:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate(7);
        let b = small().generate(7);
        assert_eq!(a.dataset.catalog, b.dataset.catalog);
        assert_eq!(a.graph, b.graph);
        let c = small().generate(8);
        assert_ne!(a.dataset.catalog, c.dataset.catalog);
    }

    #[test]
    fn webform_federation_preset_is_multi_component() {
        let fed = webform_federation(1);
        assert_eq!(fed.groups, 12);
        assert_eq!(fed.dataset.catalog.schema_count(), 36);
        assert_eq!(fed.graph.component_count(), 12);
        let truth = fed.dataset.selective_matching(&fed.graph);
        assert!(!truth.is_empty(), "groups must share concepts internally");
    }
}
