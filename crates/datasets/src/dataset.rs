//! The generated dataset: catalog + concept assignment + ground truth.

use serde::{Deserialize, Serialize};
use smn_schema::{AttributeId, Catalog, Correspondence, InteractionGraph, SchemaId};
use std::collections::HashMap;

/// A dataset: a catalog of schemas whose attributes carry hidden concept
/// labels, from which the ground-truth *selective matching* is derived for
/// any interaction graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset label (`BP`, `PO`, …).
    pub name: String,
    /// The schemas.
    pub catalog: Catalog,
    /// `concept_of[attr.index()]` = hidden concept id of each attribute.
    concept_of: Vec<u32>,
}

impl Dataset {
    /// Assembles a dataset (used by the generator).
    pub(crate) fn new(name: String, catalog: Catalog, concept_of: Vec<u32>) -> Self {
        assert_eq!(catalog.attribute_count(), concept_of.len());
        Self { name, catalog, concept_of }
    }

    /// Hidden concept of an attribute.
    pub fn concept_of(&self, attr: AttributeId) -> u32 {
        self.concept_of[attr.index()]
    }

    /// The ground-truth selective matching `M` for a given interaction
    /// graph: for every edge, every pair of attributes denoting the same
    /// concept.
    ///
    /// Because the generator assigns each concept to at most one attribute
    /// per schema, this matching satisfies the one-to-one constraint and —
    /// concept classes having at most one attribute per schema — the cycle
    /// constraint on any graph.
    pub fn selective_matching(&self, graph: &InteractionGraph) -> Vec<Correspondence> {
        let mut by_schema_concept: HashMap<(SchemaId, u32), AttributeId> = HashMap::new();
        for a in self.catalog.attributes() {
            by_schema_concept.insert((a.schema, self.concept_of(a.id)), a.id);
        }
        let mut truth = Vec::new();
        for &(s1, s2) in graph.edges() {
            for &a in &self.catalog.schema(s1).attributes {
                let concept = self.concept_of(a);
                if let Some(&b) = by_schema_concept.get(&(s2, concept)) {
                    truth.push(Correspondence::new(a, b));
                }
            }
        }
        truth.sort_unstable();
        truth
    }

    /// A complete interaction graph over the dataset's schemas — the
    /// configuration of the paper's reconciliation experiments.
    pub fn complete_graph(&self) -> InteractionGraph {
        InteractionGraph::complete(self.catalog.schema_count())
    }

    /// Table II row: `(#schemas, min attributes, max attributes)`.
    pub fn statistics(&self) -> (usize, usize, usize) {
        let (lo, hi) = self.catalog.attribute_min_max().unwrap_or((0, 0));
        (self.catalog.schema_count(), lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_schema::CatalogBuilder;

    fn tiny() -> Dataset {
        let mut b = CatalogBuilder::new();
        b.add_schema_with_attributes("A", ["a_date", "a_name"]).unwrap();
        b.add_schema_with_attributes("B", ["b_date", "b_other"]).unwrap();
        b.add_schema_with_attributes("C", ["c_name", "c_date"]).unwrap();
        // concepts: 0 = date, 1 = name, 2 = other
        Dataset::new("tiny".into(), b.build(), vec![0, 1, 0, 2, 1, 0])
    }

    #[test]
    fn selective_matching_on_complete_graph() {
        let d = tiny();
        let truth = d.selective_matching(&d.complete_graph());
        // date: A-B, A-C, B-C; name: A-C → 4 correspondences
        assert_eq!(truth.len(), 4);
        let a = AttributeId;
        assert!(truth.contains(&Correspondence::new(a(0), a(2)))); // date A-B
        assert!(truth.contains(&Correspondence::new(a(0), a(5)))); // date A-C
        assert!(truth.contains(&Correspondence::new(a(2), a(5)))); // date B-C
        assert!(truth.contains(&Correspondence::new(a(1), a(4)))); // name A-C
    }

    #[test]
    fn selective_matching_respects_graph_edges() {
        let d = tiny();
        let g = InteractionGraph::from_edges(3, [(SchemaId(0), SchemaId(1))]);
        let truth = d.selective_matching(&g);
        assert_eq!(truth.len(), 1, "only the A—B date pair");
    }

    #[test]
    fn statistics_row() {
        let d = tiny();
        assert_eq!(d.statistics(), (3, 2, 2));
    }

    #[test]
    fn truth_is_sorted_and_deduplicated() {
        let d = tiny();
        let truth = d.selective_matching(&d.complete_graph());
        let mut sorted = truth.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(truth, sorted);
    }
}
