//! Property-based tests for the dataset generator.

use proptest::prelude::*;
use smn_datasets::{DatasetSpec, DatasetStats, SharingModel, Vocabulary};

fn spec(n: usize, lo: usize, hi: usize, sharing: SharingModel) -> DatasetSpec {
    DatasetSpec {
        name: "P".into(),
        vocabulary: Vocabulary::web_form(),
        schema_count: n,
        attrs_min: lo,
        attrs_max: hi,
        sharing,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid spec yields exactly the requested shape statistics, dense
    /// unique ids, and a concept assignment that is injective per schema.
    #[test]
    fn generated_shape_matches_spec(
        seed in 0u64..10_000,
        n in 1usize..8,
        lo in 2usize..20,
        extra in 0usize..30,
        alpha in 0.0f64..1.5,
    ) {
        let hi = lo + extra;
        let d = spec(n, lo, hi, SharingModel::RankBiased { alpha }).generate(seed);
        let (schemas, min_a, max_a) = d.statistics();
        prop_assert_eq!(schemas, n);
        if n >= 2 {
            prop_assert_eq!((min_a, max_a), (lo, hi));
        } else {
            prop_assert_eq!(min_a, lo);
        }
        for s in d.catalog.schemas() {
            let mut names = std::collections::HashSet::new();
            let mut concepts = std::collections::HashSet::new();
            for &a in &s.attributes {
                prop_assert!(names.insert(d.catalog.attribute(a).name.clone()));
                prop_assert!(concepts.insert(d.concept_of(a)));
            }
        }
    }

    /// The selective matching is symmetric-consistent: its size equals the
    /// concept-popularity prediction and never exceeds the pairwise bound.
    #[test]
    fn truth_size_is_predicted_by_stats(
        seed in 0u64..5_000,
        n in 2usize..7,
        alpha in 0.0f64..1.2,
    ) {
        let d = spec(n, 8, 24, SharingModel::RankBiased { alpha }).generate(seed);
        let stats = DatasetStats::of(&d);
        let truth = d.selective_matching(&d.complete_graph());
        prop_assert_eq!(truth.len(), stats.complete_graph_truth_size());
        // bound: every pair shares at most min(|s1|, |s2|) concepts
        let max_pairwise: usize = {
            let sizes: Vec<usize> = d.catalog.schemas().iter().map(|s| s.len()).collect();
            let mut total = 0;
            for i in 0..sizes.len() {
                for j in (i + 1)..sizes.len() {
                    total += sizes[i].min(sizes[j]);
                }
            }
            total
        };
        prop_assert!(truth.len() <= max_pairwise);
    }

    /// Clustered sharing is well-defined for any cluster count (including
    /// more clusters than schemas) and stays deterministic.
    #[test]
    fn clustered_sharing_is_robust(
        seed in 0u64..5_000,
        clusters in 1usize..40,
        leak in 0.0f64..0.5,
    ) {
        let sharing = SharingModel::Clustered { clusters, alpha: 0.4, leak };
        let a = spec(5, 6, 18, sharing).generate(seed);
        let b = spec(5, 6, 18, sharing).generate(seed);
        prop_assert_eq!(&a.catalog, &b.catalog);
        let (schemas, min_a, max_a) = a.statistics();
        prop_assert_eq!(schemas, 5);
        prop_assert_eq!((min_a, max_a), (6, 18));
    }
}
