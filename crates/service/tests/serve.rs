//! Determinism, backpressure and durability certification of the
//! request-driven serving core.
//!
//! * **Thread/scheduler invariance** — a seeded serving run over the
//!   open-loop workload is byte-identical (report JSON, commit stream,
//!   final posteriors) at 1, 4 and 8 commit threads and under the pool,
//!   scoped and inline schedulers.
//! * **Replay** — feeding the accepted-event log of a live run through
//!   [`ServingCore::replay`] reproduces the run byte for byte, including
//!   runs that hit ingress backpressure (proptest over random streams).
//! * **Backpressure** — a full ingress returns the typed
//!   [`IngressError::Full`] and never drops or reorders accepted events
//!   (proptest: the accepted log always equals the submitted stream,
//!   gapless clocks `0..n`).
//! * **Evolution epochs** — extend/retire take an exclusive epoch and
//!   leave the core consistent, replayable and durably recoverable.

use proptest::prelude::*;
use smn_datasets::SessionAction;
use smn_schema::{AttributeId, CandidateId};
use smn_service::{
    Aggregation, IngressError, ReplayError, Scheduler, ServeConfig, ServeConfigError, ServeReport,
    ServiceEvent, ServingCore, StampedEvent,
};
use smn_storage::DurableStore;
use smn_testkit::{fig1_network, fig1_truth, serve_workload, tiny_sampler, webform_federation};
use std::path::PathBuf;

fn to_event(action: SessionAction) -> ServiceEvent {
    match action {
        SessionAction::Question { session } => ServiceEvent::Question { session },
        SessionAction::Answer { session } => ServiceEvent::Answer { session, verdict: None },
        SessionAction::Publish => ServiceEvent::PublishTick,
    }
}

fn serve_config(threads: usize, scheduler: Scheduler) -> ServeConfig {
    ServeConfig {
        sampler: tiny_sampler(5),
        redundancy: 2,
        aggregation: Aggregation::QualityWeighted,
        threads,
        scheduler,
        seed: 17,
        capacity: 1024,
        flush_every: 8,
        ..ServeConfig::default()
    }
}

/// A multi-shard serving run over the federation network and the standard
/// open-loop workload.
fn federation_run(threads: usize, scheduler: Scheduler) -> (ServeReport, Vec<f64>) {
    let (net, truth) = webform_federation(4, 11);
    let mut core = ServingCore::new(net, truth, vec![0.1; 4], serve_config(threads, scheduler))
        .expect("serving config");
    core.run_events(serve_workload(32, 160, 7).into_iter().map(|a| to_event(a.action)));
    let report = core.finish();
    (report, core.base().probabilities().to_vec())
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn serving_runs_are_byte_identical_across_thread_counts() {
    let (r1, p1) = federation_run(1, Scheduler::Pool);
    let (r4, p4) = federation_run(4, Scheduler::Pool);
    let (r8, p8) = federation_run(8, Scheduler::Pool);
    assert!(r1.questions_asked > 0 && !r1.commits.is_empty(), "the workload must exercise commits");
    let json = |r: &ServeReport| serde_json::to_string(r).unwrap();
    assert_eq!(json(&r1), json(&r4), "1 vs 4 threads");
    assert_eq!(json(&r1), json(&r8), "1 vs 8 threads");
    assert_eq!(p1, p4, "posteriors at 4 threads");
    assert_eq!(p1, p8, "posteriors at 8 threads");
}

#[test]
fn serving_runs_are_byte_identical_across_schedulers() {
    let (pool, pp) = federation_run(4, Scheduler::Pool);
    let (scoped, ps) = federation_run(4, Scheduler::Scoped);
    let (inline, pi) = federation_run(4, Scheduler::Inline);
    let json = |r: &ServeReport| serde_json::to_string(r).unwrap();
    assert_eq!(json(&pool), json(&scoped), "pool vs scoped");
    assert_eq!(json(&pool), json(&inline), "pool vs inline");
    assert_eq!(pp, ps);
    assert_eq!(pp, pi);
}

#[test]
fn replaying_the_accepted_log_reproduces_the_live_run() {
    let (net, truth) = webform_federation(4, 11);
    let config = serve_config(4, Scheduler::Pool);
    let mut live =
        ServingCore::new(net.clone(), truth.clone(), vec![0.1; 4], config).expect("serving config");
    live.run_events(serve_workload(32, 160, 7).into_iter().map(|a| to_event(a.action)));
    let live_report = live.finish();

    let mut replayed =
        ServingCore::replay(net, truth, vec![0.1; 4], config, live.event_log()).expect("replay");
    let replay_report = replayed.finish();
    assert_eq!(
        serde_json::to_string(&live_report).unwrap(),
        serde_json::to_string(&replay_report).unwrap(),
        "replay must reproduce the live report byte for byte"
    );
    assert_eq!(live.base().probabilities(), replayed.base().probabilities());
    assert_eq!(live.history(), replayed.history());
}

#[test]
fn a_full_ingress_returns_the_typed_error_and_preserves_accepted_events() {
    let (net, truth) = (fig1_network(), fig1_truth());
    let mut core = ServingCore::new(
        net,
        truth,
        vec![0.0; 2],
        ServeConfig { capacity: 2, redundancy: 1, ..serve_config(1, Scheduler::Inline) },
    )
    .expect("serving config");
    assert_eq!(core.submit(ServiceEvent::Question { session: 0 }), Ok(0));
    assert_eq!(core.submit(ServiceEvent::Question { session: 1 }), Ok(1));
    assert_eq!(
        core.submit(ServiceEvent::Question { session: 2 }),
        Err(IngressError::Full { capacity: 2 }),
        "backpressure is a typed error, not a panic or a drop"
    );
    core.pump();
    assert_eq!(core.submit(ServiceEvent::Question { session: 2 }), Ok(2), "clock stays gapless");
    core.pump();
    let log = core.event_log();
    assert_eq!(log.len(), 3, "rejected submissions never enter the log");
    for (i, stamped) in log.iter().enumerate() {
        assert_eq!(stamped.clock, i as u64);
        assert_eq!(stamped.event, ServiceEvent::Question { session: i as u64 });
    }
}

#[test]
fn a_perfect_crowd_reconciles_fig1_completely() {
    let (net, truth) = (fig1_network(), fig1_truth());
    let mut core = ServingCore::new(
        net,
        truth,
        vec![0.0; 2],
        ServeConfig { redundancy: 1, flush_every: 2, ..serve_config(2, Scheduler::Pool) },
    )
    .expect("serving config");
    core.run_events(serve_workload(2, 24, 3).into_iter().map(|a| to_event(a.action)));
    let report = core.finish();
    assert_eq!(report.final_effort, 1.0, "enough questions must assert every candidate");
    assert_eq!(report.final_precision, 1.0, "a perfect crowd never errs");
    assert_eq!(report.final_recall, 1.0);
    assert!(report.starved_questions > 0, "the tail of the workload finds nothing left to ask");
    assert!(report.latency.count > 0 && report.latency.p99 >= report.latency.p50);
}

#[test]
fn evolution_takes_an_epoch_and_stays_replayable() {
    let (net, truth) = (fig1_network(), fig1_truth());
    let config = ServeConfig { redundancy: 1, flush_every: 3, ..serve_config(2, Scheduler::Pool) };
    let mut live =
        ServingCore::new(net.clone(), truth.clone(), vec![0.0; 2], config).expect("serving config");
    let mut events: Vec<ServiceEvent> =
        serve_workload(2, 8, 3).into_iter().map(|a| to_event(a.action)).collect();
    // a mid-stream arrival and a retirement, each an exclusive epoch
    events
        .insert(4, ServiceEvent::Extend { a: AttributeId(0), b: AttributeId(3), confidence: 0.7 });
    events.insert(9, ServiceEvent::Retire { candidate: CandidateId(1) });
    live.run_events(events);
    let live_report = live.finish();
    assert_eq!(live_report.epochs, 2, "extend and retire each take one epoch");
    assert!(live_report.publications > 0, "epochs republish the snapshot");

    let mut replayed =
        ServingCore::replay(net, truth, vec![0.0; 2], config, live.event_log()).expect("replay");
    let replay_report = replayed.finish();
    assert_eq!(
        serde_json::to_string(&live_report).unwrap(),
        serde_json::to_string(&replay_report).unwrap()
    );
    assert_eq!(live.base().probabilities(), replayed.base().probabilities());
}

#[test]
fn serving_durability_recovers_the_live_base_exactly() {
    let dir = scratch("serve-durable").join("store");
    let (net, truth) = webform_federation(4, 11);
    let config = serve_config(4, Scheduler::Pool);

    let mut plain =
        ServingCore::new(net.clone(), truth.clone(), vec![0.1; 4], config).expect("serving config");
    plain.run_events(serve_workload(16, 80, 7).into_iter().map(|a| to_event(a.action)));
    let plain_report = plain.finish();

    let mut durable = ServingCore::new(net, truth, vec![0.1; 4], config).expect("serving config");
    durable.attach_durability(&dir).expect("attach");
    durable.run_events(serve_workload(16, 80, 7).into_iter().map(|a| to_event(a.action)));
    let report = durable.finish();
    assert!(report.durability_error.is_none(), "healthy runs surface no storage fault");
    // journaling must not perturb the run (the report carries the extra
    // durability_error field only)
    assert_eq!(
        serde_json::to_string(&plain_report.commits).unwrap(),
        serde_json::to_string(&report.commits).unwrap()
    );
    assert_eq!(plain.base().probabilities(), durable.base().probabilities());

    let rec = DurableStore::recover(&dir).expect("recover");
    assert_eq!(rec.history, durable.history(), "WAL order reproduces the commit history");
    assert_eq!(rec.network.to_state(), durable.base().to_state(), "structural equality");
    assert_eq!(rec.network.probabilities(), durable.base().probabilities(), "posterior equality");
}

#[test]
fn serving_storage_faults_latch_and_surface_in_the_report() {
    let dir = scratch("serve-latched").join("store");
    let (net, truth) = (fig1_network(), fig1_truth());
    let mut core = ServingCore::new(
        net,
        truth,
        vec![0.0; 2],
        ServeConfig { redundancy: 1, ..serve_config(2, Scheduler::Pool) },
    )
    .expect("serving config");
    core.attach_durability(&dir).expect("attach");
    // yank the store directory: the final snapshot publication fails, the
    // fault latches, and the report carries it verbatim
    std::fs::remove_dir_all(&dir).expect("remove the live store directory");
    core.run_events(serve_workload(2, 12, 3).into_iter().map(|a| to_event(a.action)));
    let report = core.finish();
    let latched = core.durability_error().expect("the publish failure must latch");
    assert_eq!(report.durability_error.as_deref(), Some(latched.to_string().as_str()));
}

#[test]
fn an_empty_crowd_is_a_typed_construction_error() {
    // regression: this used to build fine and then panic on the first
    // answer event (`session % crowd.len()` and `redundancy.clamp(1, 0)`)
    let err = ServingCore::new(
        fig1_network(),
        fig1_truth(),
        Vec::<f64>::new(),
        serve_config(1, Scheduler::Inline),
    )
    .err()
    .expect("an empty crowd must be rejected at construction");
    assert_eq!(err, ServeConfigError::EmptyCrowd);
    assert!(err.to_string().contains("crowd worker"), "the error must explain itself");
}

#[test]
fn finishing_a_zero_commit_run_reports_zeroed_latency() {
    // regression: the percentile helper used to `expect("nonempty")` on
    // runs that never flushed a commit
    let mut core = ServingCore::new(
        fig1_network(),
        fig1_truth(),
        vec![0.0; 2],
        serve_config(1, Scheduler::Inline),
    )
    .expect("serving config");
    // questions only — nothing ever decides, so nothing ever commits
    for s in 0..4 {
        core.submit(ServiceEvent::Question { session: s }).expect("capacity");
    }
    core.pump();
    let report = core.finish();
    assert!(report.commits.is_empty(), "no answers means no commits");
    assert_eq!(report.latency.count, 0);
    assert_eq!(report.latency.p50, 0);
    assert_eq!(report.latency.p99, 0);
    assert_eq!(report.latency.max, 0);
    assert_eq!(report.latency.mean, 0.0);
}

#[test]
fn replay_clamps_zero_capacity_and_rejects_drifted_logs() {
    // regression: replay used to `expect("replay queue never fills")`.
    // A zero-capacity replay config is clamped to 1 at the config level
    // and succeeds (replay pumps after every submit)...
    let (net, truth) = (fig1_network(), fig1_truth());
    let config = ServeConfig { redundancy: 1, ..serve_config(1, Scheduler::Inline) };
    let mut live =
        ServingCore::new(net.clone(), truth.clone(), vec![0.0; 2], config).expect("serving config");
    live.run_events(serve_workload(2, 12, 3).into_iter().map(|a| to_event(a.action)));
    let live_report = live.finish();

    let zero_capacity = ServeConfig { capacity: 0, ..config };
    assert_eq!(zero_capacity.effective_capacity(), 1, "capacity clamps at the config level");
    let mut replayed = ServingCore::replay(
        net.clone(),
        truth.clone(),
        vec![0.0; 2],
        zero_capacity,
        live.event_log(),
    )
    .expect("a clamped zero-capacity replay must succeed");
    assert_eq!(
        serde_json::to_string(&live_report).unwrap(),
        serde_json::to_string(&replayed.finish()).unwrap(),
        "the clamped replay reproduces the live run byte for byte"
    );

    // ...while a log whose clocks don't match the gapless stamping is a
    // typed error, not a debug assertion
    let drifted = vec![StampedEvent { clock: 5, event: ServiceEvent::Question { session: 0 } }];
    let err = ServingCore::replay(net.clone(), truth.clone(), vec![0.0; 2], config, &drifted)
        .err()
        .expect("a drifted log must be rejected");
    assert_eq!(err, ReplayError::ClockDrift { expected: 5, got: 0 });

    // ...and a rejected configuration surfaces through replay too
    let err = ServingCore::replay(net, truth, Vec::<f64>::new(), config, &[])
        .err()
        .expect("an empty crowd must surface through replay");
    assert_eq!(err, ReplayError::Config(ServeConfigError::EmptyCrowd));
}

/// Decodes one opcode into a valid fig1 serving event: mostly
/// question/answer traffic from six sessions (explicit and simulated
/// verdicts), with publish ticks and the occasional evolution event.
fn decode_event(op: u32) -> ServiceEvent {
    let session = (op >> 4) as u64 % 6;
    match op % 16 {
        0..=5 => ServiceEvent::Question { session },
        6..=11 => ServiceEvent::Answer {
            session,
            verdict: match op % 3 {
                0 => None,
                1 => Some(true),
                _ => Some(false),
            },
        },
        12 | 13 => ServiceEvent::PublishTick,
        14 => ServiceEvent::Extend { a: AttributeId(0), b: AttributeId(3), confidence: 0.7 },
        _ => ServiceEvent::Retire { candidate: CandidateId((op >> 8) % 5) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backpressure never drops or reorders: whatever the stream and the
    /// (tiny) capacity, the accepted log equals the submitted stream with
    /// gapless clocks.
    #[test]
    fn ingress_backpressure_never_drops_or_reorders(
        ops in prop::collection::vec(any::<u32>(), 1..40),
        capacity in 1usize..5,
    ) {
        let events: Vec<ServiceEvent> = ops.iter().map(|&op| decode_event(op)).collect();
        let mut core = ServingCore::new(
            fig1_network(),
            fig1_truth(),
            vec![0.0; 2],
            ServeConfig { capacity, redundancy: 1, ..serve_config(1, Scheduler::Inline) },
        )
        .expect("serving config");
        let mut rejections = 0u32;
        for &event in &events {
            if core.submit(event).is_err() {
                rejections += 1;
                core.pump();
                prop_assert_eq!(core.submit(event).map(|_| ()), Ok(()), "drained queues accept");
            }
        }
        core.pump();
        let log = core.event_log();
        prop_assert_eq!(log.len(), events.len(), "no accepted event is ever dropped");
        for (i, (stamped, submitted)) in log.iter().zip(&events).enumerate() {
            prop_assert_eq!(stamped.clock, i as u64, "clocks are gapless");
            prop_assert_eq!(&stamped.event, submitted, "order is submission order");
        }
        if capacity < events.len() {
            // tiny queues must actually exercise the backpressure path
            prop_assert!(rejections > 0 || events.len() <= capacity);
        }
    }

    /// Replaying the accepted log of any random live run reproduces it
    /// byte for byte — including runs with evolution epochs.
    #[test]
    fn replay_reproduces_any_live_run(
        ops in prop::collection::vec(any::<u32>(), 1..60),
        capacity in 2usize..6,
    ) {
        let events: Vec<ServiceEvent> = ops.iter().map(|&op| decode_event(op)).collect();
        let config = ServeConfig {
            capacity,
            redundancy: 2,
            flush_every: 4,
            ..serve_config(2, Scheduler::Pool)
        };
        let mut live = ServingCore::new(fig1_network(), fig1_truth(), vec![0.05; 3], config)
            .expect("serving config");
        live.run_events(events.iter().copied());
        let live_report = live.finish();

        let mut replayed = ServingCore::replay(
            fig1_network(),
            fig1_truth(),
            vec![0.05; 3],
            config,
            live.event_log(),
        )
        .expect("replay");
        let replay_report = replayed.finish();
        prop_assert_eq!(
            serde_json::to_string(&live_report).unwrap(),
            serde_json::to_string(&replay_report).unwrap()
        );
        prop_assert_eq!(live.base().probabilities(), replayed.base().probabilities());
        prop_assert_eq!(live.history(), replayed.history());
    }
}
