//! Concurrency-determinism and differential certification of the
//! reconciliation service.
//!
//! * **Thread invariance** — a seeded run is byte-identical (report JSON,
//!   commit history, final posteriors) at 1, 4 and 8 OS threads: the
//!   thread count only changes who computes what, never the result.
//! * **Scheduler invariance** — the persistent worker pool, one-shot
//!   scoped threads and inline evaluation produce byte-identical runs on
//!   the fig1, perturbed and federation presets: scheduling is pure
//!   wall-clock.
//! * **Sequential replay** — a 1-worker, redundancy-1 service with a
//!   perfect worker replays a sequential [`Session::run`] trace point for
//!   point: same candidates, same verdicts, same entropy/effort curve.
//! * **Redundancy** — majority voting over a noisy crowd commits fewer
//!   errors than a single noisy worker on the same schedule.

use smn_constraints::ConstraintConfig;
use smn_core::engine::Strategy;
use smn_core::shard::ShardingConfig;
use smn_core::{
    GroundTruthOracle, MatchingNetwork, ReconciliationGoal, Session, SessionConfig, StepOutcome,
};
use smn_datasets::webform_federation;
use smn_matchers::matcher::match_network;
use smn_matchers::PerturbationMatcher;
use smn_schema::Correspondence;
use smn_service::{Aggregation, ReconciliationService, Scheduler, ServiceConfig};
use smn_testkit::{fig1_network, fig1_truth, perturbed_network, tiny_sampler};

/// A genuinely multi-shard workload: the 12-cluster webform federation.
fn federation_case(seed: u64) -> (MatchingNetwork, Vec<Correspondence>) {
    let fed = webform_federation(seed);
    let truth = fed.dataset.selective_matching(&fed.graph);
    let matcher = PerturbationMatcher::new(truth.iter().copied(), 0.65, 0.85, seed);
    let cs = match_network(&matcher, &fed.dataset.catalog, &fed.graph).expect("valid candidates");
    let net = MatchingNetwork::new(
        fed.dataset.catalog.clone(),
        fed.graph.clone(),
        cs,
        ConstraintConfig::default(),
    );
    (net, truth)
}

fn service_config(threads: usize, goal: ReconciliationGoal) -> ServiceConfig {
    ServiceConfig {
        sampler: tiny_sampler(5),
        sharding: ShardingConfig::default(),
        redundancy: 2,
        aggregation: Aggregation::QualityWeighted,
        threads,
        scheduler: Scheduler::Pool,
        seed: 17,
        goal,
    }
}

#[test]
fn runs_are_byte_identical_across_thread_counts() {
    let (net, truth) = federation_case(3);
    let crowd = vec![0.05, 0.15, 0.25, 0.1, 0.3, 0.2];
    let mut outcomes: Vec<(String, Vec<f64>, usize)> = Vec::new();
    for threads in [1usize, 4, 8] {
        let mut svc = ReconciliationService::new(
            net.clone(),
            truth.clone(),
            crowd.clone(),
            service_config(threads, ReconciliationGoal::Budget(30)),
        );
        let report = svc.run();
        assert_eq!(svc.history().len(), 30);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        outcomes.push((json, svc.base().probabilities().to_vec(), svc.history().len()));
    }
    let (ref_json, ref_probs, ref_len) = outcomes[0].clone();
    for (json, probs, len) in &outcomes[1..] {
        assert_eq!(*json, ref_json, "report JSON must not depend on the thread count");
        assert_eq!(*probs, ref_probs, "posteriors must not depend on the thread count");
        assert_eq!(*len, ref_len);
    }
    // and the same config run twice is reproducible outright
    let rerun = ReconciliationService::new(
        net,
        truth,
        crowd,
        service_config(8, ReconciliationGoal::Budget(30)),
    )
    .run();
    assert_eq!(serde_json::to_string_pretty(&rerun).unwrap(), ref_json);
}

#[test]
fn schedulers_produce_byte_identical_reports() {
    // pooled vs scoped vs inline on all three presets: a scheduler is
    // pure wall-clock, so reports and posteriors must match byte for byte
    let cases: Vec<(MatchingNetwork, Vec<Correspondence>)> = vec![
        (fig1_network(), fig1_truth()),
        perturbed_network(3, 5, 0.7, 0.9, 11),
        federation_case(3),
    ];
    let crowd = vec![0.05, 0.15, 0.25, 0.1, 0.3, 0.2];
    for (case, (net, truth)) in cases.into_iter().enumerate() {
        let run = |scheduler: Scheduler| {
            let mut svc = ReconciliationService::new(
                net.clone(),
                truth.clone(),
                crowd.clone(),
                ServiceConfig { scheduler, ..service_config(4, ReconciliationGoal::Budget(12)) },
            );
            let report = svc.run();
            (
                serde_json::to_string_pretty(&report).expect("report serializes"),
                svc.base().probabilities().to_vec(),
            )
        };
        let pooled = run(Scheduler::Pool);
        assert_eq!(pooled, run(Scheduler::Scoped), "pool vs scoped diverged on case {case}");
        assert_eq!(pooled, run(Scheduler::Inline), "pool vs inline diverged on case {case}");
    }
}

#[test]
fn single_perfect_worker_replays_the_sequential_session() {
    for (net, truth) in [(fig1_network(), fig1_truth()), perturbed_network(3, 5, 0.7, 0.9, 11)] {
        let seed = 23u64;
        let mut session = Session::new(
            net.clone(),
            SessionConfig {
                sampler: tiny_sampler(5),
                strategy: Strategy::InformationGain,
                strategy_seed: seed,
                sharding: ShardingConfig::default(),
            },
        );
        let mut oracle = GroundTruthOracle::new(truth.iter().copied());
        let sequential = session.run(&mut oracle, ReconciliationGoal::Complete);

        let mut svc = ReconciliationService::new(
            net,
            truth,
            vec![0.0],
            ServiceConfig {
                sampler: tiny_sampler(5),
                sharding: ShardingConfig::default(),
                redundancy: 1,
                aggregation: Aggregation::Majority,
                threads: 2,
                scheduler: Scheduler::Pool,
                seed,
                goal: ReconciliationGoal::Complete,
            },
        );
        svc.run();
        assert_eq!(
            svc.history(),
            &sequential[..],
            "k = 1 with a perfect worker must replay the sequential trace"
        );
        assert_eq!(svc.base().probabilities(), session.network().probabilities());
        assert_eq!(svc.base().entropy(), 0.0);
    }
}

#[test]
fn rounds_spread_leases_across_distinct_shards() {
    let (net, truth) = federation_case(3);
    let mut svc = ReconciliationService::new(
        net,
        truth,
        vec![0.0; 6],
        ServiceConfig { redundancy: 1, ..service_config(4, ReconciliationGoal::Budget(36)) },
    );
    let report = svc.run();
    // round 0 has plenty of uncertain components, so its 6 concurrent
    // leases must land on 6 distinct shards (later rounds may legitimately
    // collide once only one component retains uncertainty)
    let first: Vec<usize> =
        report.commits.iter().filter(|c| c.round == 0).map(|c| c.shard).collect();
    assert!(first.len() > 1, "a 6-worker federation run must batch concurrent leases");
    let mut dedup = first.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), first.len(), "round 0 re-leased a shard: {first:?}");
}

#[test]
fn redundancy_and_quality_weighting_beat_a_lone_noisy_worker() {
    // single runs are deterministic but knife-edge votes make any one
    // schedule noisy; aggregate committed errors over networks × seeds
    let (mut lone_errors, mut crowd_errors) = (0usize, 0usize);
    for net_seed in [7u64, 19] {
        let (net, truth) = perturbed_network(3, 8, 0.7, 0.9, net_seed);
        for svc_seed in [31u64, 5, 17] {
            let run = |error_rates: Vec<f64>, redundancy: usize, aggregation: Aggregation| {
                let mut svc = ReconciliationService::new(
                    net.clone(),
                    truth.clone(),
                    error_rates,
                    ServiceConfig {
                        sampler: tiny_sampler(5),
                        sharding: ShardingConfig::default(),
                        redundancy,
                        aggregation,
                        threads: 2,
                        scheduler: Scheduler::Pool,
                        seed: svc_seed,
                        goal: ReconciliationGoal::Complete,
                    },
                );
                let report = svc.run();
                report
                    .commits
                    .iter()
                    .filter(|c| c.outcome != "skipped")
                    .filter(|c| {
                        let corr = svc.base().network().corr(smn_schema::CandidateId(c.candidate));
                        c.approved != truth.contains(&corr)
                    })
                    .count()
            };
            lone_errors += run(vec![0.3], 1, Aggregation::Majority);
            crowd_errors += run(vec![0.3; 5], 5, Aggregation::QualityWeighted);
        }
    }
    assert!(
        crowd_errors < lone_errors,
        "5-vote aggregation ({crowd_errors}) must beat one noisy worker ({lone_errors})"
    );
}

#[test]
fn noisy_commits_survive_inconsistent_approvals() {
    // a high-noise crowd will eventually vote to approve conflicting
    // candidates; the service must flip — never panic — and trace it
    let (net, truth) = perturbed_network(3, 5, 0.6, 0.9, 19);
    let mut svc = ReconciliationService::new(
        net,
        truth,
        vec![0.45, 0.45, 0.45],
        ServiceConfig {
            sampler: tiny_sampler(5),
            sharding: ShardingConfig::default(),
            redundancy: 1,
            aggregation: Aggregation::Majority,
            threads: 2,
            scheduler: Scheduler::Pool,
            seed: 5,
            goal: ReconciliationGoal::Complete,
        },
    );
    let report = svc.run();
    assert!(report.commits.iter().all(|c| c.outcome != "skipped"));
    assert!(svc.history().iter().all(|t| t.outcome != StepOutcome::Skipped));
    assert_eq!(svc.base().effort(), 1.0, "even a noisy run validates everything");
}
