//! Service durability: attaching a durable store never perturbs a run
//! (byte-identical reports), every kill point between rounds recovers to
//! the live base network bit for bit, snapshots rotate and prune on the
//! configured cadence, and a corrupted newest snapshot falls back to the
//! previous generation plus its log chain.

use smn_core::{ReconciliationGoal, ShardingConfig};
use smn_service::{Aggregation, ReconciliationService, ServiceConfig};
use smn_storage::DurableStore;
use smn_testkit::faults::{flip_bit, FaultRng};
use smn_testkit::{fig1_network, fig1_truth, tiny_sampler};
use std::path::PathBuf;

fn config() -> ServiceConfig {
    ServiceConfig {
        sampler: tiny_sampler(5),
        sharding: ShardingConfig::default(),
        redundancy: 1,
        aggregation: Aggregation::Majority,
        threads: 2,
        scheduler: smn_service::Scheduler::Pool,
        seed: 9,
        goal: ReconciliationGoal::Complete,
    }
}

fn service(workers: usize) -> ReconciliationService {
    ReconciliationService::new(fig1_network(), fig1_truth(), vec![0.0; workers], config())
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durability_is_invisible_to_the_run_and_recovers_it_exactly() {
    let dir = scratch("svc-durable").join("store");

    let mut plain = service(2);
    let plain_report = plain.run();

    let mut durable = service(2);
    durable.attach_durability(&dir, 2).expect("attach");
    let report = durable.run();
    assert!(durable.durability_error().is_none(), "healthy run latches no error");
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&plain_report).unwrap(),
        "journaling never perturbs the schedule or the results"
    );

    // recovery from the directory reproduces the live end state exactly
    let rec = DurableStore::recover(&dir).expect("recover");
    assert_eq!(rec.history, durable.assertions(), "assertion history survives");
    assert_eq!(rec.network.to_state(), durable.base().to_state(), "structural equality");
    assert_eq!(
        rec.network.probabilities(),
        durable.base().probabilities(),
        "bit-identical posteriors"
    );
    assert_eq!(rec.network.entropy().to_bits(), durable.base().entropy().to_bits());
    assert_eq!(rec.network.effort(), durable.base().effort());
}

#[test]
fn snapshots_publish_and_prune_on_the_round_cadence() {
    let dir = scratch("svc-cadence").join("store");
    let mut svc = service(1); // one worker → one commit per round → many rounds
    svc.attach_durability(&dir, 1).expect("attach");
    let report = svc.run();
    assert!(svc.durability_error().is_none());
    let rounds = report.rounds.len();
    assert!(rounds >= 3, "fig. 1 under a single worker takes several rounds");

    // cadence 1 → one publication per round on top of the opening
    // generation 0; pruning keeps the newest two generations only
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let gen = |g: usize| vec![format!("snapshot-{g:010}.smn"), format!("wal-{g:010}.log")];
    let mut expected: Vec<String> = gen(rounds - 1).into_iter().chain(gen(rounds)).collect();
    expected.sort();
    assert_eq!(names, expected, "current + previous generation survive pruning");

    let rec = DurableStore::recover(&dir).expect("recover");
    assert_eq!(rec.replayed, 0, "the newest snapshot already folds every commit");
    assert_eq!(rec.network.to_state(), svc.base().to_state());
}

#[test]
fn a_corrupt_newest_snapshot_falls_back_a_generation() {
    let dir = scratch("svc-fallback").join("store");
    let mut svc = service(2);
    svc.attach_durability(&dir, 1).expect("attach");
    svc.run();
    assert!(svc.durability_error().is_none());

    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "smn"))
        .max()
        .expect("a newest snapshot");
    let bytes = std::fs::read(&newest).unwrap();
    let mut rng = FaultRng::new(11);
    std::fs::write(&newest, flip_bit(&bytes, 0, &mut rng)).unwrap();

    // the previous generation's snapshot plus its surviving log chain
    // re-reach the live end state
    let rec = DurableStore::recover(&dir).expect("fallback recovery");
    assert_eq!(rec.history, svc.assertions());
    assert_eq!(rec.network.to_state(), svc.base().to_state());
    assert_eq!(rec.network.probabilities(), svc.base().probabilities());
}

#[test]
fn a_mid_run_kill_recovers_the_committed_prefix() {
    // run the same schedule twice: once to completion (the reference),
    // once stopped after a 3-commit budget with durability attached — the
    // store must recover exactly the budget-bounded state
    let dir = scratch("svc-midrun").join("store");
    let mut svc = ReconciliationService::new(
        fig1_network(),
        fig1_truth(),
        vec![0.0; 2],
        ServiceConfig { goal: ReconciliationGoal::Budget(3), ..config() },
    );
    svc.attach_durability(&dir, 10).expect("attach"); // cadence never reached: WAL only
    svc.run();
    assert!(svc.durability_error().is_none());
    assert_eq!(svc.history().len(), 3);

    let rec = DurableStore::recover(&dir).expect("recover from the WAL alone");
    assert_eq!(rec.replayed, 3, "all three commits came back from the log");
    assert_eq!(rec.history, svc.assertions());
    assert_eq!(rec.network.to_state(), svc.base().to_state());
    assert_eq!(rec.network.probabilities(), svc.base().probabilities());
}

#[test]
fn storage_faults_latch_and_surface_in_the_report() {
    // yank the store directory out from under the service: the next
    // snapshot publication (cadence 1) fails, the fault latches, and the
    // report itself carries it — saved JSON cannot silently drop it
    let dir = scratch("svc-latched").join("store");
    let mut svc = service(2);
    svc.attach_durability(&dir, 1).expect("attach");
    std::fs::remove_dir_all(&dir).expect("remove the live store directory");
    let report = svc.run();
    let latched = svc.durability_error().expect("the publish failure must latch");
    assert_eq!(
        report.durability_error.as_deref(),
        Some(latched.to_string().as_str()),
        "the report surfaces the latched fault verbatim"
    );
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"durability_error\":\""), "the fault serializes into saved JSON");
}
