//! The shard-aware question dispatcher.
//!
//! Per round the dispatcher leases a batch of *distinct* uncertain
//! candidates, each to a disjoint group of workers. Its single-candidate
//! pick *is* [`smn_core::InformationGainSelection`]'s pick — both call
//! the shared [`scored_argmax`] kernel (same pool order, same 1e-12 tie
//! window, one RNG draw per pick) and the same scoreless random fallback
//! once nothing is uncertain — which is what makes a 1-worker,
//! redundancy-1 service schedule replay a sequential
//! [`smn_core::Session::run`] byte for byte. Beyond the first
//! pick of a round it additionally prefers candidates from conflict
//! components that have no lease in flight yet, so concurrent worker
//! evaluations copy-on-write *different* shards of the base snapshot.

use crate::model::ServeModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smn_core::selection::{nth_matching, scored_argmax};
use smn_schema::{CandidateId, Correspondence};
use std::collections::HashSet;

/// One leased question: a candidate, the evidence for asking it, and the
/// workers assigned to answer it.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// Position within the round (commit order).
    pub slot: usize,
    /// The leased candidate.
    pub candidate: CandidateId,
    /// The attribute pair workers are shown.
    pub correspondence: Correspondence,
    /// The candidate's probability at lease time.
    pub probability: f64,
    /// The dispatcher's information-gain estimate that justified the
    /// lease; `None` for fallback picks of certain-but-unasserted
    /// candidates (same convention as
    /// [`smn_core::Question::score`](smn_core::Question)).
    pub score: Option<f64>,
    /// The shard (conflict component) owning the candidate.
    pub shard: usize,
    /// The distinct workers assigned to answer (redundancy `k`).
    pub workers: Vec<usize>,
}

/// The seeded lease scheduler.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    rng: StdRng,
}

impl Dispatcher {
    /// Creates a dispatcher; `seed` drives tie-breaking exactly like an
    /// [`smn_core::InformationGainSelection`] seeded the same.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Leases up to `batch` distinct candidates for one round, assigning
    /// each `redundancy` distinct workers out of `workers` by
    /// round-rotated slots (worker `(round + slot·k + i) mod W` takes vote
    /// `i` of lease `slot`, so the crowd rotates across candidates over
    /// rounds and no worker answers twice per round).
    ///
    /// Returns fewer leases (possibly none) when the network runs out of
    /// unasserted candidates.
    pub fn lease_round<M: ServeModel>(
        &mut self,
        pn: &M,
        batch: usize,
        workers: usize,
        redundancy: usize,
        round: usize,
    ) -> Vec<Lease> {
        debug_assert!(batch * redundancy <= workers.max(redundancy));
        let mut leases: Vec<Lease> = Vec::with_capacity(batch);
        let mut excluded: Vec<CandidateId> = Vec::new();
        let mut leased_shards: HashSet<usize> = HashSet::new();
        for slot in 0..batch {
            let Some((candidate, score)) = self.pick(pn, &excluded, &leased_shards) else {
                break;
            };
            excluded.push(candidate);
            let shard = pn.shard_of(candidate);
            leased_shards.insert(shard);
            let start = round % workers.max(1);
            let assigned: Vec<usize> =
                (0..redundancy).map(|i| (start + slot * redundancy + i) % workers).collect();
            leases.push(Lease {
                slot,
                candidate,
                correspondence: pn.network().corr(candidate),
                probability: pn.probability(candidate),
                score,
                shard,
                workers: assigned,
            });
        }
        leases
    }

    /// One strategy-parity pick: argmax information gain over the
    /// uncertain pool (minus this round's earlier picks), ties within
    /// 1e-12 broken by one RNG draw; random unasserted fallback when no
    /// uncertainty is left. `leased_shards` steers (but never forces) the
    /// pick towards components without an in-flight lease.
    fn pick<M: ServeModel>(
        &mut self,
        pn: &M,
        excluded: &[CandidateId],
        leased_shards: &HashSet<usize>,
    ) -> Option<(CandidateId, Option<f64>)> {
        let mut pool: Vec<CandidateId> =
            pn.uncertain_candidates().into_iter().filter(|c| !excluded.contains(c)).collect();
        if pool.is_empty() {
            // mirror of the information-gain strategy's fallback: the
            // crowd keeps validating certain-but-unasserted candidates
            let n = pn.network().candidate_count();
            return nth_matching(n, &mut self.rng, |c| {
                !pn.feedback().is_asserted(c) && !excluded.contains(&c)
            })
            .map(|c| (c, None));
        }
        if excluded.is_empty() && leased_shards.is_empty() {
            // the unfiltered first pick of a round is exactly the
            // strategy's pick: argmax over all uncertain candidates, so
            // the cached tie window applies — dirty shards re-price, the
            // rest serve from cache, RNG stream unchanged
            let (window, gains) = pn.cached_gain_window();
            return scored_argmax(&window, &gains, &mut self.rng).map(|(c, gain)| (c, Some(gain)));
        }
        // shard-aware spreading: concurrent what-if forks then
        // copy-on-write disjoint shards (no-op for the first pick, so the
        // 1-worker schedule stays strategy-identical)
        if !leased_shards.is_empty() {
            let fresh: Vec<CandidateId> = pool
                .iter()
                .copied()
                .filter(|&c| !leased_shards.contains(&pn.shard_of(c)))
                .collect();
            if !fresh.is_empty() {
                pool = fresh;
            }
        }
        // a filtered pool is not the full argmax window, but its gains
        // still come from the cache — identical values, zero rescans of
        // clean shards
        let gains = pn.cached_gains(&pool);
        // the shared selection kernel — same tie window, same single RNG
        // draw as InformationGainSelection, by construction
        scored_argmax(&pool, &gains, &mut self.rng).map(|(c, gain)| (c, Some(gain)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_core::selection::SelectionStrategy;
    use smn_core::shard::ShardingConfig;
    use smn_core::{InformationGainSelection, ProbabilisticNetwork, SamplerConfig};
    use smn_testkit::{fig1_network, tiny_sampler};

    fn sharded(seed: u64) -> ProbabilisticNetwork {
        ProbabilisticNetwork::new_sharded(
            fig1_network(),
            tiny_sampler(seed),
            ShardingConfig::default(),
        )
    }

    #[test]
    fn single_pick_matches_information_gain_selection() {
        for seed in 0..8 {
            let pn = sharded(3);
            let mut strategy = InformationGainSelection::new(seed);
            let mut dispatcher = Dispatcher::new(seed);
            let expected = strategy.select_with_score(&pn).unwrap();
            let leases = dispatcher.lease_round(&pn, 1, 1, 1, 0);
            assert_eq!(leases.len(), 1);
            assert_eq!((leases[0].candidate, leases[0].score), expected);
            assert_eq!(leases[0].workers, vec![0]);
        }
    }

    #[test]
    fn batch_leases_are_distinct_with_disjoint_workers() {
        let pn = ProbabilisticNetwork::new_sharded(
            fig1_network(),
            SamplerConfig { seed: 5, ..tiny_sampler(5) },
            ShardingConfig::default(),
        );
        let mut dispatcher = Dispatcher::new(9);
        let leases = dispatcher.lease_round(&pn, 2, 4, 2, 3);
        assert_eq!(leases.len(), 2);
        assert_ne!(leases[0].candidate, leases[1].candidate);
        let mut seen: Vec<usize> = Vec::new();
        for l in &leases {
            assert_eq!(l.workers.len(), 2);
            for &w in &l.workers {
                assert!(!seen.contains(&w), "worker {w} double-leased in one round");
                seen.push(w);
            }
        }
    }

    #[test]
    fn rotation_spreads_workers_across_rounds() {
        let pn = sharded(5);
        let mut dispatcher = Dispatcher::new(9);
        let round0 = dispatcher.lease_round(&pn, 1, 3, 1, 0);
        let round1 = dispatcher.lease_round(&pn, 1, 3, 1, 1);
        assert_ne!(round0[0].workers, round1[0].workers);
    }
}
