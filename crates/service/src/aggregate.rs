//! Redundancy-`k` answer aggregation.
//!
//! Each leased candidate collects `k` worker votes; the aggregator reduces
//! them to one assertion before it touches the base network. Two schemes:
//!
//! * [`Aggregation::Majority`] — one worker one vote, ties broken towards
//!   disapproval (the conservative default, matching
//!   [`smn_core::CrowdOracle`]);
//! * [`Aggregation::QualityWeighted`] — each vote weighs its worker's
//!   calibrated log-odds `ln((1 − e) / e)`, the Bayes-optimal combination
//!   of independent witnesses of known error rate `e` (the quality-aware
//!   regime of PoWareMatch): one 5%-error worker outvotes two 40%-error
//!   workers.

use crate::worker::WorkerProfile;
use serde::Serialize;

/// How worker votes reduce to one assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Aggregation {
    /// Unweighted majority, ties → disapprove.
    Majority,
    /// Log-odds-weighted vote by calibrated worker quality, ties →
    /// disapprove.
    QualityWeighted,
}

impl Aggregation {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregation::Majority => "majority",
            Aggregation::QualityWeighted => "quality-weighted",
        }
    }
}

/// One worker's answer to a leased question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// The answering worker.
    pub worker: usize,
    /// The worker's verdict.
    pub approved: bool,
    /// Exact network uncertainty this verdict would produce, measured by
    /// the worker on its copy-on-write fork
    /// ([`smn_core::ProbabilisticNetwork::what_if`] semantics).
    pub expected_entropy: f64,
}

/// An aggregated decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The committed verdict.
    pub approved: bool,
    /// Total vote weight for approval.
    pub weight_for: f64,
    /// Total vote weight against approval.
    pub weight_against: f64,
    /// Raw approving votes.
    pub votes_for: usize,
    /// Raw disapproving votes.
    pub votes_against: usize,
}

/// Reduces `votes` under the given scheme. `profiles` supplies the
/// quality weights (indexed by `Vote::worker`).
///
/// # Panics
/// Panics on an empty vote set — every lease gets at least one worker.
pub fn aggregate(kind: Aggregation, votes: &[Vote], profiles: &[WorkerProfile]) -> Verdict {
    assert!(!votes.is_empty(), "cannot aggregate zero votes");
    let weight = |v: &Vote| match kind {
        Aggregation::Majority => 1.0,
        Aggregation::QualityWeighted => {
            // clamp keeps a (self-reported) perfect or adversarial worker
            // from carrying infinite weight
            let e = profiles[v.worker].error_rate.clamp(0.005, 0.995);
            ((1.0 - e) / e).ln()
        }
    };
    let mut verdict = Verdict {
        approved: false,
        weight_for: 0.0,
        weight_against: 0.0,
        votes_for: 0,
        votes_against: 0,
    };
    for v in votes {
        if v.approved {
            verdict.weight_for += weight(v);
            verdict.votes_for += 1;
        } else {
            verdict.weight_against += weight(v);
            verdict.votes_against += 1;
        }
    }
    verdict.approved = verdict.weight_for > verdict.weight_against;
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(worker: usize, approved: bool) -> Vote {
        Vote { worker, approved, expected_entropy: 0.0 }
    }

    fn profiles(rates: &[f64]) -> Vec<WorkerProfile> {
        rates.iter().map(|&error_rate| WorkerProfile { error_rate }).collect()
    }

    #[test]
    fn majority_counts_heads() {
        let p = profiles(&[0.1, 0.1, 0.1]);
        let v =
            aggregate(Aggregation::Majority, &[vote(0, true), vote(1, true), vote(2, false)], &p);
        assert!(v.approved);
        assert_eq!((v.votes_for, v.votes_against), (2, 1));
    }

    #[test]
    fn majority_tie_disapproves() {
        let p = profiles(&[0.1, 0.1]);
        let v = aggregate(Aggregation::Majority, &[vote(0, true), vote(1, false)], &p);
        assert!(!v.approved, "ties break conservatively");
    }

    #[test]
    fn quality_weighting_lets_a_reliable_worker_outvote_two_noisy_ones() {
        let p = profiles(&[0.05, 0.4, 0.4]);
        let votes = [vote(0, true), vote(1, false), vote(2, false)];
        assert!(!aggregate(Aggregation::Majority, &votes, &p).approved);
        assert!(aggregate(Aggregation::QualityWeighted, &votes, &p).approved);
    }

    #[test]
    fn extreme_rates_are_clamped_finite() {
        let p = profiles(&[0.0, 1.0]);
        let v = aggregate(Aggregation::QualityWeighted, &[vote(0, true), vote(1, false)], &p);
        assert!(v.weight_for.is_finite());
        assert!(v.weight_against.is_finite());
        // the adversarial worker's weight is negative: its "no" argues "yes"
        assert!(v.approved);
    }

    #[test]
    #[should_panic(expected = "zero votes")]
    fn empty_votes_rejected() {
        let _ = aggregate(Aggregation::Majority, &[], &profiles(&[0.1]));
    }
}
