//! The session multiplexer: thousands of concurrent sessions over
//! cheap copy-on-write forks of the published base.
//!
//! Each live session may hold its own [`ProbabilisticNetwork::fork`] of
//! the last published snapshot — `O(#shards)` pointer copies plus the
//! probability vector, no sample matrix — which it advances with its
//! own observations so its *next* question reflects what it already
//! answered even before the commit lanes fold the answer into the
//! base. Forks are allocated lazily (only when a session actually
//! selects a fresh question), refreshed when the published generation
//! moves past them, and capped at `SessionManager::max_forks` live
//! forks with FIFO eviction — an evicted or capped session simply
//! selects on the shared published snapshot, which changes wall-clock
//! behaviour, never the deterministic outcome (selection is filtered by
//! the caller's authoritative `unavailable` set either way).
//!
//! Question selection is the paper's entropy-argmax restricted to what
//! serving can afford per event: `argmax H(p_c)` over the uncertain,
//! available candidates. Binary entropy is strictly decreasing in
//! `|p − ½|`, so the scan compares `|p − ½|` directly — same argmax,
//! no `log2` per candidate — and breaks ties toward the lowest id,
//! making the choice a pure function of the (deterministic) snapshot.

use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use smn_schema::CandidateId;

/// One session's private view: a fork of the published base and the
/// generation it was forked at.
struct SessionSlot {
    fork: ProbabilisticNetwork,
    generation: u64,
}

/// Multiplexes concurrent sessions over the shared published snapshot.
pub struct SessionManager {
    slots: HashMap<u64, SessionSlot>,
    fork_fifo: VecDeque<u64>,
    max_forks: usize,
}

impl SessionManager {
    /// A manager keeping at most `max_forks` live session forks (min 1).
    pub fn new(max_forks: usize) -> Self {
        Self { slots: HashMap::new(), fork_fifo: VecDeque::new(), max_forks: max_forks.max(1) }
    }

    /// Live session forks currently held.
    pub fn live_forks(&self) -> usize {
        self.slots.len()
    }

    /// Selects session `session`'s next question on its private view:
    /// the most uncertain candidate (`argmax H(p)` = `argmin |p − ½|`,
    /// ties to the lowest id) among those with `0 < p < 1` that the
    /// caller's `unavailable` filter admits; falls back to the first
    /// available unasserted candidate when every probability is pinned;
    /// `None` when nothing is available at all.
    ///
    /// Lazily forks the published snapshot for the session (refreshing a
    /// fork whose `generation` fell behind `published_generation`); at
    /// the fork cap the session selects directly on `published` without
    /// holding a fork.
    pub fn select(
        &mut self,
        session: u64,
        published: &Arc<ProbabilisticNetwork>,
        published_generation: u64,
        unavailable: &dyn Fn(CandidateId) -> bool,
    ) -> Option<CandidateId> {
        match self.slots.get(&session) {
            Some(slot) if slot.generation >= published_generation => {}
            Some(_) => {
                // stale fork: the base has moved — refresh from published
                let slot = self.slots.get_mut(&session).expect("checked above");
                slot.fork = published.as_ref().fork();
                slot.generation = published_generation;
            }
            None if self.slots.len() < self.max_forks => {
                self.slots.insert(
                    session,
                    SessionSlot {
                        fork: published.as_ref().fork(),
                        generation: published_generation,
                    },
                );
                self.fork_fifo.push_back(session);
            }
            None => {
                // at the cap: evict the oldest holder to admit this one
                while self.slots.len() >= self.max_forks {
                    match self.fork_fifo.pop_front() {
                        Some(old) => {
                            self.slots.remove(&old);
                        }
                        None => break,
                    }
                }
                self.slots.insert(
                    session,
                    SessionSlot {
                        fork: published.as_ref().fork(),
                        generation: published_generation,
                    },
                );
                self.fork_fifo.push_back(session);
            }
        }
        let view: &ProbabilisticNetwork =
            self.slots.get(&session).map_or(published.as_ref(), |s| &s.fork);
        select_on(view, unavailable)
    }

    /// Applies `assertion` to the session's private fork (if it holds
    /// one), so its next selection sees its own answer immediately. The
    /// authoritative integration happens in the commit lanes; a rejected
    /// or redundant private echo is simply dropped.
    pub fn observe(&mut self, session: u64, assertion: Assertion) {
        if let Some(slot) = self.slots.get_mut(&session) {
            let _ = slot.fork.assert_candidate(assertion);
        }
    }

    /// Drops every session fork — the evolution-epoch reset: ids may
    /// have been renumbered, so private views are all invalid.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.fork_fifo.clear();
    }
}

/// The selection scan on one view; see [`SessionManager::select`].
fn select_on(
    view: &ProbabilisticNetwork,
    unavailable: &dyn Fn(CandidateId) -> bool,
) -> Option<CandidateId> {
    let probs = view.probabilities();
    let mut best: Option<(f64, CandidateId)> = None;
    for (i, &p) in probs.iter().enumerate() {
        if p <= 0.0 || p >= 1.0 {
            continue;
        }
        let c = CandidateId::from_index(i);
        if unavailable(c) {
            continue;
        }
        let d = (p - 0.5).abs();
        // strict < keeps the lowest id on ties
        if best.map_or(true, |(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    if let Some((_, c)) = best {
        return Some(c);
    }
    // all pinned: validate the first available unasserted candidate
    (0..probs.len())
        .map(CandidateId::from_index)
        .find(|&c| !view.feedback().is_asserted(c) && !unavailable(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_testkit::{fig1_network, tiny_sampler};

    fn published() -> Arc<ProbabilisticNetwork> {
        Arc::new(ProbabilisticNetwork::new_sharded(
            fig1_network(),
            tiny_sampler(5),
            smn_core::shard::ShardingConfig::default(),
        ))
    }

    #[test]
    fn selection_is_entropy_argmax_with_lowest_id_ties() {
        let base = published();
        let mut mgr = SessionManager::new(8);
        // fig1: all five candidates at p = 0.5 → lowest id wins
        let c = mgr.select(0, &base, 0, &|_| false).expect("uncertain candidates exist");
        assert_eq!(c, CandidateId(0));
        // masking c0 moves to the next lowest
        let c = mgr.select(1, &base, 0, &|c| c == CandidateId(0)).expect("more remain");
        assert_eq!(c, CandidateId(1));
    }

    #[test]
    fn observed_answers_steer_the_sessions_own_next_question() {
        let base = published();
        let mut mgr = SessionManager::new(8);
        assert_eq!(mgr.select(7, &base, 0, &|_| false), Some(CandidateId(0)));
        mgr.observe(7, Assertion { candidate: CandidateId(2), approved: true });
        // the private fork collapsed c2 (p=1) and c4 (p=0); both leave the
        // uncertain pool for THIS session only
        let c = mgr.select(7, &base, 0, &|c| c == CandidateId(0)).expect("still uncertain");
        assert_ne!(c, CandidateId(2));
        assert_ne!(c, CandidateId(4));
        // an unrelated session still sees the published base untouched
        assert_eq!(mgr.select(8, &base, 0, &|c| c == CandidateId(0)), Some(CandidateId(1)));
    }

    #[test]
    fn fork_cap_evicts_fifo_but_still_selects() {
        let base = published();
        let mut mgr = SessionManager::new(2);
        for s in 0..5u64 {
            assert!(mgr.select(s, &base, 0, &|_| false).is_some());
        }
        assert!(mgr.live_forks() <= 2, "cap must bound live forks");
    }

    #[test]
    fn stale_forks_refresh_to_the_published_generation() {
        let base = published();
        let mut mgr = SessionManager::new(4);
        mgr.observe(3, Assertion { candidate: CandidateId(2), approved: true });
        assert_eq!(mgr.select(3, &base, 0, &|_| false), Some(CandidateId(0)));
        mgr.observe(3, Assertion { candidate: CandidateId(2), approved: true });
        // bump the published generation: the session's fork must refresh,
        // forgetting its private echo
        let mut fresh = base.as_ref().fork();
        fresh.assert_candidate(Assertion { candidate: CandidateId(0), approved: false }).unwrap();
        let fresh = Arc::new(fresh);
        let c = mgr.select(3, &fresh, 1, &|_| false).expect("uncertain remain");
        assert_ne!(c, CandidateId(0), "refreshed fork must see the published assertion");
    }

    #[test]
    fn max_forks_one_evicts_then_readmits_with_consistent_selection() {
        // the eviction loop boundary: at max_forks = 1 every admission
        // evicts the single holder, and re-admitting an evicted session
        // must select exactly what it selected before
        let base = published();
        let mut mgr = SessionManager::new(1);
        let first = mgr.select(0, &base, 0, &|_| false).expect("uncertain candidates exist");
        assert_eq!(mgr.live_forks(), 1);
        // admitting session 1 evicts session 0's fork but still selects
        let other = mgr.select(1, &base, 0, &|_| false).expect("selection survives eviction");
        assert_eq!(mgr.live_forks(), 1, "the cap holds through eviction");
        assert_eq!(first, other, "fresh forks of the same base select identically");
        // re-admission of the evicted session: same base, same answer
        let again = mgr.select(0, &base, 0, &|_| false).expect("re-admission selects");
        assert_eq!(first, again, "eviction then re-admission keeps selection consistent");
        assert_eq!(mgr.live_forks(), 1);
        // and the re-admitted fork is live: its private echo steers it
        mgr.observe(0, Assertion { candidate: CandidateId(2), approved: true });
        let steered = mgr.select(0, &base, 0, &|c| c == CandidateId(0)).expect("still uncertain");
        assert_ne!(steered, CandidateId(2));
        assert_ne!(steered, CandidateId(4));
    }

    #[test]
    fn reset_drops_every_fork() {
        let base = published();
        let mut mgr = SessionManager::new(4);
        for s in 0..3 {
            mgr.select(s, &base, 0, &|_| false);
        }
        assert!(mgr.live_forks() > 0);
        mgr.reset();
        assert_eq!(mgr.live_forks(), 0);
    }
}
