//! The session multiplexer: thousands of concurrent sessions over
//! cheap copy-on-write forks of the published base.
//!
//! Each live session may hold its own [`ProbabilisticNetwork::fork`] of
//! the last published snapshot — `O(#shards)` pointer copies plus the
//! probability vector, no sample matrix — which it advances with its
//! own observations so its *next* question reflects what it already
//! answered even before the commit lanes fold the answer into the
//! base. Forks are allocated lazily (only when a session actually
//! selects a fresh question), refreshed when the published generation
//! moves past them, and capped at `SessionManager::max_forks` live
//! forks with FIFO eviction — an evicted or capped session simply
//! selects on the shared published snapshot, which changes wall-clock
//! behaviour, never the deterministic outcome (selection is filtered by
//! the caller's authoritative `unavailable` set either way).
//!
//! Question selection is the paper's entropy-argmax restricted to what
//! serving can afford per event: `argmax H(p_c)` over the uncertain,
//! available candidates. Binary entropy is strictly decreasing in
//! `|p − ½|`, so the scan compares `|p − ½|` directly — same argmax,
//! no `log2` per candidate — and breaks ties toward the lowest id,
//! making the choice a pure function of the (deterministic) snapshot.
//!
//! The per-question scan is served from a **shared base-snapshot
//! cache**: the `(|p − ½|, id)`-sorted entry list of the published
//! snapshot is built once per published generation and shared by every
//! session, and each session overlays only the shards it privately
//! echoed answers into (a fork diverges from its base exactly there —
//! a sharded assertion rewrites the owning component's probabilities
//! and nothing else). Selection then walks the merged streams best
//! first and stops at the first available candidate, instead of
//! rescanning all `|C|` probabilities per question. The merge is
//! provably the same argmin over the same candidate set, so it picks
//! identically to the plain scan [`select_on`] — which stays public as
//! the differential reference.

use smn_core::feedback::Assertion;
use smn_core::ProbabilisticNetwork;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use smn_schema::CandidateId;

/// One session's private view: a fork of the published base, the
/// generation it was forked at, and the private-echo overlay — the
/// shards (and their member ids) where the fork's probabilities have
/// diverged from the base.
struct SessionSlot {
    fork: ProbabilisticNetwork,
    generation: u64,
    /// Shards this session echoed a *mutating* answer into.
    echoed: BTreeSet<usize>,
    /// Ascending candidate ids of the echoed shards — the domain where
    /// the shared entry list must be masked and the fork consulted.
    overlay: Vec<u32>,
}

impl SessionSlot {
    fn fresh(fork: ProbabilisticNetwork, generation: u64) -> Self {
        Self { fork, generation, echoed: BTreeSet::new(), overlay: Vec::new() }
    }
}

/// The shared selection-entry cache of one published snapshot:
/// `(|p − ½|, id)` for every uncertain candidate, ascending — best
/// question first. Built once per published generation, shared by all
/// sessions.
#[derive(Default)]
struct SharedEntries {
    generation: Option<u64>,
    entries: Vec<(f64, u32)>,
}

/// Multiplexes concurrent sessions over the shared published snapshot.
pub struct SessionManager {
    slots: HashMap<u64, SessionSlot>,
    fork_fifo: VecDeque<u64>,
    max_forks: usize,
    shared: SharedEntries,
}

impl SessionManager {
    /// A manager keeping at most `max_forks` live session forks (min 1).
    pub fn new(max_forks: usize) -> Self {
        Self {
            slots: HashMap::new(),
            fork_fifo: VecDeque::new(),
            max_forks: max_forks.max(1),
            shared: SharedEntries::default(),
        }
    }

    /// Live session forks currently held.
    pub fn live_forks(&self) -> usize {
        self.slots.len()
    }

    /// Selects session `session`'s next question on its private view:
    /// the most uncertain candidate (`argmax H(p)` = `argmin |p − ½|`,
    /// ties to the lowest id) among those with `0 < p < 1` that the
    /// caller's `unavailable` filter admits; falls back to the first
    /// available unasserted candidate when every probability is pinned;
    /// `None` when nothing is available at all. Exactly [`select_on`]
    /// over the session's fork, served from the shared entry cache plus
    /// the session's private-echo overlay.
    ///
    /// Lazily forks the published snapshot for the session (refreshing a
    /// fork whose `generation` fell behind `published_generation`); at
    /// the fork cap the session selects directly on `published` without
    /// holding a fork.
    pub fn select(
        &mut self,
        session: u64,
        published: &Arc<ProbabilisticNetwork>,
        published_generation: u64,
        unavailable: &dyn Fn(CandidateId) -> bool,
    ) -> Option<CandidateId> {
        match self.slots.get(&session) {
            Some(slot) if slot.generation >= published_generation => {}
            Some(_) => {
                // stale fork: the base has moved — refresh from published
                // (and drop the overlay: the new fork has no echoes yet)
                let slot = self.slots.get_mut(&session).expect("checked above");
                *slot = SessionSlot::fresh(published.as_ref().fork(), published_generation);
            }
            None if self.slots.len() < self.max_forks => {
                self.slots.insert(
                    session,
                    SessionSlot::fresh(published.as_ref().fork(), published_generation),
                );
                self.fork_fifo.push_back(session);
            }
            None => {
                // at the cap: evict the oldest holder to admit this one
                while self.slots.len() >= self.max_forks {
                    match self.fork_fifo.pop_front() {
                        Some(old) => {
                            self.slots.remove(&old);
                        }
                        None => break,
                    }
                }
                self.slots.insert(
                    session,
                    SessionSlot::fresh(published.as_ref().fork(), published_generation),
                );
                self.fork_fifo.push_back(session);
            }
        }
        if self.shared.generation != Some(published_generation) {
            self.shared.entries = sorted_entries_of(published.probabilities(), None);
            self.shared.generation = Some(published_generation);
        }
        let Some(slot) = self.slots.get(&session) else {
            // defensive: no fork admitted — plain scan on the base
            return select_on(published.as_ref(), unavailable);
        };
        // overlay stream: the echoed shards priced from the fork
        let overlay = sorted_entries_of(slot.fork.probabilities(), Some(&slot.overlay));
        // merged best-first walk — first available candidate wins; base
        // entries inside the overlay domain are masked (stale there)
        let mut shared = self
            .shared
            .entries
            .iter()
            .filter(|&&(_, id)| slot.overlay.binary_search(&id).is_err())
            .peekable();
        let mut private = overlay.iter().peekable();
        loop {
            let take_shared = match (shared.peek(), private.peek()) {
                (Some(&&s), Some(&&p)) => (s.0, s.1) <= (p.0, p.1),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let &(_, id) =
                if take_shared { shared.next().unwrap() } else { private.next().unwrap() };
            let c = CandidateId(id);
            if !unavailable(c) {
                return Some(c);
            }
        }
        // all pinned: validate the first available unasserted candidate
        let view = &slot.fork;
        (0..view.probabilities().len())
            .map(CandidateId::from_index)
            .find(|&c| !view.feedback().is_asserted(c) && !unavailable(c))
    }

    /// Applies `assertion` to the session's private fork (if it holds
    /// one), so its next selection sees its own answer immediately. The
    /// authoritative integration happens in the commit lanes; a rejected
    /// or redundant private echo is simply dropped. A *mutating* echo
    /// records the owning shard in the session's overlay — its
    /// probabilities now diverge from the published base there.
    pub fn observe(&mut self, session: u64, assertion: Assertion) {
        if let Some(slot) = self.slots.get_mut(&session) {
            let before = slot.fork.generation();
            let _ = slot.fork.assert_candidate(assertion);
            if slot.fork.generation() != before {
                let shard = slot.fork.shard_of(assertion.candidate);
                if slot.echoed.insert(shard) {
                    let members: Vec<u32> =
                        slot.fork.shard_members(shard).iter().map(|c| c.0).collect();
                    slot.overlay = merge_sorted(&slot.overlay, &members);
                }
            }
        }
    }

    /// Drops every session fork — the evolution-epoch reset: ids may
    /// have been renumbered, so private views (and the shared entry
    /// cache) are all invalid.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.fork_fifo.clear();
        self.shared = SharedEntries::default();
    }
}

/// The `(|p − ½|, id)` entries of the uncertain candidates, ascending —
/// over all of `probs`, or restricted to the (sorted) `domain` ids.
fn sorted_entries_of(probs: &[f64], domain: Option<&[u32]>) -> Vec<(f64, u32)> {
    let entry = |id: u32| {
        let p = probs[id as usize];
        (p > 0.0 && p < 1.0).then(|| ((p - 0.5).abs(), id))
    };
    let mut entries: Vec<(f64, u32)> = match domain {
        Some(ids) => ids.iter().filter_map(|&id| entry(id)).collect(),
        None => (0..probs.len() as u32).filter_map(entry).collect(),
    };
    entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    entries
}

/// Merges two ascending id lists into one (deduplicating).
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition"),
        };
        out.push(next);
    }
    out
}

/// The plain selection scan on one view — the reference implementation
/// [`SessionManager::select`]'s cached merge must (and, per the
/// differential suite, does) reproduce pick for pick.
pub fn select_on(
    view: &ProbabilisticNetwork,
    unavailable: &dyn Fn(CandidateId) -> bool,
) -> Option<CandidateId> {
    let probs = view.probabilities();
    let mut best: Option<(f64, CandidateId)> = None;
    for (i, &p) in probs.iter().enumerate() {
        if p <= 0.0 || p >= 1.0 {
            continue;
        }
        let c = CandidateId::from_index(i);
        if unavailable(c) {
            continue;
        }
        let d = (p - 0.5).abs();
        // strict < keeps the lowest id on ties
        if best.map_or(true, |(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    if let Some((_, c)) = best {
        return Some(c);
    }
    // all pinned: validate the first available unasserted candidate
    (0..probs.len())
        .map(CandidateId::from_index)
        .find(|&c| !view.feedback().is_asserted(c) && !unavailable(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smn_testkit::{fig1_network, tiny_sampler};

    fn published() -> Arc<ProbabilisticNetwork> {
        Arc::new(ProbabilisticNetwork::new_sharded(
            fig1_network(),
            tiny_sampler(5),
            smn_core::shard::ShardingConfig::default(),
        ))
    }

    #[test]
    fn selection_is_entropy_argmax_with_lowest_id_ties() {
        let base = published();
        let mut mgr = SessionManager::new(8);
        // fig1: all five candidates at p = 0.5 → lowest id wins
        let c = mgr.select(0, &base, 0, &|_| false).expect("uncertain candidates exist");
        assert_eq!(c, CandidateId(0));
        // masking c0 moves to the next lowest
        let c = mgr.select(1, &base, 0, &|c| c == CandidateId(0)).expect("more remain");
        assert_eq!(c, CandidateId(1));
    }

    #[test]
    fn observed_answers_steer_the_sessions_own_next_question() {
        let base = published();
        let mut mgr = SessionManager::new(8);
        assert_eq!(mgr.select(7, &base, 0, &|_| false), Some(CandidateId(0)));
        mgr.observe(7, Assertion { candidate: CandidateId(2), approved: true });
        // the private fork collapsed c2 (p=1) and c4 (p=0); both leave the
        // uncertain pool for THIS session only
        let c = mgr.select(7, &base, 0, &|c| c == CandidateId(0)).expect("still uncertain");
        assert_ne!(c, CandidateId(2));
        assert_ne!(c, CandidateId(4));
        // an unrelated session still sees the published base untouched
        assert_eq!(mgr.select(8, &base, 0, &|c| c == CandidateId(0)), Some(CandidateId(1)));
    }

    #[test]
    fn fork_cap_evicts_fifo_but_still_selects() {
        let base = published();
        let mut mgr = SessionManager::new(2);
        for s in 0..5u64 {
            assert!(mgr.select(s, &base, 0, &|_| false).is_some());
        }
        assert!(mgr.live_forks() <= 2, "cap must bound live forks");
    }

    #[test]
    fn stale_forks_refresh_to_the_published_generation() {
        let base = published();
        let mut mgr = SessionManager::new(4);
        mgr.observe(3, Assertion { candidate: CandidateId(2), approved: true });
        assert_eq!(mgr.select(3, &base, 0, &|_| false), Some(CandidateId(0)));
        mgr.observe(3, Assertion { candidate: CandidateId(2), approved: true });
        // bump the published generation: the session's fork must refresh,
        // forgetting its private echo
        let mut fresh = base.as_ref().fork();
        fresh.assert_candidate(Assertion { candidate: CandidateId(0), approved: false }).unwrap();
        let fresh = Arc::new(fresh);
        let c = mgr.select(3, &fresh, 1, &|_| false).expect("uncertain remain");
        assert_ne!(c, CandidateId(0), "refreshed fork must see the published assertion");
    }

    #[test]
    fn max_forks_one_evicts_then_readmits_with_consistent_selection() {
        // the eviction loop boundary: at max_forks = 1 every admission
        // evicts the single holder, and re-admitting an evicted session
        // must select exactly what it selected before
        let base = published();
        let mut mgr = SessionManager::new(1);
        let first = mgr.select(0, &base, 0, &|_| false).expect("uncertain candidates exist");
        assert_eq!(mgr.live_forks(), 1);
        // admitting session 1 evicts session 0's fork but still selects
        let other = mgr.select(1, &base, 0, &|_| false).expect("selection survives eviction");
        assert_eq!(mgr.live_forks(), 1, "the cap holds through eviction");
        assert_eq!(first, other, "fresh forks of the same base select identically");
        // re-admission of the evicted session: same base, same answer
        let again = mgr.select(0, &base, 0, &|_| false).expect("re-admission selects");
        assert_eq!(first, again, "eviction then re-admission keeps selection consistent");
        assert_eq!(mgr.live_forks(), 1);
        // and the re-admitted fork is live: its private echo steers it
        mgr.observe(0, Assertion { candidate: CandidateId(2), approved: true });
        let steered = mgr.select(0, &base, 0, &|c| c == CandidateId(0)).expect("still uncertain");
        assert_ne!(steered, CandidateId(2));
        assert_ne!(steered, CandidateId(4));
    }

    #[test]
    fn reset_drops_every_fork() {
        let base = published();
        let mut mgr = SessionManager::new(4);
        for s in 0..3 {
            mgr.select(s, &base, 0, &|_| false);
        }
        assert!(mgr.live_forks() > 0);
        mgr.reset();
        assert_eq!(mgr.live_forks(), 0);
    }

    #[test]
    fn cached_merge_matches_the_plain_scan_through_random_echo_streams() {
        // differential: the shared-entries + overlay merge must pick
        // exactly what a plain select_on over the session's fork picks,
        // through arbitrary interleavings of echoes and masks — here a
        // deterministic pseudo-random stream over two sessions
        let base = published();
        let mut mgr = SessionManager::new(8);
        let mut reference: HashMap<u64, ProbabilisticNetwork> = HashMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for step in 0..40u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let session = state % 2;
            let view = reference.entry(session).or_insert_with(|| base.as_ref().fork()) as &mut _;
            let mask = CandidateId((state >> 17) as u32 % 5);
            let masked = move |c: CandidateId| c == mask;
            let got = mgr.select(session, &base, 0, &masked);
            let want = select_on(view, &masked);
            assert_eq!(got, want, "step {step}: cached merge diverged from the plain scan");
            if state & 4 != 0 {
                let echo = Assertion {
                    candidate: CandidateId((state >> 23) as u32 % 5),
                    approved: state & 8 != 0,
                };
                mgr.observe(session, echo);
                let _ = view.assert_candidate(echo);
            }
        }
    }
}
