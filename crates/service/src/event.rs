//! The serving ingress: typed events, logical-clock stamping and a
//! bounded queue with typed backpressure.
//!
//! Everything the request-driven serving core does is a reaction to a
//! [`ServiceEvent`] pulled off the [`IngressQueue`]. The queue is the
//! determinism boundary: an event is stamped with the next logical
//! clock tick **iff it is accepted** — a rejected submission
//! ([`IngressError::Full`]) consumes no tick and leaves the accepted
//! stream untouched, so the accepted-event log always carries the
//! gapless clocks `0, 1, 2, …` regardless of how many submissions
//! bounced in between. Replaying that log through a fresh core
//! reproduces the live run byte for byte (see `docs/SERVING.md` and the
//! `serve` integration suite).

use smn_schema::{AttributeId, CandidateId};
use std::collections::VecDeque;
use std::fmt;

/// One request arriving at the serving core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceEvent {
    /// Session `session` asks for its next question.
    Question {
        /// The asking session.
        session: u64,
    },
    /// Session `session` answers its outstanding question. `verdict`
    /// carries an explicit answer; `None` lets the session's simulated
    /// crowd worker answer from its error profile.
    Answer {
        /// The answering session.
        session: u64,
        /// Explicit verdict, or `None` for the simulated worker's.
        verdict: Option<bool>,
    },
    /// A new candidate correspondence arrives (cross-shard: takes an
    /// exclusive evolution epoch).
    Extend {
        /// First endpoint.
        a: AttributeId,
        /// Second endpoint.
        b: AttributeId,
        /// Matcher confidence of the arrival.
        confidence: f64,
    },
    /// Candidate `candidate` retires (cross-shard: exclusive epoch,
    /// renumbers every later id).
    Retire {
        /// The retiring candidate.
        candidate: CandidateId,
    },
    /// Publish a fresh immutable snapshot of the base for readers.
    PublishTick,
}

/// A [`ServiceEvent`] stamped with its ingress logical clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StampedEvent {
    /// Gapless per-core logical clock, assigned at acceptance.
    pub clock: u64,
    /// The accepted event.
    pub event: ServiceEvent,
}

/// Why a submission was rejected. The only variant is backpressure —
/// submitting to a full queue is not an error of the event, and
/// resubmitting after a [`pump`](crate::serve::ServingCore::pump) will
/// succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressError {
    /// The bounded ingress queue is at capacity; the event was **not**
    /// accepted, no clock tick was consumed, and previously accepted
    /// events are unaffected.
    Full {
        /// The queue's configured capacity.
        capacity: usize,
    },
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Full { capacity } => {
                write!(f, "ingress queue full (capacity {capacity}); retry after a pump")
            }
        }
    }
}

impl std::error::Error for IngressError {}

/// The bounded ingress queue: FIFO over accepted events, each stamped
/// with the next logical clock at acceptance.
#[derive(Debug)]
pub struct IngressQueue {
    events: VecDeque<StampedEvent>,
    capacity: usize,
    clock: u64,
}

impl IngressQueue {
    /// An empty queue accepting up to `capacity` undrained events
    /// (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { events: VecDeque::with_capacity(capacity.min(4096)), capacity, clock: 0 }
    }

    /// Accepts `event`, stamps it with the next clock tick and returns
    /// that tick — or rejects it with [`IngressError::Full`] *before*
    /// stamping, so rejected submissions never leave clock gaps.
    pub fn push(&mut self, event: ServiceEvent) -> Result<u64, IngressError> {
        if self.events.len() >= self.capacity {
            return Err(IngressError::Full { capacity: self.capacity });
        }
        let clock = self.clock;
        self.clock += 1;
        self.events.push_back(StampedEvent { clock, event });
        Ok(clock)
    }

    /// Pops the oldest accepted event.
    pub fn pop(&mut self) -> Option<StampedEvent> {
        self.events.pop_front()
    }

    /// Undrained events currently queued.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next clock tick to be assigned — equals the number of events
    /// ever accepted.
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepted_events_carry_gapless_clocks_across_rejections() {
        let mut q = IngressQueue::new(2);
        assert_eq!(q.push(ServiceEvent::Question { session: 0 }), Ok(0));
        assert_eq!(q.push(ServiceEvent::Question { session: 1 }), Ok(1));
        // full: rejected, no tick consumed
        assert_eq!(
            q.push(ServiceEvent::Question { session: 2 }),
            Err(IngressError::Full { capacity: 2 })
        );
        assert_eq!(q.clock(), 2);
        let first = q.pop().expect("queued");
        assert_eq!((first.clock, first.event), (0, ServiceEvent::Question { session: 0 }));
        // freed capacity: the next acceptance continues the clock gaplessly
        assert_eq!(q.push(ServiceEvent::PublishTick), Ok(2));
        assert_eq!(q.pop().map(|e| e.clock), Some(1));
        assert_eq!(q.pop().map(|e| e.clock), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let mut q = IngressQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.push(ServiceEvent::PublishTick), Ok(0));
        assert!(q.push(ServiceEvent::PublishTick).is_err());
    }
}
