//! The request-driven serving core.
//!
//! [`ServingCore`] inverts the round-driven [`crate::service`] loop:
//! instead of the service deciding when workers answer, *events* arrive
//! — question requests, answers, candidate arrivals/retirements,
//! snapshot-publication ticks — through a bounded [`IngressQueue`] with
//! typed backpressure, and the core reacts:
//!
//! * **Questions** are leased per session by the [`SessionManager`]:
//!   join an under-replicated open question first (redundancy `k`
//!   fills from concurrent sessions), else select fresh on the
//!   session's copy-on-write fork of the published snapshot.
//! * **Answers** resolve to a vote (an explicit verdict, or the
//!   session's simulated crowd worker answering from its error
//!   profile); the `k`-th vote aggregates and the decided assertion
//!   enters the pending commit buffer.
//! * **Commits** flush in batches through
//!   [`ProbabilisticNetwork::commit_batch`]: pending assertions are
//!   ordered by `(shard, decision clock)` and applied through
//!   per-shard commit lanes — on the worker pool's high-priority lane
//!   under [`Scheduler::Pool`] — with WAL-append-at-commit through
//!   per-lane sinks ([`smn_storage::LaneSinks`]) when durability is
//!   attached.
//! * **Evolution** (extend/retire) takes a brief exclusive epoch: the
//!   pending buffer flushes, every open question, assignment and
//!   session fork drops, the base evolves, and a fresh snapshot
//!   publishes.
//! * **Publication** swaps an immutable `Arc` snapshot of the base for
//!   readers — only when the base's mutation
//!   [`generation`](ProbabilisticNetwork::generation) actually moved.
//!
//! ## Determinism and replay
//!
//! Every accepted event is stamped with a gapless logical clock at
//! ingress, and everything the core does is a pure function of the
//! accepted-event sequence: worker answers are pure hashes, selection
//! is an entropy argmax on deterministic snapshots, commits order by
//! `(shard, clock)`, and commit lanes are byte-identical under any
//! [`Scheduler`] and thread count. Hence the report and the posteriors
//! are byte-reproducible across 1/4/8 threads, and
//! [`ServingCore::replay`] of the accepted log reproduces a live run
//! exactly — rejected (backpressured) submissions never influence
//! results because they never enter the log. The integration suite
//! `serve.rs` pins all of it, including proptests over random event
//! streams.

use crate::aggregate::{aggregate, Aggregation, Verdict, Vote};
use crate::event::{IngressError, IngressQueue, ServiceEvent, StampedEvent};
use crate::service::Scheduler;
use crate::session::SessionManager;
use crate::worker::{WorkerPool, WorkerStats};
use serde::Serialize;
use smn_constraints::BitSet;
use smn_core::feedback::Assertion;
use smn_core::persist::NetworkEvent;
use smn_core::shard::ShardingConfig;
use smn_core::{
    CommitExec, MatchingNetwork, PrecisionRecall, ProbabilisticNetwork, SamplerConfig, StepOutcome,
};
use smn_schema::{CandidateId, Correspondence};
use smn_storage::{DurableStore, LaneSinks, StorageError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// A rejected serving configuration — every variant is a condition that
/// would otherwise surface later as a panic deep inside the event loop
/// (remote-triggerable once events arrive over a network boundary), so
/// [`ServingCore::new`] refuses it up front instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `error_rates` was empty: with no crowd workers, answer events
    /// would divide by the crowd size and clamp redundancy into an
    /// empty range.
    EmptyCrowd,
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyCrowd => {
                write!(f, "serving requires at least one crowd worker (error_rates was empty)")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// A failed [`ServingCore::replay`] — the log could not be re-accepted
/// exactly as recorded, so the replayed run would not be byte-identical
/// to the live one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The replay configuration itself was rejected.
    Config(ServeConfigError),
    /// The replay ingress rejected a log event: its capacity (after the
    /// ≥ 1 clamp) is smaller than the recording run required at this
    /// point of the log.
    CapacityExceeded {
        /// The replay queue's effective capacity.
        capacity: usize,
        /// The log clock of the event that could not be re-accepted.
        clock: u64,
    },
    /// An accepted event was stamped with a different clock than the log
    /// recorded — the log is not a gapless prefix-faithful recording
    /// (truncated from the front, spliced, or hand-edited).
    ClockDrift {
        /// The clock the log recorded.
        expected: u64,
        /// The clock the replay ingress issued.
        got: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "replay configuration rejected: {e}"),
            Self::CapacityExceeded { capacity, clock } => write!(
                f,
                "replay ingress (capacity {capacity}) rejected the log event at clock {clock}"
            ),
            Self::ClockDrift { expected, got } => {
                write!(f, "replay clock drifted from the log: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ServeConfigError> for ReplayError {
    fn from(e: ServeConfigError) -> Self {
        Self::Config(e)
    }
}

/// Configuration of the request-driven serving core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Sampler parameters of the base network.
    pub sampler: SamplerConfig,
    /// Sample representation of the base network.
    pub sharding: ShardingConfig,
    /// Votes per open question (`k`), clamped to the crowd size.
    pub redundancy: usize,
    /// How votes reduce to one assertion.
    pub aggregation: Aggregation,
    /// OS threads for the commit lanes; `0` uses the machine's available
    /// parallelism, `1` forces sequential commits. Never affects
    /// results, only wall-clock.
    pub threads: usize,
    /// How commit lanes are scheduled; never affects results.
    pub scheduler: Scheduler,
    /// Seed of the simulated crowd's answer noise.
    pub seed: u64,
    /// Ingress queue capacity (typed backpressure beyond it).
    pub capacity: usize,
    /// Flush the pending commit buffer whenever it reaches this many
    /// decided assertions (publication ticks and evolution always
    /// flush).
    pub flush_every: usize,
    /// Live session forks held at once (FIFO eviction beyond it).
    pub max_forks: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            sampler: SamplerConfig::default(),
            sharding: ShardingConfig::default(),
            redundancy: 3,
            aggregation: Aggregation::Majority,
            threads: 0,
            scheduler: Scheduler::default(),
            seed: 0xC0FFEE,
            capacity: 65_536,
            flush_every: 64,
            max_forks: 8_192,
        }
    }
}

impl ServeConfig {
    /// The ingress capacity actually used: the configured value clamped
    /// to ≥ 1 at the *config* level, so a zero-capacity config can never
    /// produce a queue that rejects every submission (which would turn
    /// [`ServingCore::replay`] of any nonempty log into an error).
    pub fn effective_capacity(&self) -> usize {
        self.capacity.max(1)
    }
}

/// One committed (aggregated) assertion of a serving run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeCommit {
    /// 1-based commit count.
    pub step: usize,
    /// The asserted candidate id.
    pub candidate: u32,
    /// The shard (conflict component) the commit lane wrote.
    pub shard: usize,
    /// The committed verdict (after any inconsistency fallback).
    pub approved: bool,
    /// `integrated`, `flipped` or `skipped` (see [`StepOutcome`]).
    pub outcome: String,
    /// Raw approving votes.
    pub votes_for: usize,
    /// Raw disapproving votes.
    pub votes_against: usize,
    /// Logical clock of the `k`-th (deciding) vote.
    pub decided_clock: u64,
    /// Logical clock of the flush that committed it.
    pub committed_clock: u64,
    /// Network uncertainty after the commit's flush.
    pub entropy_after: f64,
    /// User effort after the commit's flush.
    pub effort_after: f64,
}

/// Order statistics of the decided→committed logical-clock latency.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySummary {
    /// Committed assertions measured.
    pub count: u64,
    /// Median latency in clock ticks.
    pub p50: u64,
    /// 99th-percentile latency in clock ticks.
    pub p99: u64,
    /// Worst latency in clock ticks.
    pub max: u64,
    /// Mean latency in clock ticks.
    pub mean: f64,
}

impl LatencySummary {
    fn of(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return Self { count: 0, p50: 0, p99: 0, max: 0, mean: 0.0 };
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Self {
            count: sorted.len() as u64,
            p50: q(0.50),
            p99: q(0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// The machine-readable outcome of a serving run. Carries no thread
/// count and no wall-clock: everything is a deterministic function of
/// the accepted-event sequence and the configuration seeds, so
/// identically-driven runs serialize byte-identically at any
/// parallelism — the `serve` determinism suite pins it.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Distinct sessions that sent at least one event.
    pub sessions: u64,
    /// Simulated crowd workers.
    pub workers: usize,
    /// Effective redundancy `k`.
    pub redundancy: usize,
    /// Aggregation scheme label.
    pub aggregation: String,
    /// Per-worker configured error rates.
    pub worker_error_rates: Vec<f64>,
    /// Events accepted at ingress (= the accepted log length).
    pub events_accepted: u64,
    /// Question events that ended with the session holding a lease.
    pub questions_leased: u64,
    /// Worker answers collected (the serving throughput numerator).
    pub questions_asked: u64,
    /// Question events that found nothing available to ask.
    pub starved_questions: u64,
    /// Answer events with no outstanding question (dropped).
    pub ignored_answers: u64,
    /// Committed assertions, in commit order.
    pub commits: Vec<ServeCommit>,
    /// Commit-buffer flushes executed.
    pub flushes: u64,
    /// Snapshot publications that actually swapped the `Arc`.
    pub publications: u64,
    /// Exclusive evolution epochs taken.
    pub epochs: u64,
    /// Decided→committed latency in logical clock ticks.
    pub latency: LatencySummary,
    /// Per-worker tallies (answers, errors vs ground truth).
    pub worker_stats: Vec<WorkerStats>,
    /// Final network uncertainty.
    pub final_entropy: f64,
    /// Final user effort.
    pub final_effort: f64,
    /// Final precision of the probability-majority matching.
    pub final_precision: f64,
    /// Final recall of the same matching.
    pub final_recall: f64,
    /// The latched storage fault of the attached durable store, if any —
    /// in the report itself so saved JSON cannot silently drop it.
    pub durability_error: Option<String>,
}

/// An open (leased, under-voted) question.
struct OpenQuestion {
    assigned: Vec<u64>,
    votes: Vec<Vote>,
}

/// A `k`-voted assertion waiting for its commit flush.
#[derive(Debug, Clone, Copy)]
struct DecidedAssertion {
    clock: u64,
    candidate: CandidateId,
    approved: bool,
    votes_for: usize,
    votes_against: usize,
}

/// Durability state of a serving core: the store, the per-lane WAL
/// sinks of the in-flight flush, and the first latched fault.
struct ServeDurability {
    store: DurableStore,
    lanes: LaneSinks,
    error: Option<StorageError>,
}

/// The request-driven serving core; see the module docs.
pub struct ServingCore {
    base: ProbabilisticNetwork,
    published: Arc<ProbabilisticNetwork>,
    published_generation: u64,
    sessions: SessionManager,
    crowd: WorkerPool,
    truth: Vec<Correspondence>,
    config: ServeConfig,
    ingress: IngressQueue,
    open: HashMap<CandidateId, OpenQuestion>,
    open_fifo: VecDeque<CandidateId>,
    assignments: HashMap<u64, CandidateId>,
    pending: Vec<DecidedAssertion>,
    pending_set: HashSet<CandidateId>,
    /// Candidates asserted in the base — recounted after every flush and
    /// epoch, so the starvation check (`available() == 0`) is O(1) per
    /// question event instead of a fork + O(|C|) scan.
    asserted_count: usize,
    log: Vec<StampedEvent>,
    commits: Vec<ServeCommit>,
    history: Vec<Assertion>,
    latencies: Vec<u64>,
    sessions_seen: HashSet<u64>,
    questions_leased: u64,
    questions_asked: u64,
    starved_questions: u64,
    ignored_answers: u64,
    flushes: u64,
    publications: u64,
    epochs: u64,
    durability: Option<ServeDurability>,
}

impl ServingCore {
    /// Builds the core: the base probabilistic network (initial sampling
    /// under `config.sampler`/`config.sharding`), a simulated crowd with
    /// the given per-worker error rates answering against `truth`, and
    /// an empty ingress.
    ///
    /// An empty `error_rates` is rejected with
    /// [`ServeConfigError::EmptyCrowd`] *before* any sampling happens:
    /// a crowdless core would otherwise panic on the first answer event
    /// (worker selection divides by the crowd size, and redundancy
    /// clamps into the empty `1..=0` range).
    pub fn new(
        network: MatchingNetwork,
        truth: Vec<Correspondence>,
        error_rates: impl IntoIterator<Item = f64>,
        config: ServeConfig,
    ) -> Result<Self, ServeConfigError> {
        let rates: Vec<f64> = error_rates.into_iter().collect();
        if rates.is_empty() {
            return Err(ServeConfigError::EmptyCrowd);
        }
        let base = ProbabilisticNetwork::new_sharded(network, config.sampler, config.sharding);
        // same derived stream as the round-mode service, so a serve run
        // and a round run over the same seed share their crowd coins
        let crowd = WorkerPool::new(
            rates,
            truth.iter().copied(),
            config.seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1),
        );
        let published = Arc::new(base.fork());
        let published_generation = base.generation();
        Ok(Self {
            base,
            published,
            published_generation,
            sessions: SessionManager::new(config.max_forks),
            crowd,
            truth,
            config,
            ingress: IngressQueue::new(config.effective_capacity()),
            open: HashMap::new(),
            open_fifo: VecDeque::new(),
            assignments: HashMap::new(),
            pending: Vec::new(),
            pending_set: HashSet::new(),
            asserted_count: 0,
            log: Vec::new(),
            commits: Vec::new(),
            history: Vec::new(),
            latencies: Vec::new(),
            sessions_seen: HashSet::new(),
            questions_leased: 0,
            questions_asked: 0,
            starved_questions: 0,
            ignored_answers: 0,
            flushes: 0,
            publications: 0,
            epochs: 0,
            durability: None,
        })
    }

    /// The effective redundancy `k`: the configured value clamped into
    /// `1..=crowd.len()`. The crowd is never empty (construction rejects
    /// that), so the clamp range is always nonempty.
    fn redundancy(&self) -> usize {
        self.config.redundancy.clamp(1, self.crowd.len())
    }

    /// Attaches a durable store under `dir`: the current base and
    /// committed history snapshot immediately, and every later commit is
    /// WAL-appended *inside its flush* through per-lane sinks, fsynced
    /// once per flush. Storage faults latch (see
    /// [`durability_error`](Self::durability_error) and
    /// [`ServeReport::durability_error`]) — the core never fails on
    /// storage trouble.
    pub fn attach_durability(&mut self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        let store =
            DurableStore::open(dir.as_ref(), &self.base, &self.history, self.history.len() as u64)?;
        self.durability = Some(ServeDurability { store, lanes: LaneSinks::new(), error: None });
        Ok(())
    }

    /// The first storage fault the attached store hit, if any.
    pub fn durability_error(&self) -> Option<&StorageError> {
        self.durability.as_ref().and_then(|d| d.error.as_ref())
    }

    /// The base probabilistic network (the writer's view).
    pub fn base(&self) -> &ProbabilisticNetwork {
        &self.base
    }

    /// The last published immutable snapshot (the readers' view).
    pub fn published(&self) -> &Arc<ProbabilisticNetwork> {
        &self.published
    }

    /// The accepted-event log: every event ever accepted at ingress, in
    /// clock order. Replaying it through [`ServingCore::replay`]
    /// reproduces this run byte for byte.
    pub fn event_log(&self) -> &[StampedEvent] {
        &self.log
    }

    /// The committed assertions so far, in commit order.
    pub fn commits(&self) -> &[ServeCommit] {
        &self.commits
    }

    /// Commit-buffer flushes executed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The committed assertion history in `smn-core` terms.
    pub fn history(&self) -> &[Assertion] {
        &self.history
    }

    /// The simulated crowd.
    pub fn crowd(&self) -> &WorkerPool {
        &self.crowd
    }

    /// Submits one event to the bounded ingress. Accepted events are
    /// stamped with the next gapless logical clock and their tick is
    /// returned; a full queue rejects with [`IngressError::Full`]
    /// *without* consuming a tick — drain with [`pump`](Self::pump) and
    /// resubmit.
    pub fn submit(&mut self, event: ServiceEvent) -> Result<u64, IngressError> {
        self.ingress.push(event)
    }

    /// Drains the ingress queue, applying every accepted event in clock
    /// order. Returns how many events were applied.
    pub fn pump(&mut self) -> usize {
        let mut applied = 0;
        while let Some(stamped) = self.ingress.pop() {
            self.log.push(stamped);
            self.apply(stamped);
            applied += 1;
        }
        applied
    }

    /// Drives a whole event stream: submits each event, transparently
    /// pumping on backpressure. The accepted order equals the stream
    /// order — backpressure delays, never drops or reorders.
    pub fn run_events(&mut self, events: impl IntoIterator<Item = ServiceEvent>) {
        for event in events {
            if self.submit(event).is_err() {
                self.pump();
                self.submit(event).expect("a drained queue accepts");
            }
        }
        self.pump();
    }

    /// Finishes the run: drains the ingress, flushes the pending commit
    /// buffer, publishes a final snapshot (and a final durable
    /// checkpoint when attached), and assembles the report.
    pub fn finish(&mut self) -> ServeReport {
        self.pump();
        let clock = self.ingress.clock();
        self.flush(clock);
        self.publish();
        if let Some(d) = &mut self.durability {
            if d.error.is_none() {
                if let Err(e) = d.store.publish(&self.base, &self.history) {
                    d.error = Some(e);
                }
            }
        }
        self.report()
    }

    /// Replays an accepted-event log through a fresh core: each event is
    /// submitted and applied one at a time (so the queue holds at most
    /// one event regardless of capacity), reproducing the live run that
    /// emitted the log byte for byte.
    ///
    /// Never panics on hostile input: a rejected configuration, an
    /// ingress that cannot re-accept a log event, or a log whose clocks
    /// do not match the replay's gapless stamping all return a typed
    /// [`ReplayError`] instead.
    pub fn replay(
        network: MatchingNetwork,
        truth: Vec<Correspondence>,
        error_rates: impl IntoIterator<Item = f64>,
        config: ServeConfig,
        log: &[StampedEvent],
    ) -> Result<Self, ReplayError> {
        let mut core = Self::new(network, truth, error_rates, config)?;
        for stamped in log {
            let clock = core.submit(stamped.event).map_err(|_| ReplayError::CapacityExceeded {
                capacity: config.effective_capacity(),
                clock: stamped.clock,
            })?;
            if clock != stamped.clock {
                return Err(ReplayError::ClockDrift { expected: stamped.clock, got: clock });
            }
            core.pump();
        }
        Ok(core)
    }

    /// Applies one accepted event.
    fn apply(&mut self, stamped: StampedEvent) {
        match stamped.event {
            ServiceEvent::Question { session } => self.on_question(session),
            ServiceEvent::Answer { session, verdict } => {
                self.on_answer(stamped.clock, session, verdict);
            }
            ServiceEvent::PublishTick => {
                self.flush(stamped.clock);
                self.publish();
            }
            ServiceEvent::Extend { a, b, confidence } => {
                self.epoch(stamped.clock, |core| {
                    if core.base.extend(a, b, confidence).is_ok() {
                        core.journal_evolution(NetworkEvent::Extend { a, b, confidence });
                    }
                });
            }
            ServiceEvent::Retire { candidate } => {
                self.epoch(stamped.clock, |core| {
                    if core.base.retire(candidate).is_ok() {
                        core.history.retain(|h| h.candidate != candidate);
                        for h in &mut core.history {
                            if h.candidate > candidate {
                                h.candidate = CandidateId(h.candidate.0 - 1);
                            }
                        }
                        core.journal_evolution(NetworkEvent::Retire { candidate });
                    }
                });
            }
        }
    }

    /// Leases a question to `session`: re-issue its outstanding one,
    /// join the oldest under-replicated open question it hasn't voted
    /// on, or select fresh on its session fork.
    fn on_question(&mut self, session: u64) {
        self.sessions_seen.insert(session);
        if self.assignments.contains_key(&session) {
            self.questions_leased += 1; // re-issue of the outstanding lease
            return;
        }
        let k = self.redundancy();
        // compact the join queue: a question that was decided or whose k
        // seats all filled never becomes joinable again (seats only fill,
        // and a decided candidate cannot reopen before an epoch clears
        // the queue), so dead heads pop permanently — amortized O(1)
        while let Some(&c) = self.open_fifo.front() {
            match self.open.get(&c) {
                Some(q) if q.assigned.len() < k => break,
                _ => {
                    self.open_fifo.pop_front();
                }
            }
        }
        // join: oldest open question still under k assignees, skipping
        // ones this session already holds or voted on
        let mut joined: Option<CandidateId> = None;
        for &c in &self.open_fifo {
            let Some(q) = self.open.get(&c) else { continue }; // lazily stale
            if q.assigned.len() < k && !q.assigned.contains(&session) {
                joined = Some(c);
                break;
            }
        }
        if let Some(c) = joined {
            self.open.get_mut(&c).expect("found above").assigned.push(session);
            self.assignments.insert(session, c);
            self.questions_leased += 1;
            return;
        }
        if self.available() == 0 {
            // every candidate is asserted, open or awaiting its commit:
            // no fork, no scan — starvation is a counter bump
            self.starved_questions += 1;
            return;
        }
        // fresh selection on the session's fork; availability is
        // authoritative against the base + in-flight state
        let selected = {
            let base_feedback = self.base.feedback();
            let pending = &self.pending_set;
            let open = &self.open;
            let unavailable = move |c: CandidateId| {
                base_feedback.is_asserted(c) || pending.contains(&c) || open.contains_key(&c)
            };
            self.sessions.select(session, &self.published, self.published_generation, &unavailable)
        };
        match selected {
            Some(c) => {
                self.open.insert(c, OpenQuestion { assigned: vec![session], votes: Vec::new() });
                self.open_fifo.push_back(c);
                self.assignments.insert(session, c);
                self.questions_leased += 1;
            }
            None => self.starved_questions += 1,
        }
    }

    /// Resolves `session`'s outstanding question into a vote; the `k`-th
    /// vote aggregates into a decided assertion.
    fn on_answer(&mut self, clock: u64, session: u64, verdict: Option<bool>) {
        self.sessions_seen.insert(session);
        let Some(candidate) = self.assignments.remove(&session) else {
            self.ignored_answers += 1;
            return;
        };
        let corr = self.base.network().corr(candidate);
        let worker = (session as usize) % self.crowd.len();
        let approved = verdict.unwrap_or_else(|| self.crowd.answer(worker, corr));
        self.crowd.record(worker, corr, approved);
        self.questions_asked += 1;
        self.sessions.observe(session, Assertion { candidate, approved });
        let k = self.redundancy();
        let Some(q) = self.open.get_mut(&candidate) else { return };
        q.votes.push(Vote { worker, approved, expected_entropy: 0.0 });
        if q.votes.len() < k {
            return;
        }
        let q = self.open.remove(&candidate).expect("present above");
        let verdict: Verdict = aggregate(self.config.aggregation, &q.votes, self.crowd.profiles());
        self.pending.push(DecidedAssertion {
            clock,
            candidate,
            approved: verdict.approved,
            votes_for: verdict.votes_for,
            votes_against: verdict.votes_against,
        });
        self.pending_set.insert(candidate);
        if self.pending.len() >= self.config.flush_every.max(1) {
            self.flush(clock);
        }
    }

    /// Flushes the pending commit buffer at logical time `clock`:
    /// decided assertions order by `(shard, decision clock)`, commit
    /// through per-shard lanes, journal into per-lane WAL sinks, and
    /// drain to the store with one fsync.
    fn flush(&mut self, clock: u64) {
        if self.pending.is_empty() {
            return;
        }
        let mut decided = std::mem::take(&mut self.pending);
        decided.sort_by_key(|d| (self.base.shard_of(d.candidate), d.clock));
        let requests: Vec<Assertion> = decided
            .iter()
            .map(|d| Assertion { candidate: d.candidate, approved: d.approved })
            .collect();
        let exec = self.commit_exec();
        let outcomes = self.base.commit_batch(&requests, exec);
        let (entropy_after, effort_after) = (self.base.entropy(), self.base.effort());
        for (d, o) in decided.iter().zip(&outcomes) {
            self.pending_set.remove(&d.candidate);
            self.latencies.push(clock - d.clock);
            if o.outcome != StepOutcome::Skipped {
                self.history.push(Assertion { candidate: o.candidate, approved: o.approved });
                if let Some(dur) = &mut self.durability {
                    if dur.error.is_none() {
                        dur.lanes.append(
                            o.shard,
                            NetworkEvent::Assert { candidate: o.candidate, approved: o.approved },
                        );
                    }
                }
            }
            self.commits.push(ServeCommit {
                step: self.commits.len() + 1,
                candidate: o.candidate.0,
                shard: o.shard,
                approved: o.approved,
                outcome: match o.outcome {
                    StepOutcome::Integrated => "integrated".into(),
                    StepOutcome::Flipped => "flipped".into(),
                    StepOutcome::Skipped => "skipped".into(),
                },
                votes_for: d.votes_for,
                votes_against: d.votes_against,
                decided_clock: d.clock,
                committed_clock: clock,
                entropy_after,
                effort_after,
            });
        }
        self.flushes += 1;
        self.recount_asserted();
        if let Some(dur) = &mut self.durability {
            if dur.error.is_none() {
                if let Err(e) = dur.lanes.drain_into(&mut dur.store) {
                    dur.error = Some(e);
                }
            }
        }
    }

    /// Candidates a fresh question could still target: unasserted in the
    /// base and neither open nor awaiting a commit. O(1) — see
    /// `asserted_count`.
    fn available(&self) -> usize {
        self.base
            .network()
            .candidate_count()
            .saturating_sub(self.asserted_count)
            .saturating_sub(self.open.len())
            .saturating_sub(self.pending_set.len())
    }

    /// Recounts base assertions after a flush or epoch (the only moments
    /// the base's feedback can change).
    fn recount_asserted(&mut self) {
        let feedback = self.base.feedback();
        self.asserted_count = (0..self.base.network().candidate_count())
            .filter(|&i| feedback.is_asserted(CandidateId::from_index(i)))
            .count();
    }

    /// The commit-lane execution for the configured scheduler/threads.
    fn commit_exec(&self) -> CommitExec {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.config.threads
        };
        match self.config.scheduler {
            Scheduler::Inline => CommitExec::Sequential,
            _ if threads <= 1 => CommitExec::Sequential,
            Scheduler::Pool => CommitExec::Pool,
            Scheduler::Scoped => CommitExec::Scoped,
        }
    }

    /// Publishes a fresh immutable snapshot when the base actually moved
    /// since the last publication.
    fn publish(&mut self) {
        if self.base.generation() != self.published_generation {
            self.published = Arc::new(self.base.fork());
            self.published_generation = self.base.generation();
            self.publications += 1;
        }
    }

    /// An exclusive evolution epoch: flush, drop every open question,
    /// assignment and session fork, evolve, publish.
    fn epoch(&mut self, clock: u64, evolve: impl FnOnce(&mut Self)) {
        self.flush(clock);
        self.open.clear();
        self.open_fifo.clear();
        self.assignments.clear();
        self.sessions.reset();
        evolve(self);
        self.recount_asserted();
        if let Some(d) = &mut self.durability {
            if d.error.is_none() {
                if let Err(e) = d.store.sync() {
                    d.error = Some(e);
                }
            }
        }
        self.publish();
        self.epochs += 1;
    }

    /// Journals one applied evolution event, latching the first fault.
    fn journal_evolution(&mut self, event: NetworkEvent) {
        let Some(d) = &mut self.durability else { return };
        if d.error.is_some() {
            return;
        }
        if let Err(e) = d.store.append(&event) {
            d.error = Some(e);
        }
    }

    /// Precision/recall of the probability-majority matching
    /// `{c : p_c > ½}` against the verified matching.
    fn matching_quality(&self) -> PrecisionRecall {
        let n = self.base.network().candidate_count();
        let matching = BitSet::from_ids(
            n,
            (0..n).map(CandidateId::from_index).filter(|&c| self.base.probability(c) > 0.5),
        );
        PrecisionRecall::of_instance(self.base.network(), &matching, self.truth.iter().copied())
    }

    /// Assembles the (deterministic) report of everything so far.
    pub fn report(&self) -> ServeReport {
        let quality = self.matching_quality();
        ServeReport {
            sessions: self.sessions_seen.len() as u64,
            workers: self.crowd.len(),
            redundancy: self.redundancy(),
            aggregation: self.config.aggregation.label().to_string(),
            worker_error_rates: self.crowd.profiles().iter().map(|p| p.error_rate).collect(),
            events_accepted: self.log.len() as u64,
            questions_leased: self.questions_leased,
            questions_asked: self.questions_asked,
            starved_questions: self.starved_questions,
            ignored_answers: self.ignored_answers,
            commits: self.commits.clone(),
            flushes: self.flushes,
            publications: self.publications,
            epochs: self.epochs,
            latency: LatencySummary::of(&self.latencies),
            worker_stats: self.crowd.stats().to_vec(),
            final_entropy: self.base.entropy(),
            final_effort: self.base.effort(),
            final_precision: quality.precision,
            final_recall: quality.recall,
            durability_error: self.durability_error().map(|e| e.to_string()),
        }
    }
}
